//! The incremental schedulers against the rebuild-from-scratch oracles.
//!
//! `EasyScheduler` and `ConservativeScheduler` now read the engine's
//! incrementally maintained [`ReleaseSet`] instead of re-collecting and
//! re-sorting the running set each pass. These properties pin the
//! refactor's core claim — identical starts to the brute-force
//! [`ReferenceEasy`] / [`ReferenceConservative`] oracles — on random
//! queue/running states (with release-time ties made *likely*, to drive
//! EASY through its tie fallback) and on random operation sequences
//! applied through [`SimState`] (so the release set is genuinely
//! maintained, not rebuilt). Oversized head jobs exercise
//! `head_reservation`'s degrade-gracefully branch.

use proptest::prelude::*;

use predictsim_sim::job::JobId;
use predictsim_sim::scheduler::easy::{head_reservation, Reservation};
use predictsim_sim::scheduler::{
    ConservativeScheduler, EasyScheduler, ReferenceConservative, ReferenceEasy, ReleaseSet,
    Scheduler,
};
use predictsim_sim::state::{
    sorted_shortest_first, RunningJob, SchedulerContext, SimState, WaitingJob,
};
use predictsim_sim::time::Time;

const MACHINE: u32 = 16;

/// Release instants are drawn from a handful of values so that ties —
/// including ties at the reservation's crossing instant — are common.
const TIE_TIMES: [i64; 5] = [50, 50, 100, 150, 200];

fn waiting(id: u32, procs: u32, predicted: i64, submit: i64) -> WaitingJob {
    WaitingJob {
        id: JobId(id),
        procs,
        predicted,
        requested: predicted,
        submit: Time(submit),
        user: 1,
    }
}

fn running(id: u32, procs: u32, predicted_end: i64) -> RunningJob {
    RunningJob {
        id: JobId(id),
        procs,
        start: Time(0),
        predicted_end: Time(predicted_end),
        deadline: Time(predicted_end + 100_000),
        user: 1,
        corrections: 0,
        partition: 0,
    }
}

/// A random system snapshot: running jobs packed within the machine,
/// waiting jobs whose procs may exceed the machine (degrade branch).
#[derive(Debug, Clone)]
struct Snapshot {
    queue: Vec<WaitingJob>,
    running: Vec<RunningJob>,
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec((1u32..=6, 0usize..TIE_TIMES.len()), 0..8),
        prop::collection::vec((1u32..=24, 0usize..TIE_TIMES.len(), 1i64..4), 0..10),
    )
        .prop_map(|(run_specs, wait_specs)| {
            let mut running_jobs = Vec::new();
            let mut budget = MACHINE;
            for (id, (procs, t_index)) in (1000..).zip(run_specs) {
                let procs = procs.min(budget);
                if procs == 0 {
                    break;
                }
                budget -= procs;
                running_jobs.push(running(id, procs, TIE_TIMES[t_index]));
            }
            let queue = wait_specs
                .into_iter()
                .enumerate()
                .map(|(i, (procs, t_index, factor))| {
                    waiting(i as u32, procs, TIE_TIMES[t_index] * factor, i as i64)
                })
                .collect();
            Snapshot {
                queue,
                running: running_jobs,
            }
        })
}

fn ctx_of<'a>(
    snapshot: &'a Snapshot,
    releases: &'a ReleaseSet,
    shortest_first: &'a [u32],
) -> SchedulerContext<'a> {
    let used: u32 = snapshot.running.iter().map(|r| r.procs).sum();
    SchedulerContext {
        now: Time(0),
        partition: 0,
        machine_size: MACHINE,
        free: MACHINE - used,
        queue: &snapshot.queue,
        running: &snapshot.running,
        releases,
        shortest_first,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On arbitrary snapshots (tie-heavy release times, oversized jobs),
    /// every production scheduler matches its from-scratch oracle.
    #[test]
    fn production_matches_oracle_on_random_states(snapshot in arb_snapshot()) {
        let releases = ReleaseSet::from_running(&snapshot.running);
        let shortest = sorted_shortest_first(&snapshot.queue);
        let ctx = ctx_of(&snapshot, &releases, &shortest);
        prop_assert_eq!(
            EasyScheduler::new().schedule(&ctx),
            ReferenceEasy::new().schedule(&ctx),
            "EASY diverged from oracle"
        );
        prop_assert_eq!(
            EasyScheduler::sjbf().schedule(&ctx),
            ReferenceEasy::sjbf().schedule(&ctx),
            "EASY-SJBF diverged from oracle"
        );
        // Conservative requires the engine precondition procs ≤ machine
        // (its profile reservation would otherwise over-carve — EASY's
        // degrade branch has no conservative counterpart), so clamp.
        let mut clamped = snapshot.clone();
        for w in &mut clamped.queue {
            w.procs = w.procs.min(MACHINE);
        }
        let shortest = sorted_shortest_first(&clamped.queue);
        let ctx = ctx_of(&clamped, &releases, &shortest);
        prop_assert_eq!(
            ConservativeScheduler::new().schedule(&ctx),
            ReferenceConservative.schedule(&ctx),
            "conservative diverged from oracle"
        );
    }

    /// Random operation sequences driven through `SimState`, so the
    /// release set is maintained incrementally across starts, finishes,
    /// and corrections — after every step the schedulers must still
    /// match the oracles, and the slot map must stay exact.
    #[test]
    fn incremental_maintenance_matches_oracle(
        ops in prop::collection::vec((0u8..4, 0usize..8, 0usize..TIE_TIMES.len()), 1..40)
    ) {
        let n = 64usize;
        let mut state = SimState::new(MACHINE, n);
        let mut next_id = 0u32;
        let mut warm_easy = EasyScheduler::sjbf();
        let mut warm_conservative = ConservativeScheduler::new();
        for (op, pick, t_index) in ops {
            match op {
                // Submit a new job.
                0 | 1 => {
                    if (next_id as usize) < n {
                        let procs = 1 + (pick as u32 % 6);
                        let predicted = TIE_TIMES[t_index];
                        state.enqueue(waiting(next_id, procs, predicted, next_id as i64));
                        next_id += 1;
                    }
                }
                // Start the first waiting job that fits.
                2 => {
                    let fit = state
                        .queue()
                        .iter()
                        .position(|w| w.procs <= state.free())
                        .map(|i| state.queue()[i]);
                    if let Some(w) = fit {
                        let index = state.waiting_index(w.id).unwrap();
                        state.start(index, RunningJob {
                            id: w.id,
                            procs: w.procs,
                            start: Time(0),
                            predicted_end: Time(TIE_TIMES[t_index]),
                            deadline: Time(100_000),
                            user: w.user,
                            corrections: 0,
                            partition: 0,
                        });
                        state.compact_queue();
                    }
                }
                // Finish or correct a running job.
                _ => {
                    if state.running().is_empty() {
                        continue;
                    }
                    let index = pick % state.running().len();
                    let id = state.running()[index].id;
                    if pick % 2 == 0 {
                        state.finish(id);
                    } else {
                        let index = state.running_index(id).unwrap();
                        state.apply_correction(index, Time(TIE_TIMES[t_index] + 1));
                    }
                }
            }
            state.assert_consistent();

            // A scheduling pass over the current state must match the
            // from-scratch oracles (warm scratch, so this also shakes
            // stale-scratch bugs out).
            let snapshot = Snapshot {
                queue: state.queue().to_vec(),
                running: state.running().to_vec(),
            };
            let ctx = ctx_of(&snapshot, state.releases(), state.shortest_first());
            prop_assert_eq!(
                warm_easy.schedule(&ctx),
                ReferenceEasy::sjbf().schedule(&ctx),
                "warm EASY-SJBF diverged after incremental ops"
            );
            prop_assert_eq!(
                warm_conservative.schedule(&ctx),
                ReferenceConservative.schedule(&ctx),
                "warm conservative diverged after incremental ops"
            );
        }
    }
}

/// Deterministic pin of the degrade-gracefully branch: a head job wider
/// than the machine can never be covered, so the reservation collapses
/// to `(now, 0)` — and production still matches the oracle.
#[test]
fn oversized_head_takes_degrade_branch_identically() {
    let mut releases = vec![(Time(50), 8), (Time(100), 8)];
    let r = head_reservation(Time(7), 0, MACHINE + 8, &mut releases);
    assert_eq!(
        r,
        Reservation {
            shadow: Time(7),
            extra: 0
        }
    );

    let snapshot = Snapshot {
        queue: vec![waiting(0, MACHINE + 8, 100, 0), waiting(1, 2, 40, 1)],
        running: vec![running(1000, MACHINE, 50)],
    };
    let releases = ReleaseSet::from_running(&snapshot.running);
    let shortest = sorted_shortest_first(&snapshot.queue);
    let ctx = ctx_of(&snapshot, &releases, &shortest);
    let production = EasyScheduler::new().schedule(&ctx);
    assert_eq!(production, ReferenceEasy::new().schedule(&ctx));
    // With shadow = now and extra = 0, nothing can backfill ahead of the
    // impossible head (free is 0 here anyway).
    assert!(production.is_empty());
}

/// EASY's tie fallback really fires on *heterogeneous* tie states
/// (otherwise the oracle comparison above would only be exercising the
/// fast path).
#[test]
fn tie_fallback_engages_on_heterogeneous_crossing_ties() {
    // free=6; head needs 8; two running jobs release 8+2 at t=50, so the
    // cumulative availability crosses the head's requirement at an
    // instant with two releases of *different* widths — the fast path
    // must decline (the legacy walk's `extra` depends on which release
    // it crossed on).
    let snapshot = Snapshot {
        queue: vec![waiting(0, 8, 100, 0), waiting(1, 2, 300, 1)],
        running: vec![running(1000, 8, 50), running(1001, 2, 50)],
    };
    let releases = ReleaseSet::from_running(&snapshot.running);
    let shortest = sorted_shortest_first(&snapshot.queue);
    let ctx = ctx_of(&snapshot, &releases, &shortest);
    let mut easy = EasyScheduler::new();
    let starts = easy.schedule(&ctx);
    assert_eq!(easy.stats().slow_passes, 1, "tie must take the fallback");
    assert_eq!(starts, ReferenceEasy::new().schedule(&ctx));
}

/// A *uniform* tie — every release at the crossing instant frees the
/// same processor count — is order-free (any permutation of equal
/// releases crosses after the same number of jobs), so the fast path
/// resolves it without the sort-and-walk fallback, and the decision
/// still matches the brute-force oracle.
#[test]
fn uniform_crossing_ties_stay_on_the_fast_path() {
    // free=4; head needs 8; three running jobs release 4 each at t=50:
    // the legacy walk crosses after the *first* release regardless of
    // order (extra = 4 + 4 - 8 = 0), so the 4-proc candidate that
    // outlives the shadow must NOT backfill — a naive tie resolution
    // that added the whole group before crossing would report extra = 8
    // and wrongly admit it.
    let snapshot = Snapshot {
        queue: vec![waiting(0, 8, 100, 0), waiting(1, 4, 300, 1)],
        running: vec![
            running(1000, 4, 50),
            running(1001, 4, 50),
            running(1002, 4, 50),
        ],
    };
    let releases = ReleaseSet::from_running(&snapshot.running);
    let shortest = sorted_shortest_first(&snapshot.queue);
    let ctx = ctx_of(&snapshot, &releases, &shortest);
    let mut easy = EasyScheduler::new();
    let starts = easy.schedule(&ctx);
    assert_eq!(
        easy.stats().slow_passes,
        0,
        "uniform tie must stay on the fast path"
    );
    assert_eq!(starts, ReferenceEasy::new().schedule(&ctx));
}
