//! Property-based tests of the simulation engine and schedulers.
//!
//! Random workloads are pushed through every scheduler × predictor
//! combination; the resulting schedules must pass the independent audit
//! (capacity, release dates, durations) and satisfy policy-specific
//! guarantees (FCFS order preservation, completeness, determinism).

use proptest::prelude::*;

use predictsim_sim::audit::audit;
use predictsim_sim::engine::{simulate, SimConfig};
use predictsim_sim::job::{Job, JobId};
use predictsim_sim::predict::{
    ClairvoyantPredictor, RequestedTimeCorrection, RequestedTimePredictor, RuntimePredictor,
};
use predictsim_sim::scheduler::{ConservativeScheduler, EasyScheduler, FcfsScheduler, Scheduler};
use predictsim_sim::state::SystemView;
use predictsim_sim::time::Time;

const MACHINE: u32 = 16;

/// Strategy: a workload of up to `n` jobs on a 16-proc machine, with
/// interarrival gaps, runtimes, and over-estimated requests.
fn arb_workload(n: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0i64..500,      // interarrival gap
            1i64..5_000,    // run time
            1.0f64..10.0,   // over-estimation factor
            1u32..=MACHINE, // procs
            0u32..6,        // user
        ),
        0..n,
    )
    .prop_map(|specs| {
        let mut t = 0;
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (gap, run, over, procs, user))| {
                t += gap;
                let requested = ((run as f64 * over) as i64).max(run);
                Job {
                    id: JobId(i as u32),
                    submit: Time(t),
                    run,
                    requested,
                    procs,
                    user,
                    user_ix: user,
                    swf_id: i as u64 + 1,
                }
            })
            .collect()
    })
}

/// A deliberately bad predictor: aggressive under-prediction, which
/// exercises the correction machinery hard.
struct Tenth;
impl RuntimePredictor for Tenth {
    fn predict(&mut self, job: &Job, _s: &SystemView<'_>) -> f64 {
        (job.granted_run() as f64 / 10.0).max(1.0)
    }
    fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
    fn name(&self) -> String {
        "tenth".into()
    }
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FcfsScheduler),
        Box::new(EasyScheduler::new()),
        Box::new(EasyScheduler::sjbf()),
        Box::new(ConservativeScheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler yields a complete, capacity-respecting schedule
    /// under clairvoyant predictions.
    #[test]
    fn schedules_pass_audit_clairvoyant(jobs in arb_workload(60)) {
        for mut sched in schedulers() {
            let mut pred = ClairvoyantPredictor;
            let res = simulate(&jobs, SimConfig::single(MACHINE),
                               sched.as_mut(), &mut pred, None).unwrap();
            prop_assert_eq!(res.outcomes.len(), jobs.len());
            let report = audit(&res);
            prop_assert!(report.is_ok(), "{:?} audit: {:?}", res.scheduler, report);
        }
    }

    /// Same with a massively under-predicting predictor plus corrections:
    /// the correction path must never break the schedule invariants.
    #[test]
    fn schedules_pass_audit_underprediction(jobs in arb_workload(50)) {
        for mut sched in schedulers() {
            let mut pred = Tenth;
            let corr = RequestedTimeCorrection;
            let res = simulate(&jobs, SimConfig::single(MACHINE),
                               sched.as_mut(), &mut pred, Some(&corr)).unwrap();
            prop_assert_eq!(res.outcomes.len(), jobs.len());
            let report = audit(&res);
            prop_assert!(report.is_ok(), "{:?} audit: {:?}", res.scheduler, report);
        }
    }

    /// FCFS starts jobs in strict arrival order.
    #[test]
    fn fcfs_preserves_arrival_order(jobs in arb_workload(40)) {
        let mut pred = RequestedTimePredictor;
        let res = simulate(&jobs, SimConfig::single(MACHINE),
                           &mut FcfsScheduler, &mut pred, None).unwrap();
        let mut outcomes = res.outcomes.clone();
        outcomes.sort_by_key(|o| (o.start, o.id));
        for w in outcomes.windows(2) {
            // A job that started strictly earlier must not have been
            // submitted strictly later... under FCFS with no skipping,
            // start order equals submit order.
            prop_assert!(
                w[0].submit <= w[1].submit || w[0].start == w[1].start,
                "FCFS inversion: {:?} vs {:?}", w[0], w[1]
            );
        }
    }

    /// Simulation is deterministic: same inputs, same outcomes.
    #[test]
    fn simulation_is_deterministic(jobs in arb_workload(40)) {
        let run = |jobs: &[Job]| {
            let mut pred = Tenth;
            let corr = RequestedTimeCorrection;
            simulate(jobs, SimConfig::single(MACHINE),
                     &mut EasyScheduler::sjbf(), &mut pred, Some(&corr)).unwrap()
        };
        let a = run(&jobs);
        let b = run(&jobs);
        prop_assert_eq!(a.outcomes, b.outcomes);
    }

    /// No job ever finishes after `start + requested` (kill bound), and
    /// every outcome's run time equals min(p, p̃).
    #[test]
    fn kill_bound_respected(jobs in arb_workload(40)) {
        let mut pred = RequestedTimePredictor;
        let res = simulate(&jobs, SimConfig::single(MACHINE),
                           &mut EasyScheduler::new(), &mut pred, None).unwrap();
        for o in &res.outcomes {
            let original = &jobs[o.id.index()];
            prop_assert_eq!(o.run, original.run.min(original.requested));
            prop_assert!(o.end.since(o.start) <= original.requested);
        }
    }

    /// Under clairvoyant predictions, EASY backfilling is a strict
    /// improvement over FCFS *in aggregate* — almost. The per-job
    /// guarantee only protects the blocked queue head, and rare packing
    /// interactions can cost other jobs a few seconds (proptest found a
    /// 0.2s counterexample to the naive "never worse" claim). What must
    /// hold is that EASY never loses more than marginally, and that on
    /// contended workloads it wins.
    #[test]
    fn easy_does_not_meaningfully_lose_to_fcfs_clairvoyant(jobs in arb_workload(40)) {
        let cfg = SimConfig::single(MACHINE);
        let easy = simulate(&jobs, cfg, &mut EasyScheduler::new(),
                            &mut ClairvoyantPredictor, None).unwrap();
        let fcfs = simulate(&jobs, cfg, &mut FcfsScheduler,
                            &mut ClairvoyantPredictor, None).unwrap();
        prop_assert!(easy.mean_wait() <= fcfs.mean_wait() * 1.02 + 1.0,
                     "easy {} far above fcfs {}", easy.mean_wait(), fcfs.mean_wait());
    }
}
