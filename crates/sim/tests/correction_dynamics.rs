//! Focused integration tests of the §5.2 correction machinery: expiry
//! scheduling, generation invalidation, clamping, and the starvation
//! hazard the paper warns about.

use predictsim_sim::engine::{simulate, SimConfig};
use predictsim_sim::job::{Job, JobId};
use predictsim_sim::predict::{CorrectionPolicy, RuntimePredictor};
use predictsim_sim::scheduler::EasyScheduler;
use predictsim_sim::state::SystemView;
use predictsim_sim::time::Time;

fn job(id: u32, submit: i64, run: i64, requested: i64, procs: u32) -> Job {
    Job {
        id: JobId(id),
        submit: Time(submit),
        run,
        requested,
        procs,
        user: 1,
        user_ix: 1,
        swf_id: id as u64,
    }
}

/// Always predicts a fixed value.
struct Fixed(f64);
impl RuntimePredictor for Fixed {
    fn predict(&mut self, _j: &Job, _s: &SystemView<'_>) -> f64 {
        self.0
    }
    fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
    fn name(&self) -> String {
        "fixed".into()
    }
}

/// Correction that adds a fixed amount each time, recording every call.
struct Recording {
    add: i64,
    calls: std::cell::RefCell<Vec<(i64, i64, u32)>>,
}
impl CorrectionPolicy for Recording {
    fn correct(&self, _job: &Job, elapsed: i64, expired: i64, count: u32) -> f64 {
        self.calls.borrow_mut().push((elapsed, expired, count));
        (expired + self.add) as f64
    }
    fn name(&self) -> String {
        "recording".into()
    }
}

#[test]
fn corrections_fire_in_sequence_until_the_job_ends() {
    // Job runs 1000s, predicted 100s, corrections add 200s each:
    // expiries at 100, 300, 500, 700, 900 -> 5 corrections.
    let jobs = [job(0, 0, 1000, 100_000, 1)];
    let corr = Recording {
        add: 200,
        calls: Default::default(),
    };
    let mut pred = Fixed(100.0);
    let res = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut pred,
        Some(&corr),
    )
    .unwrap();
    assert_eq!(res.outcomes[0].corrections, 5);
    let calls = corr.calls.borrow();
    assert_eq!(calls.len(), 5);
    // Each call sees the just-expired prediction and a growing counter.
    assert_eq!(calls[0], (100, 100, 0));
    assert_eq!(calls[1], (300, 300, 1));
    assert_eq!(calls[4], (900, 900, 4));
    // The job still ends at its true time.
    assert_eq!(res.outcomes[0].end, Time(1000));
}

#[test]
fn correction_output_is_clamped_to_requested() {
    // Correction proposes an absurd value; engine must clamp to p̃.
    struct Absurd;
    impl CorrectionPolicy for Absurd {
        fn correct(&self, _j: &Job, _e: i64, _x: i64, _c: u32) -> f64 {
            1e18
        }
        fn name(&self) -> String {
            "absurd".into()
        }
    }
    let jobs = [job(0, 0, 500, 600, 1)];
    let mut pred = Fixed(10.0);
    let res = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut pred,
        Some(&Absurd),
    )
    .unwrap();
    // One correction (to the clamped requested time = 600 >= actual 500),
    // then the job finishes before any further expiry.
    assert_eq!(res.outcomes[0].corrections, 1);
    assert_eq!(res.outcomes[0].end, Time(500));
}

#[test]
fn correction_below_elapsed_is_raised() {
    // A broken policy returning less than the elapsed time must still
    // yield a strictly-future predicted end (elapsed + 1).
    struct Broken;
    impl CorrectionPolicy for Broken {
        fn correct(&self, _j: &Job, _e: i64, _x: i64, _c: u32) -> f64 {
            0.0
        }
        fn name(&self) -> String {
            "broken".into()
        }
    }
    let jobs = [job(0, 0, 50, 100_000, 1)];
    let mut pred = Fixed(10.0);
    let res = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut pred,
        Some(&Broken),
    )
    .unwrap();
    // Expiries at 10, 11, 12, ..., 49 -> 40 corrections, one per second.
    assert_eq!(res.outcomes[0].corrections, 40);
    assert_eq!(res.outcomes[0].end, Time(50));
}

#[test]
fn underprediction_can_delay_a_reservation_the_starvation_hazard() {
    // §5.2: "a large job will indefinitely wait for its required
    // resources if under-predicted shorter jobs are systematically
    // backfilled before". Reproduce a bounded version: the wide job's
    // start is pushed past what exact predictions would give.
    //
    // Machine 4. j0 holds 2 procs for 300s. j1 (wide, 4 procs) arrives at
    // t=10. j2..j4 (2 procs each, actual 200s but predicted 20s) arrive
    // later and backfill "briefly" — each overruns its prediction by 10x.
    let mut jobs = vec![job(0, 0, 300, 400, 2), job(1, 10, 100, 150, 4)];
    for (i, submit) in [(2u32, 20i64), (3, 40), (4, 60)] {
        jobs.push(job(i, submit, 200, 100_000, 2));
    }
    // Under-predicting predictor: everything is "20 seconds".
    let mut under = Fixed(20.0);
    let corr = Recording {
        add: 20,
        calls: Default::default(),
    };
    let res_under = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut under,
        Some(&corr),
    )
    .unwrap();

    let mut exact = predictsim_sim::predict::ClairvoyantPredictor;
    let res_exact = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut exact,
        None,
    )
    .unwrap();

    let wide_under = res_under.outcomes[1].start;
    let wide_exact = res_exact.outcomes[1].start;
    assert!(
        wide_under > wide_exact,
        "under-prediction should delay the wide job: {wide_under:?} vs {wide_exact:?}"
    );
    // And the audit still holds — starvation is a performance hazard,
    // not a correctness violation.
    predictsim_sim::audit(&res_under).unwrap();
}

#[test]
fn overprediction_never_triggers_corrections() {
    let jobs = [job(0, 0, 100, 100_000, 1)];
    let corr = Recording {
        add: 100,
        calls: Default::default(),
    };
    let mut pred = Fixed(50_000.0);
    let res = simulate(
        &jobs,
        SimConfig::single(4),
        &mut EasyScheduler::new(),
        &mut pred,
        Some(&corr),
    )
    .unwrap();
    assert_eq!(res.outcomes[0].corrections, 0);
    assert!(corr.calls.borrow().is_empty());
}
