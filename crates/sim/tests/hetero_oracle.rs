//! The heterogeneous routing loop against the brute-force
//! [`ReferenceHetero`] oracle.
//!
//! The engine routes each scheduling instant first-fit across the
//! cluster's ordered partitions: one production scheduler pass per
//! partition against the partition-scoped context, queue compacted
//! between passes so earlier partitions pick first. `ReferenceHetero`
//! rebuilds the same decision from scratch (filtered running vectors,
//! fresh release sets). These properties drive random operation
//! sequences through [`SimState`] on random 1–4-partition clusters and
//! assert the two agree on every `(job, partition)` placement — and
//! that on a 1-partition cluster the whole machinery degenerates to the
//! legacy single-machine EASY path, byte for byte.

use proptest::prelude::*;

use predictsim_sim::cluster::{ClusterSpec, Partition};
use predictsim_sim::engine::{simulate, SimConfig};
use predictsim_sim::job::{Job, JobId};
use predictsim_sim::predict::RequestedTimePredictor;
use predictsim_sim::scheduler::easy::BackfillOrder;
use predictsim_sim::scheduler::{EasyScheduler, ReferenceEasy, ReferenceHetero, Scheduler};
use predictsim_sim::state::{RunningJob, SchedulerContext, SimState, WaitingJob};
use predictsim_sim::time::Time;

/// Release instants drawn from a handful of values so ties are common
/// (the EASY fast path's fallback trigger).
const TIE_TIMES: [i64; 5] = [50, 50, 100, 150, 200];

fn waiting(id: u32, procs: u32, predicted: i64, submit: i64) -> WaitingJob {
    WaitingJob {
        id: JobId(id),
        procs,
        predicted,
        requested: predicted,
        submit: Time(submit),
        user: 1,
    }
}

/// A random 1–4-partition cluster: sizes 4..=16, speeds from the grid
/// the engine treats specially (1.0 short-circuits) and generically.
fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((4u32..=16, 0usize..3), 1..5).prop_map(|parts| {
        const SPEEDS: [f64; 3] = [0.5, 1.0, 2.0];
        let partitions: Vec<Partition> = parts
            .into_iter()
            .map(|(size, speed)| Partition {
                size,
                speed: SPEEDS[speed],
            })
            .collect();
        ClusterSpec::from_partitions(&partitions).expect("valid partitions")
    })
}

/// One engine-style routing instant over `state` at `now`: a production
/// scheduler pass per partition in first-fit order, applying starts and
/// compacting the queue between passes — exactly the engine's loop. The
/// `(job, partition)` placements are returned in decision order.
fn route_like_engine(
    state: &mut SimState,
    cluster: ClusterSpec,
    now: Time,
    order: BackfillOrder,
) -> Vec<(JobId, u32)> {
    let mut scheduler = match order {
        BackfillOrder::Fcfs => EasyScheduler::new(),
        BackfillOrder::ShortestFirst => EasyScheduler::sjbf(),
    };
    let mut placements = Vec::new();
    for partition in 0..cluster.len() as u32 {
        if state.queue_is_empty() {
            break;
        }
        if state.free_in(partition) == 0 {
            continue;
        }
        let starts = scheduler.schedule(&SchedulerContext {
            now,
            partition,
            machine_size: cluster.part(partition as usize).size,
            free: state.free_in(partition),
            queue: state.queue(),
            running: state.running(),
            releases: state.releases_in(partition),
            shortest_first: state.shortest_first(),
        });
        for &id in &starts {
            let index = state
                .waiting_index(id)
                .expect("scheduler starts a waiting job");
            let w = *state.waiting_at(index);
            state.start(
                index,
                RunningJob {
                    id,
                    procs: w.procs,
                    start: now,
                    predicted_end: now.plus(w.predicted),
                    deadline: now.plus(w.requested),
                    user: w.user,
                    corrections: 0,
                    partition,
                },
            );
            placements.push((id, partition));
        }
        state.compact_queue();
    }
    placements
}

/// A tiny deterministic workload for the full-simulation properties.
fn jobs_from(specs: &[(u32, i64, i64)]) -> Vec<Job> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(procs, run, requested))| Job {
            id: JobId(i as u32),
            submit: Time(10 * i as i64),
            run: run.max(1),
            requested: requested.max(1),
            procs,
            user: (i % 3) as u32,
            user_ix: (i % 3) as u32,
            swf_id: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random op sequences (submits, engine-style routed starts,
    /// finishes, corrections) on random clusters: after every step the
    /// state stays consistent and the engine-style routing pass places
    /// exactly what the brute-force oracle places.
    #[test]
    fn routing_matches_oracle_on_random_op_sequences(
        cluster in arb_cluster(),
        ops in prop::collection::vec((0u8..4, 0usize..8, 0usize..TIE_TIMES.len()), 1..40),
        sjbf in 0u8..2,
    ) {
        let order = if sjbf == 1 { BackfillOrder::ShortestFirst } else { BackfillOrder::Fcfs };
        let n = 64usize;
        let mut state = SimState::new_cluster(cluster, n);
        let mut next_id = 0u32;
        for (op, pick, t_index) in ops {
            match op {
                // Submit a new job (never wider than the widest
                // partition — the engine validates this up front).
                0 | 1 => {
                    if (next_id as usize) < n {
                        let procs = 1 + (pick as u32 % cluster.max_partition_size());
                        state.enqueue(waiting(next_id, procs, TIE_TIMES[t_index], next_id as i64));
                        next_id += 1;
                    }
                }
                // One engine-style routing instant, checked against the
                // oracle on the pre-pass snapshot.
                2 => {
                    let queue = state.queue().to_vec();
                    let running = state.running().to_vec();
                    let expected = ReferenceHetero { order }
                        .schedule(Time(0), cluster, &queue, &running);
                    let placed = route_like_engine(&mut state, cluster, Time(0), order);
                    prop_assert_eq!(
                        placed, expected,
                        "engine routing diverged from ReferenceHetero"
                    );
                }
                // Finish or correct a running job.
                _ => {
                    if state.running().is_empty() {
                        continue;
                    }
                    let index = pick % state.running().len();
                    let id = state.running()[index].id;
                    if pick % 2 == 0 {
                        state.finish(id);
                    } else {
                        let index = state.running_index(id).unwrap();
                        state.apply_correction(index, Time(TIE_TIMES[t_index] + 1));
                    }
                }
            }
            state.assert_consistent();
        }
    }

    /// On a 1-partition cluster the hetero oracle *is* the legacy EASY
    /// oracle: identical start sets, every placement on partition 0 —
    /// the refactor's byte-identity contract at the scheduler seam.
    #[test]
    fn single_partition_oracle_degenerates_to_reference_easy(
        machine in 4u32..=32,
        queue_specs in prop::collection::vec((1u32..=24, 0usize..TIE_TIMES.len(), 1i64..4), 0..10),
        run_specs in prop::collection::vec((1u32..=6, 0usize..TIE_TIMES.len()), 0..8),
        sjbf in 0u8..2,
    ) {
        let order = if sjbf == 1 { BackfillOrder::ShortestFirst } else { BackfillOrder::Fcfs };
        let cluster = ClusterSpec::single(machine);
        let mut running = Vec::new();
        let mut budget = machine;
        for (id, (procs, t_index)) in (1000..).zip(run_specs) {
            let procs = procs.min(budget);
            if procs == 0 {
                break;
            }
            budget -= procs;
            running.push(RunningJob {
                id: JobId(id),
                procs,
                start: Time(0),
                predicted_end: Time(TIE_TIMES[t_index]),
                deadline: Time(100_000),
                user: 1,
                corrections: 0,
                partition: 0,
            });
        }
        let queue: Vec<WaitingJob> = queue_specs
            .into_iter()
            .enumerate()
            .map(|(i, (procs, t_index, factor))| {
                waiting(i as u32, procs, TIE_TIMES[t_index] * factor, i as i64)
            })
            .collect();

        let hetero = ReferenceHetero { order }.schedule(Time(0), cluster, &queue, &running);
        prop_assert!(hetero.iter().all(|&(_, p)| p == 0));

        let used: u32 = running.iter().map(|r| r.procs).sum();
        let releases = predictsim_sim::ReleaseSet::from_running(&running);
        let shortest = predictsim_sim::state::sorted_shortest_first(&queue);
        let ctx = SchedulerContext {
            now: Time(0),
            partition: 0,
            machine_size: machine,
            free: machine - used,
            queue: &queue,
            running: &running,
            releases: &releases,
            shortest_first: &shortest,
        };
        let legacy = ReferenceEasy { order }.schedule(&ctx);
        let flat: Vec<JobId> = hetero.into_iter().map(|(id, _)| id).collect();
        prop_assert_eq!(flat, legacy, "1-partition hetero != legacy EASY");
    }

    /// A full simulation on an explicit 1-partition spec is byte-identical
    /// to the legacy single-machine configuration, however the spec is
    /// spelled, and every outcome sits on partition 0 with the legacy
    /// kill rule (`granted = min(p, p̃)`).
    #[test]
    fn one_partition_simulation_is_the_legacy_run(
        specs in prop::collection::vec((1u32..=8, 1i64..400, 1i64..400), 1..30),
    ) {
        let jobs = jobs_from(&specs);
        let legacy = simulate(
            &jobs,
            SimConfig::single(8),
            &mut EasyScheduler::sjbf(),
            &mut RequestedTimePredictor,
            None,
        ).unwrap();
        let spelled: ClusterSpec = "cluster:8x1.0".parse().unwrap();
        let via_spec = simulate(
            &jobs,
            SimConfig { cluster: spelled },
            &mut EasyScheduler::sjbf(),
            &mut RequestedTimePredictor,
            None,
        ).unwrap();
        prop_assert_eq!(&legacy, &via_spec, "spec spelling changed the run");
        for o in &legacy.outcomes {
            let job = &jobs[o.id.index()];
            prop_assert_eq!(o.partition, 0);
            prop_assert_eq!(o.run, job.run.min(job.requested));
            prop_assert_eq!(o.killed, job.run > job.requested);
        }
    }

    /// Heterogeneous simulations are deterministic and total-capacity
    /// sound: rerunning is identical, every job lands on a partition it
    /// fits, and runs on slow partitions are stretched by the speed rule
    /// (`ceil(run / speed)`, capped by the wall-clock request).
    #[test]
    fn hetero_simulation_is_deterministic_and_speed_scaled(
        cluster in arb_cluster(),
        specs in prop::collection::vec((1u32..=4, 1i64..400, 1i64..400), 1..30),
    ) {
        let jobs = jobs_from(&specs);
        let config = SimConfig { cluster };
        let a = simulate(&jobs, config, &mut EasyScheduler::sjbf(),
                         &mut RequestedTimePredictor, None).unwrap();
        let b = simulate(&jobs, config, &mut EasyScheduler::sjbf(),
                         &mut RequestedTimePredictor, None).unwrap();
        prop_assert_eq!(&a, &b, "hetero simulation must be deterministic");
        for o in &a.outcomes {
            let part = cluster.part(o.partition as usize);
            prop_assert!(o.procs <= part.size, "job wider than its partition");
            let job = &jobs[o.id.index()];
            let scaled = part.scaled_run(job.run);
            prop_assert_eq!(o.run, scaled.min(job.requested));
            prop_assert_eq!(o.killed, scaled > job.requested);
            prop_assert_eq!(o.end.since(o.start), o.run);
        }
    }
}
