//! The no-allocation guarantee: warm scheduler passes must not grow any
//! scratch buffer. Verified through the pool-stats-style
//! [`ScratchStats`] counters the schedulers expose.

use predictsim_sim::engine::{simulate, SimConfig};
use predictsim_sim::job::{Job, JobId};
use predictsim_sim::predict::RequestedTimePredictor;
use predictsim_sim::scheduler::{ConservativeScheduler, EasyScheduler, ReleaseSet, Scheduler};
use predictsim_sim::state::{sorted_shortest_first, RunningJob, SchedulerContext, WaitingJob};
use predictsim_sim::time::Time;

const MACHINE: u32 = 32;

fn contended_jobs(n: u32) -> Vec<Job> {
    (0..n)
        .map(|i| Job {
            id: JobId(i),
            submit: Time(i as i64 * 11),
            run: 40 + (i as i64 * 13) % 400,
            requested: 900,
            procs: 1 + (i % 7),
            user: i % 5,
            user_ix: i % 5,
            swf_id: i as u64 + 1,
        })
        .collect()
}

/// Hermetic pin: after a short warm-up on a fixed context shape, a
/// thousand further passes must not grow any scratch buffer — neither
/// the scheduler's own nor the caller's reused `starts` vector.
#[test]
fn warm_passes_never_reallocate() {
    let queue: Vec<WaitingJob> = (0..12)
        .map(|i| WaitingJob {
            id: JobId(i),
            procs: 4 + (i % 3),
            predicted: 100 + (i as i64 % 4) * 50,
            requested: 1_000,
            submit: Time(i as i64),
            user: 1,
        })
        .collect();
    let running: Vec<RunningJob> = (0..6)
        .map(|i| RunningJob {
            id: JobId(100 + i),
            procs: 4,
            start: Time(0),
            predicted_end: Time(50 + (i as i64 % 3) * 50),
            deadline: Time(10_000),
            user: 1,
            corrections: 0,
            partition: 0,
        })
        .collect();
    let releases = ReleaseSet::from_running(&running);
    let shortest = sorted_shortest_first(&queue);
    let used: u32 = running.iter().map(|r| r.procs).sum();
    let ctx = SchedulerContext {
        now: Time(10),
        partition: 0,
        machine_size: MACHINE,
        free: MACHINE - used,
        queue: &queue,
        running: &running,
        releases: &releases,
        shortest_first: &shortest,
    };

    let mut easy = EasyScheduler::sjbf();
    let mut conservative = ConservativeScheduler::new();
    let mut starts = Vec::new();
    for _ in 0..3 {
        starts.clear();
        easy.schedule_into(&ctx, &mut starts);
        starts.clear();
        conservative.schedule_into(&ctx, &mut starts);
    }
    easy.reset_stats();
    conservative.reset_stats();
    for _ in 0..1_000 {
        starts.clear();
        easy.schedule_into(&ctx, &mut starts);
        starts.clear();
        conservative.schedule_into(&ctx, &mut starts);
    }
    assert_eq!(easy.stats().passes, 1_000);
    assert_eq!(
        easy.stats().reallocating_passes,
        0,
        "warm EASY passes must allocate nothing"
    );
    assert_eq!(conservative.stats().passes, 1_000);
    assert_eq!(
        conservative.stats().reallocating_passes,
        0,
        "warm conservative passes must allocate nothing"
    );
}

/// End-to-end: across a full contended simulation, buffer growth is
/// confined to the warm-up tail — a vanishing fraction of passes — and
/// a second run with the *same* scheduler instance (warm scratch, fresh
/// engine) grows scheduler-owned buffers on at most the handful of
/// passes where the engine's own reused `starts` list is still cold.
#[test]
fn simulation_passes_are_warm_after_startup() {
    let jobs = contended_jobs(1_500);
    let cfg = SimConfig::single(MACHINE);

    let mut sched = EasyScheduler::sjbf();
    simulate(&jobs, cfg, &mut sched, &mut RequestedTimePredictor, None).unwrap();
    let cold = sched.stats();
    assert!(cold.passes > 1_000, "contended workload must pass often");
    assert!(
        cold.reallocating_passes * 50 < cold.passes,
        "buffer growth must be confined to warm-up: {} of {} passes reallocated",
        cold.reallocating_passes,
        cold.passes
    );

    sched.reset_stats();
    simulate(&jobs, cfg, &mut sched, &mut RequestedTimePredictor, None).unwrap();
    let warm = sched.stats();
    assert!(
        warm.reallocating_passes <= 16,
        "second run with warm scratch reallocated {} times",
        warm.reallocating_passes
    );
}
