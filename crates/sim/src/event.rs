//! The discrete-event core: event kinds and a deterministic event queue.
//!
//! Determinism matters: the paper's campaign compares 128 heuristic triples
//! per log, and any tie-breaking nondeterminism in the simulator would
//! contaminate those comparisons. Events are totally ordered by
//! `(time, kind rank, insertion sequence)`:
//!
//! 1. **Finish** events first — completions free resources and teach the
//!    predictor before anything else at the same instant;
//! 2. **PredictionExpiry** next — corrections see the post-completion state;
//! 3. **Submit** last — a job arriving exactly when another ends sees the
//!    freed machine.

use std::collections::BinaryHeap;

use crate::job::JobId;
use crate::time::Time;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A running job completes (or is killed at its requested time).
    Finish(JobId),
    /// A running job's predicted end passed but the job is still running;
    /// the correction mechanism must produce a new prediction (§5.2). The
    /// generation counter invalidates stale expiries after a correction.
    PredictionExpiry(JobId, u32),
    /// A job enters the waiting queue.
    Submit(JobId),
}

impl EventKind {
    /// Processing rank at equal times (lower runs first).
    fn rank(&self) -> u8 {
        match self {
            EventKind::Finish(_) => 0,
            EventKind::PredictionExpiry(_, _) => 1,
            EventKind::Submit(_) => 2,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to get the earliest event first.
        (other.time, other.kind.rank(), other.seq).cmp(&(self.time, self.kind.rank(), self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events.
///
/// Internally a hybrid: a bulk schedule whose items arrive already
/// sorted by `(time, rank, seq)` (the common case — a workload's submit
/// events, sorted by submission) is kept as a plain vector drained
/// front to back, and only *dynamically scheduled* events (finishes,
/// prediction expiries) go through a binary heap. The heap therefore
/// holds O(in-flight) events instead of O(total), and popping a bulk
/// event is a cursor increment — while the pop order stays exactly the
/// total `(time, rank, seq)` order: bulk events carry the smallest
/// sequence numbers, so merging the two sources by that key reproduces
/// the single-heap order bit for bit.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// The pre-sorted bulk schedule, drained via `cursor`.
    schedule: Vec<Event>,
    cursor: usize,
    /// Dynamically pushed events (always later in sequence than every
    /// bulk event).
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue from `items` in O(n). Sequence numbers are
    /// assigned in iteration order, so the pop order is identical to
    /// pushing the items one by one (events are totally ordered by
    /// `(time, rank, seq)`; out-of-order items just fall back to the
    /// heap).
    pub fn from_schedule<I>(items: I) -> Self
    where
        I: IntoIterator<Item = (Time, EventKind)>,
    {
        let mut queue = Self::new();
        queue.reset_from_schedule(items);
        queue
    }

    /// Like [`EventQueue::from_schedule`], but reuses this queue's
    /// buffers (the cross-simulation scratch-reuse seam). The pop order
    /// is identical to a freshly built queue.
    pub fn reset_from_schedule<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (Time, EventKind)>,
    {
        self.schedule.clear();
        self.cursor = 0;
        let mut heap_vec = std::mem::take(&mut self.heap).into_vec();
        heap_vec.clear();
        self.schedule.extend(
            items
                .into_iter()
                .enumerate()
                .map(|(seq, (time, kind))| Event {
                    time,
                    kind,
                    seq: seq as u64,
                }),
        );
        self.next_seq = self.schedule.len() as u64;
        // The fast path requires the bulk schedule to be sorted by the
        // total event order; spill any out-of-order suffix to the heap
        // (sequence numbers already reflect iteration order, so the
        // merged pop order is unchanged).
        if let Some(first_bad) = self
            .schedule
            .windows(2)
            .position(|w| sort_key(&w[1]) < sort_key(&w[0]))
        {
            heap_vec.extend(self.schedule.drain(first_bad + 1..));
        }
        self.heap = BinaryHeap::from(heap_vec);
    }

    /// Capacity of the underlying buffers (scratch-reuse accounting).
    pub fn capacity(&self) -> usize {
        self.schedule.capacity() + self.heap.capacity()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, kind, seq });
    }

    /// The next bulk event, if any.
    #[inline]
    fn bulk_front(&self) -> Option<&Event> {
        self.schedule.get(self.cursor)
    }

    /// True when the next event in total order comes from the bulk
    /// schedule rather than the heap.
    #[inline]
    fn bulk_first(&self) -> Option<bool> {
        match (self.bulk_front(), self.heap.peek()) {
            (Some(b), Some(h)) => Some(sort_key(b) <= sort_key(h)),
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match self.bulk_first()? {
            true => {
                let event = self.schedule[self.cursor];
                self.cursor += 1;
                Some(event)
            }
            false => self.heap.pop(),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        match self.bulk_first()? {
            true => self.bulk_front().map(|e| e.time),
            false => self.heap.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        (self.schedule.len() - self.cursor) + self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The total event order `(time, rank, seq)` as a comparable key.
#[inline]
fn sort_key(e: &Event) -> (Time, u8, u64) {
    (e.time, e.kind.rank(), e.seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), EventKind::Submit(JobId(3)));
        q.push(Time(10), EventKind::Submit(JobId(1)));
        q.push(Time(20), EventKind::Submit(JobId(2)));
        let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn finish_before_expiry_before_submit_at_same_time() {
        let mut q = EventQueue::new();
        q.push(Time(5), EventKind::Submit(JobId(1)));
        q.push(Time(5), EventKind::PredictionExpiry(JobId(2), 0));
        q.push(Time(5), EventKind::Finish(JobId(3)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Finish(_)));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::PredictionExpiry(_, _)
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Submit(_)));
    }

    #[test]
    fn same_kind_same_time_is_fifo() {
        let mut q = EventQueue::new();
        for id in 0..100u32 {
            q.push(Time(1), EventKind::Submit(JobId(id)));
        }
        for expect in 0..100u32 {
            match q.pop().unwrap().kind {
                EventKind::Submit(JobId(id)) => assert_eq!(id, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn from_schedule_pops_like_sequential_pushes() {
        let items: Vec<(Time, EventKind)> = (0..200u32)
            .map(|i| (Time(((i * 7919) % 97) as i64), EventKind::Submit(JobId(i))))
            .collect();
        let mut pushed = EventQueue::new();
        for &(t, k) in &items {
            pushed.push(t, k);
        }
        let mut bulk = EventQueue::from_schedule(items);
        loop {
            match (pushed.pop(), bulk.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "heapified pop order diverged"),
            }
        }
    }

    #[test]
    fn from_schedule_continues_sequence_numbers() {
        let mut q = EventQueue::from_schedule([(Time(5), EventKind::Submit(JobId(0)))]);
        // A later push at the same (time, rank) must order after the
        // bulk-scheduled event: its seq continues where the bulk left off.
        q.push(Time(5), EventKind::Submit(JobId(1)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Submit(JobId(0))));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Submit(JobId(1))));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time(1), EventKind::Finish(JobId(0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
