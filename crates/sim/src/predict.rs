//! Prediction and correction interfaces, plus the two trivial baselines.
//!
//! The engine consults a [`RuntimePredictor`] once per job at submission
//! time and notifies it of every completion (the on-line train/test
//! protocol of §4.2: each job is predicted *before* its outcome is used
//! for learning). When a running job outlives its prediction, a
//! [`CorrectionPolicy`] produces a replacement estimate (§5.2).
//!
//! The learning-based predictors live in `predictsim-core`; this module
//! only defines the contracts and the two baselines that need no learning
//! state: [`ClairvoyantPredictor`] (perfect information — the paper's
//! upper-bound reference in Tables 1 and 6) and
//! [`RequestedTimePredictor`] (the user estimate — plain EASY).

use crate::job::Job;
use crate::state::SystemView;

/// Produces and refines running-time predictions, on-line.
pub trait RuntimePredictor {
    /// Predicts the running time (seconds) of `job` at its release date.
    ///
    /// The engine clamps the returned value into `[1, p̃_j]`: §5.2 requires
    /// predictions to stay bounded by the requested time, and a
    /// non-positive prediction is meaningless.
    fn predict(&mut self, job: &Job, system: &SystemView<'_>) -> f64;

    /// Observes a completed job and its granted running time (seconds).
    ///
    /// Called exactly once per job, at completion time, in completion
    /// order — this is where on-line learners update their model.
    fn observe(&mut self, job: &Job, actual_run: i64, system: &SystemView<'_>);

    /// Whether this predictor reads per-user aggregates over the
    /// running set ([`SystemView::user_running`]). When `true`, the
    /// engine maintains the per-user index incrementally; when `false`
    /// (the default), it skips that bookkeeping entirely — the index is
    /// pure overhead for predictors that never consult the system state
    /// (clairvoyant, requested-time, AVE₂). Either way the *values* a
    /// consumer computes are identical: the index and a scan of
    /// `running` aggregate the same set.
    fn wants_user_running_index(&self) -> bool {
        false
    }

    /// Short display name used in reports (e.g. `"clairvoyant"`).
    fn name(&self) -> String;
}

/// Produces a new total-running-time estimate after an expiry (§5.2).
pub trait CorrectionPolicy {
    /// Called when `job` has been running `elapsed` seconds and its
    /// current prediction `expired_prediction` (measured from the start of
    /// the job) has just elapsed without completion. `corrections_so_far`
    /// counts previous corrections of this job.
    ///
    /// Returns a new total prediction (seconds from job start). The engine
    /// clamps it into `(elapsed, p̃_j]` — it must exceed the elapsed time
    /// and may never pass the requested bound.
    fn correct(
        &self,
        job: &Job,
        elapsed: i64,
        expired_prediction: i64,
        corrections_so_far: u32,
    ) -> f64;

    /// Short display name used in reports (e.g. `"incremental"`).
    fn name(&self) -> String;
}

/// Perfect predictions: returns the exact granted running time.
///
/// This is the paper's *Clairvoyant* reference ("as if the users were
/// entirely clairvoyant", §2.2) — an upper bound on what any prediction
/// technique can achieve. It never triggers corrections.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClairvoyantPredictor;

impl RuntimePredictor for ClairvoyantPredictor {
    fn predict(&mut self, job: &Job, _system: &SystemView<'_>) -> f64 {
        job.granted_run() as f64
    }

    fn observe(&mut self, _job: &Job, _actual_run: i64, _system: &SystemView<'_>) {}

    fn name(&self) -> String {
        "clairvoyant".into()
    }
}

/// User-estimate predictions: returns the requested time `p̃_j`.
///
/// EASY with this predictor is exactly the standard EASY backfilling
/// algorithm (§6.2: "the case where Requested Time is used as prediction
/// technique and EASY as the backfilling variant corresponds to the
/// standard EASY backfilling algorithm"). Since `p ≤ p̃` always holds
/// after log cleaning, it never under-predicts and never needs correction.
#[derive(Debug, Default, Clone, Copy)]
pub struct RequestedTimePredictor;

impl RuntimePredictor for RequestedTimePredictor {
    fn predict(&mut self, job: &Job, _system: &SystemView<'_>) -> f64 {
        job.requested as f64
    }

    fn observe(&mut self, _job: &Job, _actual_run: i64, _system: &SystemView<'_>) {}

    fn name(&self) -> String {
        "requested".into()
    }
}

/// The *Requested Time* correction (§5.2): on under-prediction, fall back
/// to the user's requested running time.
#[derive(Debug, Default, Clone, Copy)]
pub struct RequestedTimeCorrection;

impl CorrectionPolicy for RequestedTimeCorrection {
    fn correct(
        &self,
        job: &Job,
        _elapsed: i64,
        _expired_prediction: i64,
        _corrections_so_far: u32,
    ) -> f64 {
        job.requested as f64
    }

    fn name(&self) -> String {
        "requested-time".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::time::Time;

    fn job(run: i64, requested: i64) -> Job {
        Job {
            id: JobId(0),
            submit: Time(0),
            run,
            requested,
            procs: 1,
            user: 1,
            user_ix: 1,
            swf_id: 1,
        }
    }

    fn empty_view() -> SystemView<'static> {
        SystemView {
            user_running: None,
            now: Time(0),
            machine_size: 16,
            running: &[],
        }
    }

    #[test]
    fn clairvoyant_returns_granted_run() {
        let mut p = ClairvoyantPredictor;
        assert_eq!(p.predict(&job(100, 200), &empty_view()), 100.0);
        // A job that will be killed at its request is predicted at the kill time.
        assert_eq!(p.predict(&job(500, 200), &empty_view()), 200.0);
        assert_eq!(p.name(), "clairvoyant");
    }

    #[test]
    fn requested_returns_estimate() {
        let mut p = RequestedTimePredictor;
        assert_eq!(p.predict(&job(100, 200), &empty_view()), 200.0);
        assert_eq!(p.name(), "requested");
    }

    #[test]
    fn requested_correction_returns_request() {
        let c = RequestedTimeCorrection;
        assert_eq!(c.correct(&job(100, 200), 50, 60, 0), 200.0);
        assert_eq!(c.name(), "requested-time");
    }
}
