//! The simulation state layer: indexed mutable state and the read views
//! handed to policies.
//!
//! [`SimState`] owns the waiting queue, the running set, and the free
//! processor count, all cross-indexed by a dense per-job [`Slot`] map so
//! every engine operation — start, finish, prediction expiry — resolves
//! its job in O(1) instead of scanning. It also maintains the
//! [`ReleaseSet`] availability substrate incrementally, so schedulers
//! never rebuild it from the running set.
//!
//! Schedulers and predictors never mutate engine state directly; they read
//! the snapshot views ([`SchedulerContext`], [`SystemView`]) and return
//! decisions, which keeps every policy a (mostly) pure function that is
//! easy to unit-test in isolation.

use crate::cluster::{ClusterSpec, MAX_PARTITIONS};
use crate::job::JobId;
use crate::scheduler::profile::ReleaseSet;
use crate::time::Time;

/// A job sitting in the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingJob {
    /// Which job.
    pub id: JobId,
    /// Resource requirement `q_j`.
    pub procs: u32,
    /// Current predicted running time `p̂_j` used for scheduling decisions.
    pub predicted: i64,
    /// Requested running time `p̃_j` (the kill bound, never exceeded by
    /// `predicted`).
    pub requested: i64,
    /// Submission date (queue priority under FCFS).
    pub submit: Time,
    /// Submitting user as the *interned* dense index (`Job::user_ix`) —
    /// the key into the per-user running index and history slabs.
    pub user: u32,
}

/// A job currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Which job.
    pub id: JobId,
    /// Processors held.
    pub procs: u32,
    /// When it started.
    pub start: Time,
    /// When the scheduler currently believes it will end
    /// (`start + current prediction`), updated by corrections.
    pub predicted_end: Time,
    /// Requested-time bound on the end (`start + p̃`); the job is killed
    /// at this instant at the latest, so no prediction may exceed it.
    pub deadline: Time,
    /// Submitting user as the *interned* dense index (`Job::user_ix`).
    pub user: u32,
    /// How many corrections (§5.2) this job has received so far.
    pub corrections: u32,
    /// The cluster partition the job was placed on (0 on the legacy
    /// single-partition machine).
    pub partition: u32,
}

impl RunningJob {
    /// Time the job has been running as of `now`.
    #[inline]
    pub fn elapsed(&self, now: Time) -> i64 {
        now.since(self.start)
    }

    /// Predicted remaining running time as of `now` (can be negative if
    /// the prediction already expired and is awaiting correction).
    #[inline]
    pub fn predicted_remaining(&self, now: Time) -> i64 {
        self.predicted_end.since(now)
    }
}

/// Incrementally maintained per-user view of the running set.
///
/// Table 2's "current state of the system" features are per-user
/// aggregates over the running jobs (count, processors held, elapsed
/// times), which a predictor would otherwise recompute by scanning the
/// *whole* running set at every submission — O(running) per prediction,
/// the dominant feature-extraction cost on large machines. The engine
/// maintains this index on every start and finish instead, so
/// [`SystemView::running_of_user`]-style queries touch only the user's
/// own jobs.
///
/// Entries are `(procs, start)` pairs — exactly the fields the Table 2
/// aggregates read. Two identical pairs of one user are
/// interchangeable, so removal by value is sound, and the per-user
/// aggregates are order-free (integer-valued `f64` sums and maxima), so
/// iteration order never affects a feature value.
///
/// The index is a flat slab addressed by the *interned* dense user
/// index (`Job::user_ix`, assigned at load time) — no hashing per
/// event, and the active-user count is a counter maintained on the
/// empty↔non-empty transitions instead of an O(U) scan.
#[derive(Debug, Clone, Default)]
pub struct UserRunning {
    /// `users[user_ix]` = that user's running `(procs, start)` pairs.
    /// Grown lazily to the highest user index seen.
    users: Vec<Vec<(u32, Time)>>,
    /// Number of slots that are currently non-empty.
    active: usize,
}

impl UserRunning {
    /// The `(procs, start)` pairs of `user`'s running jobs, unordered.
    pub fn of_user(&self, user: u32) -> &[(u32, Time)] {
        self.users
            .get(user as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of users with at least one running job (maintained
    /// counter, O(1)).
    pub fn active_users(&self) -> usize {
        self.active
    }

    fn add(&mut self, user: u32, procs: u32, start: Time) {
        let ix = user as usize;
        if ix >= self.users.len() {
            self.users.resize_with(ix + 1, Vec::new);
        }
        let jobs = &mut self.users[ix];
        if jobs.is_empty() {
            self.active += 1;
        }
        jobs.push((procs, start));
    }

    fn remove(&mut self, user: u32, procs: u32, start: Time) {
        let jobs = self
            .users
            .get_mut(user as usize)
            .expect("user has running jobs");
        let index = jobs
            .iter()
            .position(|&(p, s)| p == procs && s == start)
            .expect("running job indexed under its user");
        jobs.swap_remove(index);
        if jobs.is_empty() {
            self.active -= 1;
        }
    }

    /// Empties the index, keeping per-user buffer capacities (scratch
    /// reuse across simulations).
    fn clear(&mut self) {
        for jobs in &mut self.users {
            jobs.clear();
        }
        self.active = 0;
    }

    /// Total capacity (in elements) of the owned buffers.
    fn capacity(&self) -> usize {
        self.users.capacity() + self.users.iter().map(Vec::capacity).sum::<usize>()
    }
}

/// Snapshot handed to a [`crate::scheduler::Scheduler`] for one pass.
///
/// One pass schedules **one partition**: `machine_size`, `free` and
/// `releases` are scoped to `partition`, while `queue`, `running` and
/// `shortest_first` are cluster-global (schedulers that read `running`
/// must filter by [`RunningJob::partition`]). On the legacy
/// single-partition machine the scoped and global views coincide.
#[derive(Debug)]
pub struct SchedulerContext<'a> {
    /// Current simulation time.
    pub now: Time,
    /// The partition this pass places jobs onto.
    pub partition: u32,
    /// Size of this partition (the legacy machine size `m` when the
    /// cluster has one partition).
    pub machine_size: u32,
    /// Processors currently idle *in this partition*.
    pub free: u32,
    /// Waiting queue in FCFS (arrival) order (cluster-global).
    pub queue: &'a [WaitingJob],
    /// Running jobs, unordered (cluster-global — filter by
    /// [`RunningJob::partition`] for per-partition reasoning).
    pub running: &'a [RunningJob],
    /// Incrementally maintained aggregate of *this partition's* running
    /// jobs' future capacity releases (sorted by predicted end).
    /// Invariant: its aggregated contents equal the multiset of
    /// `(predicted_end, procs)` over the running jobs with
    /// `partition == ctx.partition`.
    pub releases: &'a ReleaseSet,
    /// Queue positions sorted by `(predicted, submit, id)` — the
    /// shortest-job-first view of `queue`, maintained incrementally (a
    /// waiting job's key never changes, so the order only moves on
    /// submit and start). EASY-SJBF reads its backfill candidates from
    /// here instead of sorting per pass.
    pub shortest_first: &'a [u32],
}

/// Lifecycle position of one job, the value of [`SimState`]'s dense
/// per-job slot map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Not yet submitted (no engine state holds the job).
    Unsubmitted,
    /// Waiting, at this index of the queue.
    Waiting(u32),
    /// Running, at this index of the running vector.
    Running(u32),
    /// Completed (an outcome exists).
    Finished,
}

/// Indexed mutable simulation state.
///
/// The queue stays in FCFS (submit, id) order; the running vector is
/// unordered and removal is swap-remove. The slot map is kept exact
/// under both disciplines: a swap-remove rewrites the moved job's slot,
/// and queue compaction (after starts) rewrites the slots of every
/// shifted entry. All buffers are allocated once per run and reused.
///
/// Starts are two-phase: [`SimState::start`] transitions jobs
/// waiting→running one at a time (so capacity checks interleave), and
/// [`SimState::compact_queue`] then drops the started entries from the
/// queue in a single order-preserving sweep. Between the two, the raw
/// queue contains already-started entries, so [`SimState::queue`]
/// asserts no starts are pending.
#[derive(Debug, Clone)]
pub struct SimState {
    cluster: ClusterSpec,
    /// Idle processors per partition (entries past the cluster length
    /// are unused and zero).
    free: [u32; MAX_PARTITIONS],
    /// Idle processors across all partitions.
    total_free: u32,
    queue: Vec<WaitingJob>,
    running: Vec<RunningJob>,
    slots: Vec<Slot>,
    /// One release aggregate per partition (extra entries from a wider
    /// earlier run are kept empty for scratch reuse).
    releases: Vec<ReleaseSet>,
    /// Queue positions sorted by `(predicted, submit, id)`.
    shortest_first: Vec<u32>,
    /// Old-position → new-position scratch for queue compaction.
    remap: Vec<u32>,
    /// Per-user index over `running` (see [`UserRunning`]).
    user_running: UserRunning,
    /// Whether the per-user index is maintained this run (predictors
    /// that never read it skip the bookkeeping — see
    /// [`crate::predict::RuntimePredictor::wants_user_running_index`]).
    user_index_enabled: bool,
    pending_starts: u32,
}

/// Sentinel for "entry removed" in the compaction remap.
const REMOVED: u32 = u32::MAX;

impl Default for SimState {
    /// An empty state for zero jobs on a zero-processor machine; reset
    /// it (see [`SimState::reset`]) before use.
    fn default() -> Self {
        Self::new(0, 0)
    }
}

/// Queue positions sorted by the shortest-job-first key
/// `(predicted, submit, id)` — the order [`SimState`] maintains
/// incrementally. The from-scratch form exists for tests and oracles
/// (and [`SimState::assert_consistent`] checks the incremental view
/// against it), so every consumer tracks one key definition.
pub fn sorted_shortest_first(queue: &[WaitingJob]) -> Vec<u32> {
    let mut positions: Vec<u32> = (0..queue.len() as u32).collect();
    positions.sort_by_key(|&p| SimState::sjbf_key(&queue[p as usize]));
    positions
}

impl SimState {
    /// Fresh state for `jobs` jobs on a single-partition
    /// `machine_size`-processor machine (the legacy constructor).
    pub fn new(machine_size: u32, jobs: usize) -> Self {
        Self::new_cluster(ClusterSpec::single(machine_size), jobs)
    }

    /// Fresh state for `jobs` jobs on `cluster`.
    pub fn new_cluster(cluster: ClusterSpec, jobs: usize) -> Self {
        let mut state = Self {
            cluster,
            free: [0; MAX_PARTITIONS],
            total_free: 0,
            queue: Vec::new(),
            running: Vec::new(),
            slots: vec![Slot::Unsubmitted; jobs],
            releases: Vec::new(),
            shortest_first: Vec::new(),
            remap: Vec::new(),
            user_running: UserRunning::default(),
            user_index_enabled: true,
            pending_starts: 0,
        };
        state.reset_capacity(cluster);
        state
    }

    /// (Re)derives the per-partition free counters and release sets from
    /// `cluster`, keeping release-set capacity.
    fn reset_capacity(&mut self, cluster: ClusterSpec) {
        self.cluster = cluster;
        self.free = [0; MAX_PARTITIONS];
        for (i, p) in cluster.partitions().iter().enumerate() {
            self.free[i] = p.size;
        }
        self.total_free = cluster.total_procs();
        while self.releases.len() < cluster.len() {
            self.releases.push(ReleaseSet::new());
        }
        for set in &mut self.releases {
            set.clear();
        }
    }

    /// Re-initializes this state for a fresh run of `jobs` jobs on
    /// `cluster`, keeping every buffer's capacity (the cross-simulation
    /// scratch-reuse seam — see [`crate::arena::SimArena`]).
    /// `user_index` controls whether the per-user running index is
    /// maintained for this run.
    pub fn reset(&mut self, cluster: ClusterSpec, jobs: usize, user_index: bool) {
        self.user_index_enabled = user_index;
        self.queue.clear();
        self.running.clear();
        self.slots.clear();
        self.slots.resize(jobs, Slot::Unsubmitted);
        self.shortest_first.clear();
        self.remap.clear();
        self.user_running.clear();
        self.pending_starts = 0;
        self.reset_capacity(cluster);
    }

    /// Total capacity (in elements) of the owned buffers — the
    /// scratch-reuse accounting [`crate::arena::ArenaStats`] watches.
    pub fn scratch_capacity(&self) -> usize {
        self.queue.capacity()
            + self.running.capacity()
            + self.slots.capacity()
            + self
                .releases
                .iter()
                .map(ReleaseSet::capacity)
                .sum::<usize>()
            + self.shortest_first.capacity()
            + self.remap.capacity()
            + self.user_running.capacity()
    }

    /// The shortest-job-first key of a waiting job.
    #[inline]
    fn sjbf_key(w: &WaitingJob) -> (i64, Time, JobId) {
        (w.predicted, w.submit, w.id)
    }

    /// The cluster this state simulates.
    pub fn cluster(&self) -> ClusterSpec {
        self.cluster
    }

    /// Total processors across all partitions (the legacy machine size
    /// `m` on a single-partition cluster).
    pub fn machine_size(&self) -> u32 {
        self.cluster.total_procs()
    }

    /// Processors currently idle across all partitions.
    pub fn free(&self) -> u32 {
        self.total_free
    }

    /// Processors currently idle in `partition`.
    pub fn free_in(&self, partition: u32) -> u32 {
        self.free[partition as usize]
    }

    /// The waiting queue in FCFS order.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) while starts are pending compaction — the
    /// raw queue still contains the started entries then.
    pub fn queue(&self) -> &[WaitingJob] {
        debug_assert_eq!(
            self.pending_starts, 0,
            "queue read while starts await compaction"
        );
        &self.queue
    }

    /// Number of waiting jobs (excluding started-but-uncompacted entries).
    pub fn queue_len(&self) -> usize {
        self.queue.len() - self.pending_starts as usize
    }

    /// True when no job is waiting.
    pub fn queue_is_empty(&self) -> bool {
        self.queue_len() == 0
    }

    /// The running jobs, unordered.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// The incrementally maintained release aggregate of partition 0 —
    /// the whole machine's aggregate on the legacy single-partition
    /// cluster (single-partition convenience; use
    /// [`SimState::releases_in`] on multi-partition clusters).
    pub fn releases(&self) -> &ReleaseSet {
        &self.releases[0]
    }

    /// The incrementally maintained release aggregate of `partition`.
    pub fn releases_in(&self, partition: u32) -> &ReleaseSet {
        &self.releases[partition as usize]
    }

    /// The incrementally maintained per-user view of the running set,
    /// when it is being maintained this run (`None` when the predictor
    /// declined it — consumers then fall back to scanning `running`,
    /// which aggregates the same set).
    pub fn user_running(&self) -> Option<&UserRunning> {
        self.user_index_enabled.then_some(&self.user_running)
    }

    /// Queue positions sorted by `(predicted, submit, id)` (see
    /// [`SchedulerContext::shortest_first`]).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) while starts are pending compaction, like
    /// [`SimState::queue`].
    pub fn shortest_first(&self) -> &[u32] {
        debug_assert_eq!(
            self.pending_starts, 0,
            "shortest_first read while starts await compaction"
        );
        &self.shortest_first
    }

    /// The job's lifecycle slot.
    pub fn slot(&self, id: JobId) -> Slot {
        self.slots[id.index()]
    }

    /// O(1) lookup: the queue index of a waiting job.
    pub fn waiting_index(&self, id: JobId) -> Option<usize> {
        match self.slots[id.index()] {
            Slot::Waiting(i) => Some(i as usize),
            _ => None,
        }
    }

    /// O(1) lookup: the running-vector index of a running job.
    pub fn running_index(&self, id: JobId) -> Option<usize> {
        match self.slots[id.index()] {
            Slot::Running(i) => Some(i as usize),
            _ => None,
        }
    }

    /// The waiting job at `index` (valid even while starts are pending
    /// compaction, unlike [`SimState::queue`]).
    pub fn waiting_at(&self, index: usize) -> &WaitingJob {
        &self.queue[index]
    }

    /// Appends a newly submitted job to the queue tail.
    pub fn enqueue(&mut self, w: WaitingJob) {
        debug_assert_eq!(
            self.slots[w.id.index()],
            Slot::Unsubmitted,
            "{} enqueued twice",
            w.id
        );
        debug_assert_eq!(self.pending_starts, 0, "enqueue during start application");
        let position = self.queue.len() as u32;
        let rank = self
            .shortest_first
            .binary_search_by_key(&Self::sjbf_key(&w), |&p| {
                Self::sjbf_key(&self.queue[p as usize])
            })
            .expect_err("sjbf keys are unique (id component)");
        self.slots[w.id.index()] = Slot::Waiting(position);
        self.queue.push(w);
        self.shortest_first.insert(rank, position);
    }

    /// Transitions the waiting job at `queue_index` to running as `r`.
    /// The queue entry stays in place (tombstoned via the slot map) until
    /// [`SimState::compact_queue`].
    pub fn start(&mut self, queue_index: usize, r: RunningJob) {
        let w = self.queue[queue_index];
        debug_assert_eq!(w.id, r.id, "start() running job mismatches queue entry");
        debug_assert_eq!(self.slots[w.id.index()], Slot::Waiting(queue_index as u32));
        let partition = r.partition as usize;
        debug_assert!(
            partition < self.cluster.len(),
            "start() on unknown partition"
        );
        debug_assert!(
            r.procs <= self.free[partition],
            "start() over-commits partition {partition}"
        );
        self.free[partition] -= r.procs;
        self.total_free -= r.procs;
        self.slots[w.id.index()] = Slot::Running(self.running.len() as u32);
        self.releases[partition].add(r.predicted_end.0, r.procs);
        if self.user_index_enabled {
            self.user_running.add(r.user, r.procs, r.start);
        }
        self.running.push(r);
        self.pending_starts += 1;
    }

    /// Drops started entries from the queue in one order-preserving
    /// sweep, reindexing the slots of every shifted waiter and remapping
    /// the shortest-first view (a sorted list stays sorted under subset
    /// removal, so no re-sort).
    pub fn compact_queue(&mut self) {
        if self.pending_starts == 0 {
            return;
        }
        self.remap.clear();
        self.remap.resize(self.queue.len(), REMOVED);
        let mut write = 0;
        for read in 0..self.queue.len() {
            let id = self.queue[read].id;
            if matches!(self.slots[id.index()], Slot::Waiting(_)) {
                self.queue[write] = self.queue[read];
                self.slots[id.index()] = Slot::Waiting(write as u32);
                self.remap[read] = write as u32;
                write += 1;
            }
        }
        self.queue.truncate(write);
        let remap = &self.remap;
        self.shortest_first.retain_mut(|position| {
            let new = remap[*position as usize];
            *position = new;
            new != REMOVED
        });
        self.pending_starts = 0;
    }

    /// Completes a running job: swap-removes it (rewriting the moved
    /// job's slot), frees its processors, and retires its release.
    /// Returns `None` when the job is not running (a stale event).
    pub fn finish(&mut self, id: JobId) -> Option<RunningJob> {
        let index = self.running_index(id)?;
        let r = self.running.swap_remove(index);
        if index < self.running.len() {
            let moved = self.running[index].id;
            self.slots[moved.index()] = Slot::Running(index as u32);
        }
        self.slots[id.index()] = Slot::Finished;
        self.free[r.partition as usize] += r.procs;
        self.total_free += r.procs;
        self.releases[r.partition as usize].remove(r.predicted_end.0, r.procs);
        if self.user_index_enabled {
            self.user_running.remove(r.user, r.procs, r.start);
        }
        Some(r)
    }

    /// Applies a correction to the running job at `running_index`: moves
    /// its release to `new_predicted_end` and bumps its generation
    /// counter. Returns the new generation.
    pub fn apply_correction(&mut self, running_index: usize, new_predicted_end: Time) -> u32 {
        let r = &mut self.running[running_index];
        self.releases[r.partition as usize].shift(r.predicted_end.0, new_predicted_end.0, r.procs);
        r.predicted_end = new_predicted_end;
        r.corrections += 1;
        r.corrections
    }

    /// Exhaustively re-checks every cross-index invariant (test hook;
    /// O(n log n), not called on any hot path).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[doc(hidden)]
    pub fn assert_consistent(&self) {
        assert_eq!(self.pending_starts, 0, "starts pending compaction");
        for (i, w) in self.queue.iter().enumerate() {
            assert_eq!(
                self.slots[w.id.index()],
                Slot::Waiting(i as u32),
                "queue[{i}] = {} has slot {:?}",
                w.id,
                self.slots[w.id.index()]
            );
        }
        for (i, r) in self.running.iter().enumerate() {
            assert_eq!(
                self.slots[r.id.index()],
                Slot::Running(i as u32),
                "running[{i}] = {} has slot {:?}",
                r.id,
                self.slots[r.id.index()]
            );
        }
        let waiting = self
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Waiting(_)))
            .count();
        let running = self
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Running(_)))
            .count();
        assert_eq!(waiting, self.queue.len(), "slot map counts extra waiters");
        assert_eq!(running, self.running.len(), "slot map counts extra runners");
        let used: u32 = self.running.iter().map(|r| r.procs).sum();
        assert_eq!(
            self.total_free,
            self.cluster.total_procs() - used,
            "total free-processor accounting drifted"
        );
        for (p, part) in self.cluster.partitions().iter().enumerate() {
            let used_in: u32 = self
                .running
                .iter()
                .filter(|r| r.partition as usize == p)
                .map(|r| r.procs)
                .sum();
            assert_eq!(
                self.free[p],
                part.size - used_in,
                "partition {p} free-processor accounting drifted"
            );
            let filtered: Vec<RunningJob> = self
                .running
                .iter()
                .filter(|r| r.partition as usize == p)
                .copied()
                .collect();
            assert_eq!(
                self.releases[p],
                ReleaseSet::from_running(&filtered),
                "partition {p} release set drifted from the running set"
            );
        }
        assert_eq!(
            self.shortest_first,
            sorted_shortest_first(&self.queue),
            "shortest-first view drifted from the queue"
        );
        if !self.user_index_enabled {
            return;
        }
        let mut expected: Vec<(u32, u32, Time)> = self
            .running
            .iter()
            .map(|r| (r.user, r.procs, r.start))
            .collect();
        let mut indexed: Vec<(u32, u32, Time)> = self
            .running
            .iter()
            .map(|r| r.user)
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .flat_map(|user| {
                self.user_running
                    .of_user(user)
                    .iter()
                    .map(move |&(procs, start)| (user, procs, start))
            })
            .collect();
        expected.sort();
        indexed.sort();
        assert_eq!(indexed, expected, "per-user running index drifted");
        let brute_force_active = self
            .running
            .iter()
            .map(|r| r.user)
            .collect::<std::collections::BTreeSet<u32>>()
            .len();
        assert_eq!(
            self.user_running.active_users(),
            brute_force_active,
            "active-user counter drifted from the running set"
        );
    }
}

/// Snapshot handed to a [`crate::predict::RuntimePredictor`] when a job is
/// submitted. Carries the "current state of the system" features of
/// Table 2 (jobs currently running, occupied resources, …).
#[derive(Debug)]
pub struct SystemView<'a> {
    /// Current simulation time (the job's release date).
    pub now: Time,
    /// Machine size `m`.
    pub machine_size: u32,
    /// Running jobs, unordered.
    pub running: &'a [RunningJob],
    /// The engine's incrementally maintained per-user index over
    /// `running`, when one is available (views built by hand in tests
    /// may pass `None`; consumers must treat the index and a scan of
    /// `running` as interchangeable — they aggregate the same set).
    pub user_running: Option<&'a UserRunning>,
}

impl SystemView<'_> {
    /// Iterator over running jobs belonging to `user` — the basis of the
    /// "currently running" features of Table 2.
    pub fn running_of_user(&self, user: u32) -> impl Iterator<Item = &RunningJob> {
        self.running.iter().filter(move |r| r.user == user)
    }

    /// Total processors occupied by `user` right now
    /// (Table 2's "Occupied Resources").
    pub fn occupied_resources(&self, user: u32) -> u64 {
        self.running_of_user(user).map(|r| r.procs as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The slab's maintained `active_users` counter and per-user
        /// slices agree with a brute-force model under arbitrary
        /// add/remove/clear interleavings over a sparse index space.
        #[test]
        fn user_running_counter_agrees_with_brute_force(
            ops in prop::collection::vec(
                (0u32..40, 1u32..8, 0i64..1_000, 0u8..8),
                1..120
            ),
        ) {
            let mut index = UserRunning::default();
            // Model: user → multiset of (procs, start).
            let mut model: std::collections::BTreeMap<u32, Vec<(u32, Time)>> =
                Default::default();
            for (user, procs, start, action) in ops {
                // Spread users across a sparse index range: the slab
                // must handle gaps, not just dense prefixes.
                let user = user * 7;
                match action {
                    0 if !model.is_empty() => {
                        // Remove one existing entry (deterministically:
                        // the first user's first entry).
                        let (&u, entries) = model.iter_mut().next().unwrap();
                        let (p, s) = entries[0];
                        entries.swap_remove(0);
                        if entries.is_empty() {
                            model.remove(&u);
                        }
                        index.remove(u, p, s);
                    }
                    1 => {
                        index.clear();
                        model.clear();
                    }
                    _ => {
                        index.add(user, procs, Time(start));
                        model.entry(user).or_default().push((procs, Time(start)));
                    }
                }
                prop_assert_eq!(
                    index.active_users(),
                    model.len(),
                    "maintained counter diverged from brute force"
                );
                for (&u, entries) in &model {
                    let mut got: Vec<(u32, Time)> = index.of_user(u).to_vec();
                    let mut want = entries.clone();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    fn rj(id: u32, user: u32, procs: u32, start: i64, pend: i64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            procs,
            start: Time(start),
            predicted_end: Time(pend),
            deadline: Time(pend + 1000),
            user,
            corrections: 0,
            partition: 0,
        }
    }

    #[test]
    fn elapsed_and_remaining() {
        let r = rj(1, 1, 4, 100, 500);
        assert_eq!(r.elapsed(Time(250)), 150);
        assert_eq!(r.predicted_remaining(Time(250)), 250);
        assert_eq!(r.predicted_remaining(Time(600)), -100);
    }

    fn wj(id: u32, procs: u32, predicted: i64) -> WaitingJob {
        WaitingJob {
            id: JobId(id),
            procs,
            predicted,
            requested: predicted,
            submit: Time(0),
            user: 1,
        }
    }

    fn running_job(id: u32, procs: u32, start: i64, pend: i64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            procs,
            start: Time(start),
            predicted_end: Time(pend),
            deadline: Time(pend + 1_000),
            user: 1,
            corrections: 0,
            partition: 0,
        }
    }

    /// Starts the waiting job `id` with the given predicted end.
    fn start_job(state: &mut SimState, id: u32, pend: i64) {
        let index = state.waiting_index(JobId(id)).expect("job is waiting");
        let w = *state.waiting_at(index);
        state.start(index, running_job(id, w.procs, 0, pend));
    }

    #[test]
    fn slot_map_tracks_enqueue_start_finish() {
        let mut s = SimState::new(16, 4);
        for id in 0..4 {
            s.enqueue(wj(id, 2 + id, 100 + id as i64));
        }
        s.assert_consistent();
        assert_eq!(s.queue_len(), 4);
        assert_eq!(s.free(), 16);

        // Start jobs 0 and 2 (a backfill skipping 1), then compact.
        start_job(&mut s, 0, 100);
        start_job(&mut s, 2, 104);
        assert_eq!(s.queue_len(), 2, "pending starts excluded from len");
        s.compact_queue();
        s.assert_consistent();
        assert_eq!(s.queue().iter().map(|w| w.id.0).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(s.free(), 16 - 2 - 4);
        assert_eq!(s.waiting_index(JobId(3)), Some(1), "slots reindexed");
        assert_eq!(s.waiting_index(JobId(0)), None, "started job left queue");
        assert_eq!(s.running_index(JobId(2)), Some(1));

        // Finish 0: swap-remove moves 2 into its place; slot must follow.
        let r = s.finish(JobId(0)).expect("running");
        assert_eq!(r.procs, 2);
        assert_eq!(s.running_index(JobId(2)), Some(0), "swap-remove fixup");
        assert_eq!(s.slot(JobId(0)), Slot::Finished);
        s.assert_consistent();
    }

    #[test]
    fn interleaved_finish_expiry_start_sequences_stay_consistent() {
        // A miniature engine batch: starts, corrections (expiry), and
        // finishes interleaved in every order the event ranks allow.
        let mut s = SimState::new(32, 8);
        for id in 0..8 {
            s.enqueue(wj(id, 4, 50 + id as i64));
        }
        for id in 0..6 {
            start_job(&mut s, id, 50 + id as i64);
        }
        s.compact_queue();
        s.assert_consistent();

        // Correct job 3 (expiry): release moves, generation bumps.
        let index = s.running_index(JobId(3)).unwrap();
        let generation = s.apply_correction(index, Time(500));
        assert_eq!(generation, 1);
        assert_eq!(
            s.running()[s.running_index(JobId(3)).unwrap()].corrections,
            1
        );
        s.assert_consistent();

        // Finish out of start order; every removal keeps the map exact.
        for id in [4u32, 0, 3, 5] {
            s.finish(JobId(id)).expect("running");
            s.assert_consistent();
        }
        // Stale events resolve to None in O(1), no scan.
        assert_eq!(s.finish(JobId(4)), None, "double finish is stale");
        assert_eq!(s.running_index(JobId(3)), None);

        // Remaining two run; queue still holds 6 and 7 in order.
        assert_eq!(s.running().len(), 2);
        assert_eq!(s.queue().iter().map(|w| w.id.0).collect::<Vec<_>>(), [6, 7]);
        start_job(&mut s, 6, 300);
        s.compact_queue();
        s.assert_consistent();
        assert_eq!(s.free(), 32 - 3 * 4);
    }

    #[test]
    fn release_set_follows_start_finish_correction() {
        let mut s = SimState::new(8, 3);
        for id in 0..3 {
            s.enqueue(wj(id, 2, 100));
        }
        start_job(&mut s, 0, 100);
        start_job(&mut s, 1, 100);
        start_job(&mut s, 2, 250);
        s.compact_queue();
        let pts = s.releases().points();
        assert_eq!(pts.len(), 2);
        assert_eq!((pts[0].time, pts[0].procs, pts[0].jobs), (100, 4, 2));
        assert_eq!((pts[1].time, pts[1].procs, pts[1].jobs), (250, 2, 1));

        let index = s.running_index(JobId(1)).unwrap();
        s.apply_correction(index, Time(250));
        let pts = s.releases().points();
        assert_eq!((pts[0].time, pts[0].procs, pts[0].jobs), (100, 2, 1));
        assert_eq!((pts[1].time, pts[1].procs, pts[1].jobs), (250, 4, 2));

        s.finish(JobId(0));
        s.finish(JobId(1));
        s.finish(JobId(2));
        assert!(s.releases().is_empty());
        s.assert_consistent();
    }

    #[test]
    fn system_view_user_filters() {
        let running = vec![
            rj(1, 7, 4, 0, 100),
            rj(2, 7, 2, 0, 100),
            rj(3, 9, 8, 0, 100),
        ];
        let view = SystemView {
            now: Time(50),
            machine_size: 64,
            running: &running,
            user_running: None,
        };
        assert_eq!(view.running_of_user(7).count(), 2);
        assert_eq!(view.occupied_resources(7), 6);
        assert_eq!(view.occupied_resources(9), 8);
        assert_eq!(view.occupied_resources(5), 0);
    }
}
