//! Shared read views of the simulator state.
//!
//! Schedulers and predictors never mutate engine state directly; they read
//! these snapshot views and return decisions, which keeps every policy a
//! (mostly) pure function that is easy to unit-test in isolation.

use crate::job::JobId;
use crate::time::Time;

/// A job sitting in the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingJob {
    /// Which job.
    pub id: JobId,
    /// Resource requirement `q_j`.
    pub procs: u32,
    /// Current predicted running time `p̂_j` used for scheduling decisions.
    pub predicted: i64,
    /// Requested running time `p̃_j` (the kill bound, never exceeded by
    /// `predicted`).
    pub requested: i64,
    /// Submission date (queue priority under FCFS).
    pub submit: Time,
    /// Submitting user.
    pub user: u32,
}

/// A job currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Which job.
    pub id: JobId,
    /// Processors held.
    pub procs: u32,
    /// When it started.
    pub start: Time,
    /// When the scheduler currently believes it will end
    /// (`start + current prediction`), updated by corrections.
    pub predicted_end: Time,
    /// Requested-time bound on the end (`start + p̃`); the job is killed
    /// at this instant at the latest, so no prediction may exceed it.
    pub deadline: Time,
    /// Submitting user.
    pub user: u32,
    /// How many corrections (§5.2) this job has received so far.
    pub corrections: u32,
}

impl RunningJob {
    /// Time the job has been running as of `now`.
    #[inline]
    pub fn elapsed(&self, now: Time) -> i64 {
        now.since(self.start)
    }

    /// Predicted remaining running time as of `now` (can be negative if
    /// the prediction already expired and is awaiting correction).
    #[inline]
    pub fn predicted_remaining(&self, now: Time) -> i64 {
        self.predicted_end.since(now)
    }
}

/// Snapshot handed to a [`crate::scheduler::Scheduler`] for one pass.
#[derive(Debug)]
pub struct SchedulerContext<'a> {
    /// Current simulation time.
    pub now: Time,
    /// Machine size `m`.
    pub machine_size: u32,
    /// Processors currently idle.
    pub free: u32,
    /// Waiting queue in FCFS (arrival) order.
    pub queue: &'a [WaitingJob],
    /// Running jobs, unordered.
    pub running: &'a [RunningJob],
}

/// Snapshot handed to a [`crate::predict::RuntimePredictor`] when a job is
/// submitted. Carries the "current state of the system" features of
/// Table 2 (jobs currently running, occupied resources, …).
#[derive(Debug)]
pub struct SystemView<'a> {
    /// Current simulation time (the job's release date).
    pub now: Time,
    /// Machine size `m`.
    pub machine_size: u32,
    /// Running jobs, unordered.
    pub running: &'a [RunningJob],
}

impl SystemView<'_> {
    /// Iterator over running jobs belonging to `user` — the basis of the
    /// "currently running" features of Table 2.
    pub fn running_of_user(&self, user: u32) -> impl Iterator<Item = &RunningJob> {
        self.running.iter().filter(move |r| r.user == user)
    }

    /// Total processors occupied by `user` right now
    /// (Table 2's "Occupied Resources").
    pub fn occupied_resources(&self, user: u32) -> u64 {
        self.running_of_user(user).map(|r| r.procs as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rj(id: u32, user: u32, procs: u32, start: i64, pend: i64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            procs,
            start: Time(start),
            predicted_end: Time(pend),
            deadline: Time(pend + 1000),
            user,
            corrections: 0,
        }
    }

    #[test]
    fn elapsed_and_remaining() {
        let r = rj(1, 1, 4, 100, 500);
        assert_eq!(r.elapsed(Time(250)), 150);
        assert_eq!(r.predicted_remaining(Time(250)), 250);
        assert_eq!(r.predicted_remaining(Time(600)), -100);
    }

    #[test]
    fn system_view_user_filters() {
        let running = vec![
            rj(1, 7, 4, 0, 100),
            rj(2, 7, 2, 0, 100),
            rj(3, 9, 8, 0, 100),
        ];
        let view = SystemView {
            now: Time(50),
            machine_size: 64,
            running: &running,
        };
        assert_eq!(view.running_of_user(7).count(), 2);
        assert_eq!(view.occupied_resources(7), 6);
        assert_eq!(view.occupied_resources(9), 8);
        assert_eq!(view.occupied_resources(5), 0);
    }
}
