//! The discrete-event simulation engine.
//!
//! Drives a workload (a submit-ordered job vector) through a
//! [`Scheduler`], consulting a
//! [`RuntimePredictor`] at each
//! submission and a [`CorrectionPolicy`]
//! each time a running job outlives its prediction (§5.2 of the paper).
//!
//! ## Semantics
//!
//! * **Kill at requested time** (§2.1): a job runs for `min(p_j, p̃_j)`.
//! * **Prediction clamping**: initial predictions are clamped to
//!   `[1, p̃_j]`; corrected predictions to `(elapsed, p̃_j]` — §5.2 notes
//!   updated estimates "remain bounded by the requested running times".
//! * **On-line learning protocol**: the predictor sees each job once at
//!   submission (predict) and once at completion (observe), in event
//!   order, so no information from the future ever leaks into a
//!   prediction — the train/test discipline of §4.2.
//! * **Event batching**: all events at one instant are applied before a
//!   single scheduling pass runs, so the scheduler always sees a
//!   consistent snapshot (completions freeing processors, corrections
//!   updating estimates, then arrivals).
//!
//! ## Hot-loop discipline
//!
//! One [`Engine`] owns every per-run buffer — the indexed
//! [`SimState`], the outcome table (written by job index, so no final
//! sort), the event batch and start lists — all allocated once and
//! reused. Submit events are heapified in O(n) at startup. Event
//! handlers resolve jobs through the slot map in O(1) (no scans), and
//! the scheduling pass is *skipped* for batches that provably cannot
//! start anything: an empty queue, or zero free processors (every valid
//! job needs at least one). Schedulers must therefore decide each pass
//! from the context alone (see [`Scheduler::schedule_into`]); all
//! bundled policies do.

use crate::arena::SimArena;
use crate::cluster::ClusterSpec;
use crate::event::EventKind;
use crate::job::{Job, JobId};
use crate::observe::{NullObserver, SimEvent, SimObserver};
use crate::outcome::{JobOutcome, SimResult};
use crate::predict::{CorrectionPolicy, RuntimePredictor};
use crate::scheduler::Scheduler;
use crate::state::{RunningJob, SchedulerContext, SystemView, WaitingJob};
use crate::time::Time;

/// Configuration for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The machine: one or more processor partitions (see
    /// [`ClusterSpec`]). [`SimConfig::single`] builds the paper's
    /// single homogeneous machine, on which every simulation is
    /// byte-identical to the pre-cluster engine.
    pub cluster: ClusterSpec,
}

impl SimConfig {
    /// The legacy configuration: one homogeneous partition of
    /// `machine_size` processors at speed 1.0.
    pub fn single(machine_size: u32) -> Self {
        Self {
            cluster: ClusterSpec::single(machine_size),
        }
    }

    /// Total processors across all partitions (the legacy `m`).
    pub fn machine_size(&self) -> u32 {
        self.cluster.total_procs()
    }
}

/// Errors detected before or during simulation. These all indicate misuse
/// (malformed workload) or a policy bug, not a runtime condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The job vector is not sorted by submission time.
    UnsortedJobs {
        /// Index of the first out-of-order job.
        position: usize,
    },
    /// A job's dense id does not match its index.
    MisnumberedJob {
        /// Index of the mismatched job.
        position: usize,
    },
    /// A job fails structural validation (zero procs, …).
    InvalidJob {
        /// Human-readable description.
        message: String,
    },
    /// A job requests more processors than the machine has.
    JobTooLarge {
        /// The offending job.
        id: JobId,
        /// Its processor request.
        procs: u32,
        /// The machine size it exceeds.
        machine: u32,
    },
    /// The scheduler returned a job that is not waiting, or over-committed
    /// the machine.
    SchedulerViolation {
        /// Human-readable description.
        message: String,
    },
    /// The observer requested an abort (see
    /// [`crate::observe::SimObserver::keep_running`]). Not an error
    /// condition of the simulation itself — the control outcome of an
    /// early-abort sweep.
    Aborted {
        /// Simulation instant at which the abort took effect.
        at: Time,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnsortedJobs { position } => {
                write!(f, "jobs not sorted by submit time at position {position}")
            }
            SimError::MisnumberedJob { position } => {
                write!(f, "job at position {position} has mismatched dense id")
            }
            SimError::InvalidJob { message } => write!(f, "invalid job: {message}"),
            SimError::JobTooLarge { id, procs, machine } => {
                write!(f, "{id} requests {procs} procs on a {machine}-proc machine")
            }
            SimError::SchedulerViolation { message } => {
                write!(f, "scheduler violation: {message}")
            }
            SimError::Aborted { at } => {
                write!(f, "simulation aborted by its observer at t={}", at.0)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs one complete simulation.
///
/// `jobs` must be sorted by (submit, id) with dense ids `0..n` — exactly
/// what [`crate::job::jobs_from_swf`] on a cleaned log produces. The
/// `correction` policy is consulted on under-predictions; when `None`,
/// expired predictions fall back to the requested time (the safest
/// assumption, and the paper's *Requested Time* correction).
pub fn simulate(
    jobs: &[Job],
    config: SimConfig,
    scheduler: &mut dyn Scheduler,
    predictor: &mut dyn RuntimePredictor,
    correction: Option<&dyn CorrectionPolicy>,
) -> Result<SimResult, SimError> {
    simulate_observed(
        jobs,
        config,
        scheduler,
        predictor,
        correction,
        &mut NullObserver,
    )
}

/// Runs one complete simulation, reporting every engine state change to
/// `observer` (see [`crate::observe`]).
///
/// Identical to [`simulate`] in every other respect: the observer only
/// receives shared references, so observation cannot perturb the
/// schedule, and a run with [`NullObserver`] is bit-identical to the
/// plain entry point.
pub fn simulate_observed(
    jobs: &[Job],
    config: SimConfig,
    scheduler: &mut dyn Scheduler,
    predictor: &mut dyn RuntimePredictor,
    correction: Option<&dyn CorrectionPolicy>,
    observer: &mut dyn SimObserver,
) -> Result<SimResult, SimError> {
    simulate_in(
        &mut SimArena::new(),
        jobs,
        config,
        scheduler,
        predictor,
        correction,
        observer,
    )
}

/// Runs one complete simulation *in* `arena`, reusing its buffers
/// instead of allocating fresh ones (see [`crate::arena`]). Identical
/// in behavior to [`simulate_observed`] — the arena retains capacity
/// between runs, never state — so a warm worker simulates without
/// allocating.
pub fn simulate_in(
    arena: &mut SimArena,
    jobs: &[Job],
    config: SimConfig,
    scheduler: &mut dyn Scheduler,
    predictor: &mut dyn RuntimePredictor,
    correction: Option<&dyn CorrectionPolicy>,
    observer: &mut dyn SimObserver,
) -> Result<SimResult, SimError> {
    // Poison-cell injection point (`REPRO_FAULTS=cell.panic:...`): a
    // fire panics *before* the engine touches the arena, so the caught
    // panic leaves nothing torn and the retrying caller (the cache's
    // isolation layer) re-enters a cleanly resettable arena. With no
    // plan installed this is one relaxed atomic load.
    predictsim_faultline::maybe_panic("cell.panic");
    let capacity_before = arena.capacity_signature();
    let result = Engine::new(arena, jobs, config, predictor.wants_user_running_index())?
        .run(scheduler, predictor, correction, observer);
    arena.record_run(capacity_before);
    result
}

/// One simulation run's machinery: the workload, the machine, and the
/// [`SimArena`] holding the indexed state, the event queue, and every
/// reusable buffer of the hot loop.
///
/// [`simulate`] / [`simulate_observed`] construct one per run over a
/// fresh arena; the struct exists separately so tests can drive the
/// loop with injected event sequences (stale expiries, fabricated
/// batches).
struct Engine<'a> {
    jobs: &'a [Job],
    cluster: ClusterSpec,
    /// Total processors across the cluster (the `m` of SystemView and
    /// aggregate metrics).
    total_procs: u32,
    arena: &'a mut SimArena,
}

impl<'a> Engine<'a> {
    /// Validates the workload and heapifies its submit events in O(n),
    /// re-initializing `arena`'s buffers in place.
    fn new(
        arena: &'a mut SimArena,
        jobs: &'a [Job],
        config: SimConfig,
        user_index: bool,
    ) -> Result<Self, SimError> {
        validate_workload(jobs, config)?;
        arena.state.reset(config.cluster, jobs.len(), user_index);
        arena.events.reset_from_schedule(
            jobs.iter()
                .map(|job| (job.submit, EventKind::Submit(job.id))),
        );
        arena.initial_predictions.clear();
        arena.initial_predictions.resize(jobs.len(), 0);
        arena.outcomes.clear();
        arena.outcomes.resize(jobs.len(), None);
        arena.pending.clear();
        arena.starts.clear();
        Ok(Self {
            jobs,
            cluster: config.cluster,
            total_procs: config.cluster.total_procs(),
            arena,
        })
    }

    /// The wall-clock running time the platform grants `job` on
    /// `partition`: the partition-speed-scaled actual running time,
    /// capped at the (unscaled, wall-clock) requested time — the §2.1
    /// kill rule generalized to heterogeneous partitions. On a
    /// speed-1.0 partition this is exactly [`Job::granted_run`].
    #[inline]
    fn granted_run_on(&self, job: &Job, partition: u32) -> i64 {
        self.cluster
            .part(partition as usize)
            .scaled_run(job.run)
            .min(job.requested)
    }

    /// Whether `job` hits its requested-time bound on `partition` and is
    /// killed there. On a speed-1.0 partition this is exactly
    /// [`Job::is_killed`].
    #[inline]
    fn is_killed_on(&self, job: &Job, partition: u32) -> bool {
        self.cluster.part(partition as usize).scaled_run(job.run) > job.requested
    }

    /// Drives the event loop to completion.
    fn run(
        mut self,
        scheduler: &mut dyn Scheduler,
        predictor: &mut dyn RuntimePredictor,
        correction: Option<&dyn CorrectionPolicy>,
        observer: &mut dyn SimObserver,
    ) -> Result<SimResult, SimError> {
        while let Some(first) = self.arena.events.pop() {
            let now = first.time;
            // Apply every event at this instant, then run one scheduling
            // pass over the consistent post-batch state. Most instants
            // carry exactly one event; those skip the batch list.
            if self.arena.events.peek_time() != Some(now) {
                self.handle_event(first.kind, now, predictor, correction, observer);
            } else {
                let mut pending = std::mem::take(&mut self.arena.pending);
                pending.clear();
                pending.push(first.kind);
                while self.arena.events.peek_time() == Some(now) {
                    let event = self.arena.events.pop().expect("peeked event exists");
                    pending.push(event.kind);
                }
                for &kind in &pending {
                    self.handle_event(kind, now, predictor, correction, observer);
                }
                self.arena.pending = pending;
            }
            if !observer.keep_running() {
                return Err(SimError::Aborted { at: now });
            }

            // Skip the instant when it provably cannot start anything: no
            // candidates, or no processor anywhere for even the smallest
            // job.
            if self.arena.state.queue_is_empty() || self.arena.state.free() == 0 {
                continue;
            }
            // Routing loop: one scheduler pass per partition, first-fit
            // in partition order. Each pass sees the queue left over by
            // the previous partitions' starts (the queue is compacted
            // between passes), so earlier partitions get first pick and
            // placement is deterministic. On the legacy single-partition
            // cluster this is exactly one pass — the pre-cluster engine.
            for partition in 0..self.cluster.len() as u32 {
                if self.arena.state.queue_is_empty() {
                    break;
                }
                if self.arena.state.free_in(partition) == 0 {
                    continue;
                }
                let mut starts = std::mem::take(&mut self.arena.starts);
                starts.clear();
                scheduler.schedule_into(
                    &SchedulerContext {
                        now,
                        partition,
                        machine_size: self.cluster.part(partition as usize).size,
                        free: self.arena.state.free_in(partition),
                        queue: self.arena.state.queue(),
                        running: self.arena.state.running(),
                        releases: self.arena.state.releases_in(partition),
                        shortest_first: self.arena.state.shortest_first(),
                    },
                    &mut starts,
                );
                let applied = self.apply_starts(&starts, now, partition, observer);
                self.arena.starts = starts;
                applied?;
                self.arena.state.compact_queue();
            }
        }

        // Every running job holds a pending Finish event, so the running
        // set is necessarily empty when events drain — but a misbehaving
        // scheduler can leave jobs waiting forever. Surface that as a
        // typed error instead of a panic (or the pre-refactor engine's
        // silently partial result).
        if !self.arena.state.queue_is_empty() {
            return Err(SimError::SchedulerViolation {
                message: format!(
                    "simulation ended with {} jobs never started",
                    self.arena.state.queue_len()
                ),
            });
        }
        debug_assert!(
            self.arena.state.running().is_empty(),
            "simulation ended with running jobs"
        );
        let outcomes: Vec<JobOutcome> = self
            .arena
            .outcomes
            .drain(..)
            .map(|o| o.expect("every job not left waiting has finished"))
            .collect();

        let result = SimResult {
            machine_size: self.total_procs,
            outcomes,
            scheduler: scheduler.name(),
            predictor: predictor.name(),
            correction: correction.map(|c| c.name()),
        };
        observer.on_event(&SimEvent::Completed { result: &result });
        Ok(result)
    }

    /// Applies one event of the current batch.
    fn handle_event(
        &mut self,
        kind: EventKind,
        now: Time,
        predictor: &mut dyn RuntimePredictor,
        correction: Option<&dyn CorrectionPolicy>,
        observer: &mut dyn SimObserver,
    ) {
        match kind {
            EventKind::Finish(id) => {
                let job = &self.jobs[id.index()];
                let Some(r) = self.arena.state.finish(id) else {
                    unreachable!("finish event for job that is not running");
                };
                let granted = self.granted_run_on(job, r.partition);
                let killed = self.is_killed_on(job, r.partition);
                let slot = &mut self.arena.outcomes[id.index()];
                debug_assert!(slot.is_none(), "{id} finished twice");
                let outcome = slot.insert(JobOutcome {
                    id,
                    swf_id: job.swf_id,
                    user: job.user,
                    procs: job.procs,
                    submit: job.submit,
                    start: r.start,
                    end: now,
                    run: granted,
                    requested: job.requested,
                    initial_prediction: self.arena.initial_predictions[id.index()],
                    corrections: r.corrections,
                    killed,
                    partition: r.partition,
                });
                observer.on_event(&SimEvent::Finished { outcome });
                let view = SystemView {
                    now,
                    machine_size: self.total_procs,
                    running: self.arena.state.running(),
                    user_running: self.arena.state.user_running(),
                };
                predictor.observe(job, granted, &view);
            }
            EventKind::PredictionExpiry(id, generation) => {
                let Some(index) = self.arena.state.running_index(id) else {
                    return; // stale: the job already finished
                };
                let r = self.arena.state.running()[index];
                if r.corrections != generation {
                    return; // stale: superseded by a newer correction
                }
                let job = &self.jobs[id.index()];
                let elapsed = now.since(r.start);
                let expired = r.predicted_end.since(r.start);
                let raw = match correction {
                    Some(policy) => policy.correct(job, elapsed, expired, r.corrections),
                    None => job.requested as f64,
                };
                let new_pred = clamp_correction(raw, elapsed, job.requested);
                let new_end = r.start.plus(new_pred);
                let generation = self.arena.state.apply_correction(index, new_end);
                let finish_at = r.start.plus(self.granted_run_on(job, r.partition));
                if new_end < finish_at {
                    self.arena
                        .events
                        .push(new_end, EventKind::PredictionExpiry(id, generation));
                }
                observer.on_event(&SimEvent::Corrected {
                    job,
                    now,
                    expired_prediction: expired,
                    new_prediction: new_pred,
                    corrections: generation,
                });
            }
            EventKind::Submit(id) => {
                let job = &self.jobs[id.index()];
                let view = SystemView {
                    now,
                    machine_size: self.total_procs,
                    running: self.arena.state.running(),
                    user_running: self.arena.state.user_running(),
                };
                let raw = predictor.predict(job, &view);
                let prediction = clamp_prediction(raw, job.requested);
                self.arena.initial_predictions[id.index()] = prediction;
                observer.on_event(&SimEvent::Submitted {
                    job,
                    prediction,
                    now,
                });
                self.arena.state.enqueue(WaitingJob {
                    id,
                    procs: job.procs,
                    predicted: prediction,
                    requested: job.requested,
                    submit: job.submit,
                    user: job.user_ix,
                });
            }
        }
    }

    /// Validates and applies one pass's start decisions, placing every
    /// started job on `partition`.
    fn apply_starts(
        &mut self,
        starts: &[JobId],
        now: Time,
        partition: u32,
        observer: &mut dyn SimObserver,
    ) -> Result<(), SimError> {
        for &id in starts {
            let Some(index) = self.arena.state.waiting_index(id) else {
                return Err(SimError::SchedulerViolation {
                    message: format!("{id} started but is not waiting"),
                });
            };
            let w = *self.arena.state.waiting_at(index);
            if w.procs > self.arena.state.free_in(partition) {
                return Err(SimError::SchedulerViolation {
                    message: format!(
                        "{id} needs {} procs but only {} are free in partition {partition}",
                        w.procs,
                        self.arena.state.free_in(partition)
                    ),
                });
            }
            let job = &self.jobs[id.index()];
            let predicted_end = now.plus(w.predicted);
            let finish_at = now.plus(self.granted_run_on(job, partition));
            self.arena.state.start(
                index,
                RunningJob {
                    id,
                    procs: w.procs,
                    start: now,
                    predicted_end,
                    deadline: now.plus(job.requested),
                    user: w.user,
                    corrections: 0,
                    partition,
                },
            );
            self.arena.events.push(finish_at, EventKind::Finish(id));
            if predicted_end < finish_at {
                self.arena
                    .events
                    .push(predicted_end, EventKind::PredictionExpiry(id, 0));
            }
            observer.on_event(&SimEvent::Started {
                job,
                now,
                predicted_end,
            });
        }
        Ok(())
    }
}

fn validate_workload(jobs: &[Job], config: SimConfig) -> Result<(), SimError> {
    for (i, job) in jobs.iter().enumerate() {
        if job.id.index() != i {
            return Err(SimError::MisnumberedJob { position: i });
        }
        if let Err(message) = job.validate() {
            return Err(SimError::InvalidJob { message });
        }
        if job.procs > config.cluster.max_partition_size() {
            return Err(SimError::JobTooLarge {
                id: job.id,
                procs: job.procs,
                machine: config.cluster.max_partition_size(),
            });
        }
        if i > 0 && jobs[i - 1].submit > job.submit {
            return Err(SimError::UnsortedJobs { position: i });
        }
    }
    Ok(())
}

/// Clamps an initial prediction into `[1, requested]` (§5.2).
fn clamp_prediction(raw: f64, requested: i64) -> i64 {
    if !raw.is_finite() {
        return requested;
    }
    (raw.round() as i64).clamp(1, requested)
}

/// Clamps a corrected prediction into `(elapsed, requested]`: it must
/// strictly exceed the time already spent running and never pass the
/// requested bound.
fn clamp_correction(raw: f64, elapsed: i64, requested: i64) -> i64 {
    if !raw.is_finite() {
        return requested;
    }
    (raw.round() as i64).clamp(elapsed + 1, requested.max(elapsed + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{ClairvoyantPredictor, RequestedTimeCorrection, RequestedTimePredictor};
    use crate::scheduler::{EasyScheduler, FcfsScheduler};

    fn job(id: u32, submit: i64, run: i64, requested: i64, procs: u32, user: u32) -> Job {
        Job {
            id: JobId(id),
            submit: Time(submit),
            run,
            requested,
            procs,
            user,
            user_ix: user,
            swf_id: id as u64 + 1,
        }
    }

    fn config(m: u32) -> SimConfig {
        SimConfig::single(m)
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = [job(0, 5, 100, 200, 4, 1)];
        let mut sched = FcfsScheduler;
        let mut pred = RequestedTimePredictor;
        let res = simulate(&jobs, config(8), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes.len(), 1);
        let o = &res.outcomes[0];
        assert_eq!(o.start, Time(5));
        assert_eq!(o.end, Time(105));
        assert_eq!(o.wait(), 0);
        assert_eq!(o.initial_prediction, 200);
        assert!(!o.killed);
    }

    #[test]
    fn fcfs_serializes_conflicting_jobs() {
        let jobs = [job(0, 0, 100, 100, 8, 1), job(1, 0, 50, 50, 8, 2)];
        let mut sched = FcfsScheduler;
        let mut pred = ClairvoyantPredictor;
        let res = simulate(&jobs, config(8), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes[0].start, Time(0));
        assert_eq!(res.outcomes[1].start, Time(100));
        assert_eq!(res.outcomes[1].wait(), 100);
    }

    #[test]
    fn easy_backfills_short_job() {
        // Machine 10. j0 takes 6 procs for 100s. j1 (8 procs) blocked until
        // j0 ends. j2 (4 procs, 90s) backfills at t=0 under clairvoyance.
        let jobs = [
            job(0, 0, 100, 100, 6, 1),
            job(1, 1, 50, 50, 8, 2),
            job(2, 2, 90, 90, 4, 3),
        ];
        let mut sched = EasyScheduler::new();
        let mut pred = ClairvoyantPredictor;
        let res = simulate(&jobs, config(10), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes[0].start, Time(0));
        assert_eq!(res.outcomes[2].start, Time(2)); // backfilled on arrival
        assert_eq!(res.outcomes[1].start, Time(100)); // head waits for j0
    }

    #[test]
    fn requested_time_prevents_backfill_that_clairvoyance_allows() {
        // Same scenario, but predictions are the requested times and j2
        // requested 200s: 2+200 > 100 (shadow), extra = 10-8 = 2 < 4, so
        // no backfill. Demonstrates Table 1's mechanism.
        let jobs = [
            job(0, 0, 100, 100, 6, 1),
            job(1, 1, 50, 50, 8, 2),
            job(2, 2, 90, 200, 4, 3),
        ];
        let mut sched = EasyScheduler::new();
        let mut pred = RequestedTimePredictor;
        let res = simulate(&jobs, config(10), &mut sched, &mut pred, None).unwrap();
        // j2 cannot backfill at t=2 (its requested 200s overshoots the
        // shadow and the 2 extra procs are too few); at t=100 the head j1
        // takes 8 procs, so j2 finally starts when j1 ends.
        assert_eq!(res.outcomes[2].start, Time(150));
    }

    #[test]
    fn job_killed_at_requested_time() {
        let jobs = [job(0, 0, 500, 200, 1, 1)];
        let mut sched = FcfsScheduler;
        let mut pred = RequestedTimePredictor;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, None).unwrap();
        let o = &res.outcomes[0];
        assert_eq!(o.end, Time(200));
        assert_eq!(o.run, 200);
        assert!(o.killed);
    }

    #[test]
    fn underprediction_triggers_correction() {
        // Predictor that always says "10 seconds".
        struct Ten;
        impl RuntimePredictor for Ten {
            fn predict(&mut self, _job: &Job, _s: &SystemView<'_>) -> f64 {
                10.0
            }
            fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
            fn name(&self) -> String {
                "ten".into()
            }
        }
        let jobs = [job(0, 0, 100, 1000, 1, 1)];
        let mut sched = EasyScheduler::new();
        let mut pred = Ten;
        let corr = RequestedTimeCorrection;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, Some(&corr)).unwrap();
        let o = &res.outcomes[0];
        assert_eq!(o.initial_prediction, 10);
        // One expiry at t=10 -> corrected to requested (1000) -> no more.
        assert_eq!(o.corrections, 1);
        assert_eq!(o.end, Time(100));
    }

    #[test]
    fn correction_fallback_without_policy() {
        struct Ten;
        impl RuntimePredictor for Ten {
            fn predict(&mut self, _job: &Job, _s: &SystemView<'_>) -> f64 {
                10.0
            }
            fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
            fn name(&self) -> String {
                "ten".into()
            }
        }
        let jobs = [job(0, 0, 100, 1000, 1, 1)];
        let mut sched = EasyScheduler::new();
        let mut pred = Ten;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes[0].corrections, 1);
    }

    #[test]
    fn clairvoyant_never_corrects() {
        let jobs = [
            job(0, 0, 100, 1000, 2, 1),
            job(1, 10, 30, 800, 2, 2),
            job(2, 20, 60, 600, 2, 1),
        ];
        let mut sched = EasyScheduler::sjbf();
        let mut pred = ClairvoyantPredictor;
        let corr = RequestedTimeCorrection;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, Some(&corr)).unwrap();
        assert_eq!(res.total_corrections(), 0);
    }

    #[test]
    fn prediction_clamped_to_requested() {
        struct Huge;
        impl RuntimePredictor for Huge {
            fn predict(&mut self, _job: &Job, _s: &SystemView<'_>) -> f64 {
                1e15
            }
            fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
            fn name(&self) -> String {
                "huge".into()
            }
        }
        let jobs = [job(0, 0, 50, 300, 1, 1)];
        let mut sched = FcfsScheduler;
        let mut pred = Huge;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes[0].initial_prediction, 300);
    }

    #[test]
    fn non_finite_prediction_falls_back_to_requested() {
        struct Nan;
        impl RuntimePredictor for Nan {
            fn predict(&mut self, _job: &Job, _s: &SystemView<'_>) -> f64 {
                f64::NAN
            }
            fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
            fn name(&self) -> String {
                "nan".into()
            }
        }
        let jobs = [job(0, 0, 50, 300, 1, 1)];
        let mut sched = FcfsScheduler;
        let mut pred = Nan;
        let res = simulate(&jobs, config(4), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes[0].initial_prediction, 300);
    }

    #[test]
    fn rejects_unsorted_jobs() {
        let jobs = [job(0, 100, 10, 10, 1, 1), job(1, 50, 10, 10, 1, 1)];
        let err = simulate(
            &jobs,
            config(4),
            &mut FcfsScheduler,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnsortedJobs { position: 1 }));
    }

    #[test]
    fn rejects_oversized_job() {
        let jobs = [job(0, 0, 10, 10, 64, 1)];
        let err = simulate(
            &jobs,
            config(4),
            &mut FcfsScheduler,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::JobTooLarge { .. }));
    }

    #[test]
    fn rejects_misnumbered_jobs() {
        let jobs = [job(7, 0, 10, 10, 1, 1)];
        let err = simulate(
            &jobs,
            config(4),
            &mut FcfsScheduler,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::MisnumberedJob { position: 0 }));
    }

    #[test]
    fn detects_scheduler_overcommit() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
                starts.extend(ctx.queue.iter().map(|w| w.id)); // ignores capacity
            }
            fn name(&self) -> String {
                "greedy".into()
            }
        }
        let jobs = [job(0, 0, 10, 10, 3, 1), job(1, 0, 10, 10, 3, 1)];
        let err = simulate(
            &jobs,
            config(4),
            &mut Greedy,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SchedulerViolation { .. }));
    }

    /// A stale `PredictionExpiry` that lands in the *same batch* as the
    /// job's `Finish` (possible only via the injection seam — the event
    /// ordering `Finish ≺ Expiry` plus the `predicted_end < finish`
    /// scheduling rule keeps naturally produced expiries strictly
    /// earlier) must hit the slot map's `Finished` state and be skipped
    /// without disturbing the outcome.
    #[test]
    fn stale_expiry_in_same_batch_as_finish_is_skipped() {
        let jobs = [job(0, 0, 100, 200, 2, 1)];
        let cfg = config(4);
        let mut arena = SimArena::new();
        let engine = Engine::new(&mut arena, &jobs, cfg, false).unwrap();
        // The job will start at t=0 and finish at t=100; inject an expiry
        // for it at exactly t=100. Rank order puts Finish first, so the
        // expiry sees Slot::Finished.
        engine
            .arena
            .events
            .push(Time(100), EventKind::PredictionExpiry(JobId(0), 0));
        let corr = RequestedTimeCorrection;
        let res = engine
            .run(
                &mut FcfsScheduler,
                &mut RequestedTimePredictor,
                Some(&corr),
                &mut crate::observe::NullObserver,
            )
            .unwrap();
        let o = &res.outcomes[0];
        assert_eq!(o.end, Time(100));
        assert_eq!(o.corrections, 0, "stale expiry must not correct");
    }

    /// A stale expiry from a superseded generation (job still running)
    /// is skipped by the generation check, in O(1) via the slot map.
    #[test]
    fn stale_generation_expiry_is_skipped() {
        let jobs = [job(0, 0, 100, 200, 2, 1)];
        let cfg = config(4);
        let mut arena = SimArena::new();
        let engine = Engine::new(&mut arena, &jobs, cfg, false).unwrap();
        engine
            .arena
            .events
            .push(Time(50), EventKind::PredictionExpiry(JobId(0), 7));
        let corr = RequestedTimeCorrection;
        let res = engine
            .run(
                &mut FcfsScheduler,
                &mut RequestedTimePredictor,
                Some(&corr),
                &mut crate::observe::NullObserver,
            )
            .unwrap();
        assert_eq!(res.outcomes[0].corrections, 0);
        assert_eq!(res.outcomes[0].end, Time(100));
    }

    /// The engine skips scheduling passes that provably cannot start
    /// anything; a pass-counting scheduler pins the contract (and that
    /// skipping loses no starts: the outcome matches the FCFS baseline).
    #[test]
    fn provably_idle_passes_are_skipped() {
        struct CountingFcfs {
            passes: usize,
        }
        impl Scheduler for CountingFcfs {
            fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
                self.passes += 1;
                assert!(
                    !ctx.queue.is_empty() && ctx.free > 0,
                    "engine ran a provably idle pass"
                );
                FcfsScheduler.schedule_into(ctx, starts);
            }
            fn name(&self) -> String {
                "counting-fcfs".into()
            }
        }
        // j1 saturates the machine for 100s; j2 arrives at t=10 (free=0:
        // its batch needs no pass) and a correction-free finish at t=100
        // reopens the machine.
        let jobs = [job(0, 0, 100, 100, 4, 1), job(1, 10, 50, 50, 4, 2)];
        let mut sched = CountingFcfs { passes: 0 };
        let res = simulate(
            &jobs,
            config(4),
            &mut sched,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap();
        assert_eq!(res.outcomes[1].start, Time(100));
        // Passes: t=0 submit (starts j0). t=10 submit skipped (free=0).
        // t=100 finish+queued j1 -> one pass. t=150 finish, queue empty:
        // skipped.
        assert_eq!(sched.passes, 2, "idle passes must be skipped");
    }

    /// A scheduler that strands jobs in the queue yields a typed error,
    /// not a panic or a silently partial result.
    #[test]
    fn stranded_jobs_are_a_scheduler_violation() {
        struct Never;
        impl Scheduler for Never {
            fn schedule_into(&mut self, _ctx: &SchedulerContext<'_>, _starts: &mut Vec<JobId>) {}
            fn name(&self) -> String {
                "never".into()
            }
        }
        let jobs = [job(0, 0, 10, 10, 1, 1)];
        let err = simulate(
            &jobs,
            config(4),
            &mut Never,
            &mut ClairvoyantPredictor,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SchedulerViolation { .. }));
    }

    #[test]
    fn all_jobs_complete_and_outcomes_are_ordered() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| {
                job(
                    i,
                    (i as i64) * 7 % 40,
                    20 + (i as i64 * 13) % 100,
                    200,
                    1 + (i % 3),
                    i % 5,
                )
            })
            .collect();
        // jobs must be sorted by submit; sort and renumber.
        let mut sorted = jobs;
        sorted.sort_by_key(|j| (j.submit, j.id));
        for (i, j) in sorted.iter_mut().enumerate() {
            j.id = JobId(i as u32);
        }
        let mut sched = EasyScheduler::sjbf();
        let mut pred = ClairvoyantPredictor;
        let res = simulate(&sorted, config(4), &mut sched, &mut pred, None).unwrap();
        assert_eq!(res.outcomes.len(), 50);
        for (i, o) in res.outcomes.iter().enumerate() {
            assert_eq!(o.id, JobId(i as u32));
            assert!(o.start >= o.submit, "job started before submit");
        }
    }
}
