//! A deterministic, allocation-free hasher for the hot-path maps.
//!
//! The per-user history maps ([`crate::features::FeatureExtractor`]) are
//! hit several times per simulated job; `std`'s default SipHash is
//! needlessly expensive for 4-byte integer keys there. [`FxHasher`] is
//! the classic Firefox/rustc multiply-xor hash: not DoS-resistant (keys
//! here are small trusted integers), but fast, stable across runs and
//! platforms, and — unlike `RandomState` — fully deterministic, which
//! keeps every simulation reproducible by construction even if map
//! iteration order ever leaked into results (it does not: these maps
//! are only ever probed by key).

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `std` collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// FNV-1a over a byte slice — the stable content-fingerprint hash used
/// for identities that must survive process boundaries (e.g.
/// [`crate::cluster::ClusterSpec::fingerprint`], and the experiment
/// layer's workload fingerprints). Unlike [`FxHasher`] it has a
/// published fixed definition, so fingerprints are comparable across
/// builds.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(0xdead_beef);
        b.write_u32(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |n: u32| {
            let mut h = FxHasher::default();
            h.write_u32(n);
            h.finish()
        };
        let hashes: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(hashes.len(), 10_000, "small keys must not collide");
    }

    #[test]
    fn byte_stream_equivalence_is_chunked() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write(&[9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_probe_round_trip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(1_000_003, "big");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.get(&1_000_003), Some(&"big"));
        assert_eq!(map.get(&8), None);
    }
}
