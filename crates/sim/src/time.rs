//! Simulation time.
//!
//! The simulator uses integer seconds, matching the SWF format's
//! resolution. [`Time`] is an absolute instant (seconds since the log
//! origin); durations are plain `i64` seconds, which keeps arithmetic with
//! SWF fields friction-free.

/// An absolute simulation instant, in seconds since the log origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

/// Seconds in one minute.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 3600;
/// Seconds in one day (the paper's `t_day` periodic-feature period).
pub const DAY: i64 = 86_400;
/// Seconds in one week (the paper's `t_week` periodic-feature period).
pub const WEEK: i64 = 7 * DAY;

impl Time {
    /// The log origin.
    pub const ZERO: Time = Time(0);

    /// Seconds since the origin.
    #[inline]
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// This instant shifted forward by `secs` seconds (may be negative).
    #[inline]
    pub fn plus(self, secs: i64) -> Time {
        Time(self.0 + secs)
    }

    /// Signed duration `self - earlier`, in seconds.
    #[inline]
    pub fn since(self, earlier: Time) -> i64 {
        self.0 - earlier.0
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0;
        let (d, rem) = (s.div_euclid(DAY), s.rem_euclid(DAY));
        let (h, rem) = (rem / HOUR, rem % HOUR);
        let (m, sec) = (rem / MINUTE, rem % MINUTE);
        write!(f, "{d}d{h:02}:{m:02}:{sec:02}")
    }
}

impl From<i64> for Time {
    fn from(v: i64) -> Self {
        Time(v)
    }
}

/// Formats a duration in seconds as a compact human-readable string,
/// used by reports ("2h05", "3d12h", "45s").
pub fn format_duration(secs: i64) -> String {
    let neg = secs < 0;
    let s = secs.abs();
    let body = if s >= DAY {
        format!("{}d{:02}h", s / DAY, (s % DAY) / HOUR)
    } else if s >= HOUR {
        format!("{}h{:02}", s / HOUR, (s % HOUR) / MINUTE)
    } else if s >= MINUTE {
        format!("{}m{:02}", s / MINUTE, s % MINUTE)
    } else {
        format!("{s}s")
    };
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time(100);
        assert_eq!(t.plus(50), Time(150));
        assert_eq!(t.plus(-200), Time(-100));
        assert_eq!(Time(500).since(Time(100)), 400);
        assert_eq!(Time(100).since(Time(500)), -400);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time(1) < Time(2));
        assert!(Time(-5) < Time::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Time(0)), "0d00:00:00");
        assert_eq!(format!("{}", Time(DAY + HOUR + MINUTE + 1)), "1d01:01:01");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(30), "30s");
        assert_eq!(format_duration(90), "1m30");
        assert_eq!(format_duration(2 * HOUR + 5 * MINUTE), "2h05");
        assert_eq!(format_duration(3 * DAY + 12 * HOUR), "3d12h");
        assert_eq!(format_duration(-90), "-1m30");
    }

    #[test]
    fn constants() {
        assert_eq!(MINUTE * 60, HOUR);
        assert_eq!(HOUR * 24, DAY);
        assert_eq!(DAY * 7, WEEK);
    }
}
