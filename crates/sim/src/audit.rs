//! Post-hoc schedule auditing.
//!
//! The simulator's correctness claims (never exceed the machine, never
//! start before release, grant exactly `min(p, p̃)` seconds) are re-checked
//! here from the outcome records alone, independently of the engine's
//! internal book-keeping. The property tests fuzz workloads through every
//! scheduler and assert a clean audit.

use crate::outcome::{JobOutcome, SimResult};

/// A violated invariant found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// A job started before its submission.
    StartBeforeSubmit {
        /// SWF job number of the offending job.
        swf_id: u64,
    },
    /// A job's recorded span does not equal its granted run time.
    WrongDuration {
        /// SWF job number of the offending job.
        swf_id: u64,
        /// The granted run time the span should equal.
        expected: i64,
        /// The span actually recorded.
        got: i64,
    },
    /// Instantaneous processor usage exceeded the machine size.
    CapacityExceeded {
        /// Instant of the overflow.
        at: i64,
        /// Processors in use at that instant.
        used: u64,
        /// Machine size.
        machine: u32,
    },
    /// A job was granted more than its requested time.
    OverranRequest {
        /// SWF job number of the offending job.
        swf_id: u64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::StartBeforeSubmit { swf_id } => {
                write!(f, "job {swf_id} started before submission")
            }
            AuditViolation::WrongDuration {
                swf_id,
                expected,
                got,
            } => {
                write!(f, "job {swf_id} ran {got}s, expected {expected}s")
            }
            AuditViolation::CapacityExceeded { at, used, machine } => {
                write!(f, "capacity exceeded at t={at}: {used} > {machine}")
            }
            AuditViolation::OverranRequest { swf_id } => {
                write!(f, "job {swf_id} overran its requested time")
            }
        }
    }
}

/// Summary of a clean audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditReport {
    /// Number of jobs checked.
    pub jobs: usize,
    /// Peak simultaneous processor usage observed.
    pub peak_usage: u64,
    /// Peak number of simultaneously running jobs.
    pub peak_running: usize,
}

/// Verifies all schedule invariants of `result`. Returns the first
/// violation found, or a report on success.
pub fn audit(result: &SimResult) -> Result<AuditReport, AuditViolation> {
    audit_outcomes(&result.outcomes, result.machine_size)
}

/// [`audit`] on a raw outcome slice.
pub fn audit_outcomes(
    outcomes: &[JobOutcome],
    machine_size: u32,
) -> Result<AuditReport, AuditViolation> {
    // Per-job checks.
    for o in outcomes {
        if o.start < o.submit {
            return Err(AuditViolation::StartBeforeSubmit { swf_id: o.swf_id });
        }
        let span = o.end.since(o.start);
        if span != o.run {
            return Err(AuditViolation::WrongDuration {
                swf_id: o.swf_id,
                expected: o.run,
                got: span,
            });
        }
        if o.run > o.requested {
            return Err(AuditViolation::OverranRequest { swf_id: o.swf_id });
        }
    }

    // Capacity sweep: +procs at start, -procs at end; ends processed
    // before starts at equal instants (a freed processor is reusable in
    // the same second, matching the engine's event ordering).
    let mut deltas: Vec<(i64, i8, u32)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        deltas.push((o.start.0, 1, o.procs));
        deltas.push((o.end.0, 0, o.procs));
    }
    deltas.sort_unstable_by_key(|&(t, kind, _)| (t, kind));
    let mut used: u64 = 0;
    let mut running: isize = 0;
    let mut peak_usage: u64 = 0;
    let mut peak_running: usize = 0;
    for (t, kind, procs) in deltas {
        if kind == 0 {
            used -= procs as u64;
            running -= 1;
        } else {
            used += procs as u64;
            running += 1;
            if used > machine_size as u64 {
                return Err(AuditViolation::CapacityExceeded {
                    at: t,
                    used,
                    machine: machine_size,
                });
            }
            peak_usage = peak_usage.max(used);
            peak_running = peak_running.max(running.max(0) as usize);
        }
    }

    Ok(AuditReport {
        jobs: outcomes.len(),
        peak_usage,
        peak_running,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::time::Time;

    fn outcome(id: u32, submit: i64, start: i64, run: i64, procs: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            swf_id: id as u64,
            user: 0,
            procs,
            submit: Time(submit),
            start: Time(start),
            end: Time(start + run),
            run,
            requested: run,
            initial_prediction: run,
            corrections: 0,
            killed: false,
            partition: 0,
        }
    }

    #[test]
    fn clean_schedule_passes() {
        let outcomes = vec![outcome(0, 0, 0, 100, 4), outcome(1, 0, 100, 50, 8)];
        let report = audit_outcomes(&outcomes, 8).unwrap();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.peak_usage, 8);
        assert_eq!(report.peak_running, 1);
    }

    #[test]
    fn detects_start_before_submit() {
        let outcomes = vec![outcome(0, 50, 10, 100, 1)];
        assert!(matches!(
            audit_outcomes(&outcomes, 8),
            Err(AuditViolation::StartBeforeSubmit { swf_id: 0 })
        ));
    }

    #[test]
    fn detects_capacity_overflow() {
        let outcomes = vec![outcome(0, 0, 0, 100, 5), outcome(1, 0, 50, 100, 5)];
        assert!(matches!(
            audit_outcomes(&outcomes, 8),
            Err(AuditViolation::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn back_to_back_jobs_reuse_processors() {
        // Second job starts exactly when the first ends: fine.
        let outcomes = vec![outcome(0, 0, 0, 100, 8), outcome(1, 0, 100, 100, 8)];
        assert!(audit_outcomes(&outcomes, 8).is_ok());
    }

    #[test]
    fn detects_wrong_duration() {
        let mut o = outcome(0, 0, 0, 100, 1);
        o.end = Time(250);
        assert!(matches!(
            audit_outcomes(&[o], 8),
            Err(AuditViolation::WrongDuration { .. })
        ));
    }

    #[test]
    fn detects_overrun_request() {
        let mut o = outcome(0, 0, 0, 100, 1);
        o.requested = 50;
        assert!(matches!(
            audit_outcomes(&[o], 8),
            Err(AuditViolation::OverranRequest { swf_id: 0 })
        ));
    }

    #[test]
    fn empty_schedule_is_clean() {
        let report = audit_outcomes(&[], 8).unwrap();
        assert_eq!(report.jobs, 0);
        assert_eq!(report.peak_usage, 0);
    }
}
