//! Per-job outcomes and whole-simulation results.

use predictsim_metrics::{ave_bsld, BsldRecord, DEFAULT_TAU};

use crate::job::JobId;
use crate::time::Time;

/// Everything recorded about one completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Dense simulation id.
    pub id: JobId,
    /// Original SWF job number.
    pub swf_id: u64,
    /// Submitting user.
    pub user: u32,
    /// Processors used.
    pub procs: u32,
    /// Submission date.
    pub submit: Time,
    /// Execution start.
    pub start: Time,
    /// Execution end (completion or kill).
    pub end: Time,
    /// Actual running time granted (`min(p, p̃)`).
    pub run: i64,
    /// Requested running time `p̃`.
    pub requested: i64,
    /// The prediction made at submission time (after clamping).
    pub initial_prediction: i64,
    /// Number of §5.2 corrections applied while the job ran.
    pub corrections: u32,
    /// Whether the job hit its requested-time bound and was killed.
    pub killed: bool,
    /// The cluster partition the job ran on (0 on a single-partition
    /// machine) — see [`crate::cluster::ClusterSpec`].
    pub partition: u32,
}

impl JobOutcome {
    /// Waiting time (start − submit), seconds.
    #[inline]
    pub fn wait(&self) -> i64 {
        self.start.since(self.submit)
    }

    /// Bounded-slowdown record for this job.
    #[inline]
    pub fn bsld_record(&self) -> BsldRecord {
        BsldRecord::new(self.wait() as f64, self.run as f64)
    }

    /// Signed error of the *initial* prediction (prediction − actual).
    #[inline]
    pub fn initial_prediction_error(&self) -> i64 {
        self.initial_prediction - self.run
    }
}

/// The result of simulating a workload under one heuristic triple.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Machine size `m` simulated.
    pub machine_size: u32,
    /// Outcomes ordered by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Scheduler name (e.g. `"easy-sjbf"`).
    pub scheduler: String,
    /// Predictor name (e.g. `"clairvoyant"`).
    pub predictor: String,
    /// Correction policy name, if one was installed.
    pub correction: Option<String>,
}

impl SimResult {
    /// `AVEbsld` with the paper's τ = 10 s — the objective of every table.
    pub fn ave_bsld(&self) -> f64 {
        self.ave_bsld_tau(DEFAULT_TAU)
    }

    /// `AVEbsld` with an explicit τ.
    pub fn ave_bsld_tau(&self, tau: f64) -> f64 {
        let records: Vec<BsldRecord> = self.outcomes.iter().map(|o| o.bsld_record()).collect();
        ave_bsld(&records, tau)
    }

    /// Mean waiting time, seconds.
    pub fn mean_wait(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.wait() as f64).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Machine utilization: busy processor-seconds over the span between
    /// the first submission and the last completion.
    pub fn utilization(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let first_submit = self
            .outcomes
            .iter()
            .map(|o| o.submit.0)
            .min()
            .expect("non-empty");
        let last_end = self
            .outcomes
            .iter()
            .map(|o| o.end.0)
            .max()
            .expect("non-empty");
        let span = (last_end - first_submit).max(1) as f64;
        let busy: f64 = self
            .outcomes
            .iter()
            .map(|o| o.run as f64 * o.procs as f64)
            .sum();
        busy / (span * self.machine_size as f64)
    }

    /// Makespan: last completion minus first submission, seconds.
    pub fn makespan(&self) -> i64 {
        if self.outcomes.is_empty() {
            return 0;
        }
        let first = self
            .outcomes
            .iter()
            .map(|o| o.submit.0)
            .min()
            .expect("non-empty");
        let last = self
            .outcomes
            .iter()
            .map(|o| o.end.0)
            .max()
            .expect("non-empty");
        last - first
    }

    /// Total number of corrections applied across all jobs.
    pub fn total_corrections(&self) -> u64 {
        self.outcomes.iter().map(|o| o.corrections as u64).sum()
    }

    /// Per-job bounded slowdowns (τ = 10 s), ordered by job id.
    pub fn bslds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.bsld_record().bsld(DEFAULT_TAU))
            .collect()
    }

    /// Initial-prediction signed errors (prediction − actual), by job id.
    pub fn prediction_errors(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.initial_prediction_error() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, submit: i64, start: i64, run: i64, procs: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            swf_id: id as u64,
            user: 1,
            procs,
            submit: Time(submit),
            start: Time(start),
            end: Time(start + run),
            run,
            requested: run * 2,
            initial_prediction: run,
            corrections: 0,
            killed: false,
            partition: 0,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimResult {
        SimResult {
            machine_size: 10,
            outcomes,
            scheduler: "easy".into(),
            predictor: "clairvoyant".into(),
            correction: None,
        }
    }

    #[test]
    fn wait_and_bsld() {
        let o = outcome(0, 100, 300, 100, 1);
        assert_eq!(o.wait(), 200);
        assert_eq!(o.bsld_record().bsld(10.0), 3.0);
    }

    #[test]
    fn ave_bsld_over_jobs() {
        let r = result(vec![outcome(0, 0, 0, 100, 1), outcome(1, 0, 100, 100, 1)]);
        // bslds: 1.0 and 2.0.
        assert_eq!(r.ave_bsld(), 1.5);
        assert_eq!(r.bslds(), vec![1.0, 2.0]);
    }

    #[test]
    fn utilization_full_machine() {
        // One job occupying the full machine for the whole span.
        let o = JobOutcome {
            procs: 10,
            ..outcome(0, 0, 0, 100, 10)
        };
        let r = result(vec![o]);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half_machine() {
        let o = outcome(0, 0, 0, 100, 5);
        let r = result(vec![o]);
        assert!((r.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn makespan_and_corrections() {
        let mut o2 = outcome(1, 50, 100, 200, 1);
        o2.corrections = 3;
        let r = result(vec![outcome(0, 0, 0, 100, 1), o2]);
        assert_eq!(r.makespan(), 300);
        assert_eq!(r.total_corrections(), 3);
    }

    #[test]
    fn empty_result() {
        let r = result(vec![]);
        assert_eq!(r.ave_bsld(), 0.0);
        assert_eq!(r.mean_wait(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.makespan(), 0);
    }

    #[test]
    fn prediction_error_sign() {
        let mut o = outcome(0, 0, 0, 100, 1);
        o.initial_prediction = 150;
        assert_eq!(o.initial_prediction_error(), 50);
        o.initial_prediction = 60;
        assert_eq!(o.initial_prediction_error(), -40);
    }
}
