//! The cluster model: an ordered set of processor partitions.
//!
//! The paper's platform (§2.3) is one homogeneous pool of `m`
//! processors. A [`ClusterSpec`] generalizes that to an *ordered* list
//! of partitions, each with its own processor count and a relative
//! speed factor; the 1-partition / speed-1.0 case is the exact legacy
//! machine, and every simulation on such a spec is byte-identical to
//! the pre-cluster engine (the golden-trace tests pin this).
//!
//! ## Semantics
//!
//! * **Placement** — the engine routes jobs *first-fit by partition
//!   order*: each scheduling instant runs one scheduler pass per
//!   partition, in declaration order, over the shared FCFS queue.
//!   Earlier partitions therefore get first pick; ties are resolved by
//!   that fixed order, never by iteration order of a map or by thread
//!   timing, so heterogeneous runs are as deterministic as homogeneous
//!   ones.
//! * **Speed scaling** — a job with actual running time `p` placed on a
//!   partition of speed `s` runs for `ceil(p / s)` seconds (at least 1);
//!   see [`Partition::scaled_run`]. The requested time `p̃` is a
//!   wall-clock contract with the user and is *not* scaled: a slow
//!   partition can push a job past its request, in which case it is
//!   killed at `p̃` exactly as on the legacy machine. Speed 1.0 uses the
//!   untouched integer value, so homogeneous arithmetic is preserved
//!   bit-for-bit.
//! * **Identity** — [`ClusterSpec::fingerprint`] and the canonical
//!   [`std::fmt::Display`] form distinguish specs with equal total
//!   processor counts (`cluster:64` vs `cluster:32x1+32x1`), which the
//!   experiment cache keys rely on.
//!
//! ## Grammar
//!
//! ```text
//! SPEC      := SIZE                      (legacy shorthand, speed 1.0)
//!            | "cluster:" PART ("+" PART)*
//! PART      := SIZE ("x" SPEED)?
//! SIZE      := positive integer         (processors)
//! SPEED     := positive finite float    (default 1.0)
//! ```
//!
//! `64`, `cluster:64` and `cluster:64x1` all denote the same legacy
//! machine and display canonically as `cluster:64`.

use crate::hash::fnv1a64;

/// Maximum number of partitions a [`ClusterSpec`] can hold. Keeping the
/// spec a fixed-size `Copy` value lets `SimConfig` stay `Copy` and keeps
/// every per-partition loop allocation-free.
pub const MAX_PARTITIONS: usize = 8;

/// One partition: a pool of identical processors with a relative speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Processor count of this partition.
    pub size: u32,
    /// Relative speed factor (1.0 = the paper's reference machine; 0.5
    /// runs jobs twice as long). Positive and finite.
    pub speed: f64,
}

impl Partition {
    /// The wall-clock running time of a job whose reference running
    /// time is `run`, on this partition: `ceil(run / speed)`, at least
    /// one second. Speed 1.0 returns `run` untouched (exact legacy
    /// integer arithmetic, no float round-trip).
    #[inline]
    pub fn scaled_run(&self, run: i64) -> i64 {
        if self.speed == 1.0 {
            run
        } else {
            ((run as f64 / self.speed).ceil() as i64).max(1)
        }
    }
}

/// An ordered, fixed-capacity list of [`Partition`]s — the machine a
/// simulation runs on. See the module docs for semantics and grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    len: u8,
    parts: [Partition; MAX_PARTITIONS],
}

/// A malformed cluster specification (see the module-level grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterSpecError {
    /// The spec string or partition list was empty.
    Empty,
    /// More than [`MAX_PARTITIONS`] partitions.
    TooManyPartitions {
        /// How many were given.
        given: usize,
    },
    /// A partition's processor count was zero or unparsable.
    BadSize {
        /// The offending partition text.
        part: String,
    },
    /// A partition's speed was non-positive, non-finite, or unparsable.
    BadSpeed {
        /// The offending partition text.
        part: String,
    },
}

impl std::fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterSpecError::Empty => write!(f, "empty cluster spec"),
            ClusterSpecError::TooManyPartitions { given } => {
                write!(
                    f,
                    "{given} partitions exceed the maximum of {MAX_PARTITIONS}"
                )
            }
            ClusterSpecError::BadSize { part } => {
                write!(f, "partition {part:?} needs a positive processor count")
            }
            ClusterSpecError::BadSpeed { part } => {
                write!(f, "partition {part:?} needs a positive finite speed")
            }
        }
    }
}

impl std::error::Error for ClusterSpecError {}

impl ClusterSpec {
    /// The legacy machine: one partition of `machine_size` processors at
    /// speed 1.0.
    pub fn single(machine_size: u32) -> Self {
        let mut parts = [Partition {
            size: 0,
            speed: 1.0,
        }; MAX_PARTITIONS];
        parts[0] = Partition {
            size: machine_size,
            speed: 1.0,
        };
        Self { len: 1, parts }
    }

    /// Builds a spec from an explicit partition list.
    pub fn from_partitions(partitions: &[Partition]) -> Result<Self, ClusterSpecError> {
        if partitions.is_empty() {
            return Err(ClusterSpecError::Empty);
        }
        if partitions.len() > MAX_PARTITIONS {
            return Err(ClusterSpecError::TooManyPartitions {
                given: partitions.len(),
            });
        }
        let mut parts = [Partition {
            size: 0,
            speed: 1.0,
        }; MAX_PARTITIONS];
        for (i, p) in partitions.iter().enumerate() {
            if p.size == 0 {
                return Err(ClusterSpecError::BadSize {
                    part: format!("{}x{}", p.size, p.speed),
                });
            }
            if !(p.speed.is_finite() && p.speed > 0.0) {
                return Err(ClusterSpecError::BadSpeed {
                    part: format!("{}x{}", p.size, p.speed),
                });
            }
            parts[i] = *p;
        }
        Ok(Self {
            len: partitions.len() as u8,
            parts,
        })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false — a spec holds at least one partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The partitions, in routing (first-fit) order.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts[..self.len as usize]
    }

    /// The partition at `index`.
    pub fn part(&self, index: usize) -> Partition {
        self.parts[index]
    }

    /// Total processors across all partitions — the `m` that aggregate
    /// metrics (utilization) and workload validation totals refer to.
    pub fn total_procs(&self) -> u32 {
        self.partitions().iter().map(|p| p.size).sum()
    }

    /// The widest partition — the largest job the cluster can run.
    pub fn max_partition_size(&self) -> u32 {
        self.partitions().iter().map(|p| p.size).max().unwrap_or(0)
    }

    /// Whether this is the exact legacy machine: one partition at
    /// speed 1.0. Simulations on such specs are byte-identical to the
    /// pre-cluster engine.
    pub fn is_single_homogeneous(&self) -> bool {
        self.len == 1 && self.parts[0].speed == 1.0
    }

    /// A stable content hash over the canonical encoding (partition
    /// count, then each partition's size and speed bits, little-endian).
    /// Two specs with equal total processors but different partitioning
    /// or speeds hash differently — the cache-identity requirement.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(1 + self.len() * 12);
        bytes.push(self.len);
        for p in self.partitions() {
            bytes.extend_from_slice(&p.size.to_le_bytes());
            bytes.extend_from_slice(&p.speed.to_bits().to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

impl std::fmt::Display for ClusterSpec {
    /// Canonical form: `cluster:64` for the legacy machine, otherwise
    /// `cluster:<size>x<speed>+...` with shortest-round-trip speeds.
    /// Parsing the rendered string yields the identical spec.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster:")?;
        if self.is_single_homogeneous() {
            return write!(f, "{}", self.parts[0].size);
        }
        for (i, p) in self.partitions().iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{}x{}", p.size, p.speed)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for ClusterSpec {
    type Err = ClusterSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ClusterSpecError::Empty);
        }
        let body = s.strip_prefix("cluster:").unwrap_or(s);
        if body.is_empty() {
            return Err(ClusterSpecError::Empty);
        }
        let mut partitions = Vec::new();
        for part in body.split('+') {
            let part = part.trim();
            let (size_text, speed_text) = match part.split_once('x') {
                Some((size, speed)) => (size, Some(speed)),
                None => (part, None),
            };
            let size: u32 = size_text
                .trim()
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| ClusterSpecError::BadSize { part: part.into() })?;
            let speed: f64 = match speed_text {
                Some(text) => text
                    .trim()
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .ok_or_else(|| ClusterSpecError::BadSpeed { part: part.into() })?,
                None => 1.0,
            };
            partitions.push(Partition { size, speed });
        }
        Self::from_partitions(&partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_the_legacy_machine() {
        let c = ClusterSpec::single(64);
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_procs(), 64);
        assert_eq!(c.max_partition_size(), 64);
        assert!(c.is_single_homogeneous());
        assert_eq!(c.to_string(), "cluster:64");
    }

    #[test]
    fn parses_legacy_shorthand_and_prefixed_forms() {
        let bare: ClusterSpec = "64".parse().unwrap();
        let prefixed: ClusterSpec = "cluster:64".parse().unwrap();
        let explicit: ClusterSpec = "cluster:64x1".parse().unwrap();
        assert_eq!(bare, ClusterSpec::single(64));
        assert_eq!(prefixed, bare);
        assert_eq!(explicit, bare);
    }

    #[test]
    fn parses_heterogeneous_specs() {
        let c: ClusterSpec = "cluster:64x1.0+32x0.5".parse().unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.part(0).size, 64);
        assert_eq!(c.part(0).speed, 1.0);
        assert_eq!(c.part(1).size, 32);
        assert_eq!(c.part(1).speed, 0.5);
        assert_eq!(c.total_procs(), 96);
        assert_eq!(c.max_partition_size(), 64);
        assert!(!c.is_single_homogeneous());
        assert_eq!(c.to_string(), "cluster:64x1+32x0.5");
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "64",
            "cluster:64",
            "cluster:64x1.0+32x0.5",
            "cluster:8x2+8x2+8x2",
            "cluster:32x1+32x1",
            "cluster:16x0.25",
        ] {
            let c: ClusterSpec = text.parse().unwrap();
            let rendered = c.to_string();
            let reparsed: ClusterSpec = rendered.parse().unwrap();
            assert_eq!(reparsed, c, "{text} -> {rendered}");
            assert_eq!(
                reparsed.to_string(),
                rendered,
                "canonical form is a fixpoint"
            );
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        assert_eq!("".parse::<ClusterSpec>(), Err(ClusterSpecError::Empty));
        assert_eq!(
            "cluster:".parse::<ClusterSpec>(),
            Err(ClusterSpecError::Empty)
        );
        assert!(matches!(
            "cluster:0".parse::<ClusterSpec>(),
            Err(ClusterSpecError::BadSize { .. })
        ));
        assert!(matches!(
            "cluster:64x0".parse::<ClusterSpec>(),
            Err(ClusterSpecError::BadSpeed { .. })
        ));
        assert!(matches!(
            "cluster:64x-1".parse::<ClusterSpec>(),
            Err(ClusterSpecError::BadSpeed { .. })
        ));
        assert!(matches!(
            "cluster:64xNaN".parse::<ClusterSpec>(),
            Err(ClusterSpecError::BadSpeed { .. })
        ));
        assert!(matches!(
            "cluster:abc".parse::<ClusterSpec>(),
            Err(ClusterSpecError::BadSize { .. })
        ));
        assert!(matches!(
            "cluster:1+1+1+1+1+1+1+1+1".parse::<ClusterSpec>(),
            Err(ClusterSpecError::TooManyPartitions { given: 9 })
        ));
    }

    #[test]
    fn equal_totals_fingerprint_differently() {
        let a: ClusterSpec = "cluster:64".parse().unwrap();
        let b: ClusterSpec = "cluster:32x1+32x1".parse().unwrap();
        let c: ClusterSpec = "cluster:64x0.5".parse().unwrap();
        assert_eq!(a.total_procs(), b.total_procs());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
        // Same spec, same fingerprint — stable across construction paths.
        assert_eq!(
            a.fingerprint(),
            "64".parse::<ClusterSpec>().unwrap().fingerprint()
        );
    }

    #[test]
    fn speed_scaling_rule() {
        let fast = Partition {
            size: 8,
            speed: 2.0,
        };
        let slow = Partition {
            size: 8,
            speed: 0.5,
        };
        let unit = Partition {
            size: 8,
            speed: 1.0,
        };
        assert_eq!(unit.scaled_run(100), 100);
        assert_eq!(fast.scaled_run(100), 50);
        assert_eq!(slow.scaled_run(100), 200);
        assert_eq!(fast.scaled_run(101), 51, "ceil, not floor");
        assert_eq!(fast.scaled_run(1), 1, "never below one second");
    }
}
