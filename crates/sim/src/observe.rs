//! Observation hooks for the simulation engine.
//!
//! [`crate::engine::simulate_observed`] emits a [`SimEvent`] at every
//! state change of the simulation — submission, start, §5.2 correction,
//! completion, and the final result — to a caller-supplied
//! [`SimObserver`]. This turns metrics collection from a post-hoc scan of
//! the [`SimResult`] into an incremental computation: [`MetricsObserver`]
//! maintains the campaign aggregates (AVEbsld, mean wait, utilization,
//! correction counts) as jobs finish, and a closure observer can stream
//! progress, enforce invariants, or abort-log long simulations without
//! touching the engine.
//!
//! Observers are strictly read-only: the engine hands out shared
//! references, so an observer can never perturb the schedule. A
//! simulation run with [`NullObserver`] is bit-identical to one run
//! through the plain [`crate::engine::simulate`] entry point.
//!
//! ```
//! use predictsim_sim::engine::{simulate_observed, SimConfig};
//! use predictsim_sim::job::{Job, JobId};
//! use predictsim_sim::observe::{MetricsObserver, SimEvent};
//! use predictsim_sim::predict::RequestedTimePredictor;
//! use predictsim_sim::scheduler::EasyScheduler;
//! use predictsim_sim::time::Time;
//!
//! let jobs: Vec<Job> = (0..10)
//!     .map(|i| Job {
//!         id: JobId(i),
//!         submit: Time(i as i64 * 60),
//!         run: 120,
//!         requested: 600,
//!         procs: 1,
//!         user: i % 2,
//!         user_ix: i % 2,
//!         swf_id: i as u64,
//!     })
//!     .collect();
//! let mut metrics = MetricsObserver::new(4);
//! let result = simulate_observed(
//!     &jobs,
//!     SimConfig::single(4),
//!     &mut EasyScheduler::new(),
//!     &mut RequestedTimePredictor,
//!     None,
//!     &mut metrics,
//! )
//! .unwrap();
//! assert_eq!(metrics.finished(), 10);
//! assert!((metrics.ave_bsld() - result.ave_bsld()).abs() < 1e-9);
//! ```

use std::sync::{Arc, Mutex};

use predictsim_metrics::{bounded_slowdown, DEFAULT_TAU};

use crate::cluster::ClusterSpec;
use crate::job::Job;
use crate::outcome::{JobOutcome, SimResult};
use crate::time::Time;

/// One engine state change, in event order.
///
/// All payloads are borrowed from the engine's internal state; copy out
/// whatever must outlive the callback.
#[derive(Debug)]
pub enum SimEvent<'a> {
    /// A job was submitted and its initial prediction recorded (already
    /// clamped into `[1, p̃_j]`).
    Submitted {
        /// The submitted job.
        job: &'a Job,
        /// The clamped initial prediction, seconds.
        prediction: i64,
        /// Submission instant.
        now: Time,
    },
    /// The scheduler started a job.
    Started {
        /// The started job.
        job: &'a Job,
        /// Start instant.
        now: Time,
        /// When the current prediction says the job will end.
        predicted_end: Time,
    },
    /// A running job outlived its prediction and a §5.2 correction
    /// produced a replacement estimate (already clamped).
    Corrected {
        /// The under-predicted job.
        job: &'a Job,
        /// Instant of the expiry.
        now: Time,
        /// The prediction that just expired (seconds from job start).
        expired_prediction: i64,
        /// The corrected prediction (seconds from job start).
        new_prediction: i64,
        /// How many corrections this job has now received.
        corrections: u32,
    },
    /// A job completed (or was killed at its requested time).
    Finished {
        /// The recorded outcome.
        outcome: &'a JobOutcome,
    },
    /// The simulation drained its event queue; the result is final.
    Completed {
        /// The assembled result (outcomes sorted by job id).
        result: &'a SimResult,
    },
}

/// Receives every [`SimEvent`] of a simulation run.
///
/// Implemented by [`NullObserver`], [`MetricsObserver`],
/// [`SharedMetrics`], and — through the blanket impl — any
/// `FnMut(&SimEvent<'_>)` closure.
pub trait SimObserver {
    /// Called once per engine state change, in event order.
    fn on_event(&mut self, event: &SimEvent<'_>);

    /// Polled by the engine once per event batch: returning `false`
    /// aborts the simulation (the engine returns
    /// [`crate::engine::SimError::Aborted`]). The default never aborts,
    /// so plain observers — including the closure blanket impl — are
    /// unaffected. This is the early-abort seam sweep drivers use to
    /// stop simulating a configuration that is already provably
    /// dominated (e.g. its running prefix-AVEbsld lower bound exceeds a
    /// known-better alternative).
    fn keep_running(&self) -> bool {
        true
    }
}

impl<F: FnMut(&SimEvent<'_>)> SimObserver for F {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self(event)
    }
}

/// The do-nothing observer: [`crate::engine::simulate`] runs with this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    fn on_event(&mut self, _event: &SimEvent<'_>) {}
}

/// Incremental scheduling metrics, maintained per event.
///
/// Every aggregate the campaign layer reports is available *during* the
/// simulation — after each `Finished` event the values reflect all jobs
/// completed so far — with no post-hoc scan over the outcome vector.
/// Sums accumulate in completion order; for the sorted-by-id aggregation
/// the tables pin byte-for-byte, derive metrics from the final
/// [`SimResult`] instead.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    machine_size: u32,
    tau: f64,
    submitted: usize,
    started: usize,
    finished: usize,
    killed: usize,
    corrections: u64,
    bsld_sum: f64,
    max_bsld: f64,
    wait_sum: f64,
    busy_work: f64,
    first_submit: Option<i64>,
    last_end: i64,
}

impl MetricsObserver {
    /// A fresh accumulator for a machine of `machine_size` processors,
    /// with the paper's τ = 10 s.
    pub fn new(machine_size: u32) -> Self {
        Self {
            machine_size,
            tau: DEFAULT_TAU,
            submitted: 0,
            started: 0,
            finished: 0,
            killed: 0,
            corrections: 0,
            bsld_sum: 0.0,
            max_bsld: 0.0,
            wait_sum: 0.0,
            busy_work: 0.0,
            first_submit: None,
            last_end: 0,
        }
    }

    /// Same accumulator with an explicit bounded-slowdown threshold τ.
    pub fn with_tau(machine_size: u32, tau: f64) -> Self {
        Self {
            tau,
            ..Self::new(machine_size)
        }
    }

    /// A `(handle, observer)` pair for use through an owning API such as
    /// `Scenario::builder().observer(..)`: hand the boxed observer to the
    /// runner and read the metrics from the retained handle afterwards
    /// (or concurrently, from another thread).
    pub fn shared(machine_size: u32) -> (SharedMetrics, Box<dyn SimObserver + Send>) {
        let shared = SharedMetrics(Arc::new(Mutex::new(Self::new(machine_size))));
        (shared.clone(), Box::new(shared))
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Jobs started so far.
    pub fn started(&self) -> usize {
        self.started
    }

    /// Jobs finished so far.
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// Jobs waiting or running right now.
    pub fn in_flight(&self) -> usize {
        self.submitted - self.finished
    }

    /// Jobs killed at their requested-time bound so far.
    pub fn killed(&self) -> usize {
        self.killed
    }

    /// §5.2 corrections applied so far.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// Mean bounded slowdown of the jobs finished so far (≥ 1, or 0.0
    /// before the first completion).
    pub fn ave_bsld(&self) -> f64 {
        if self.finished == 0 {
            0.0
        } else {
            self.bsld_sum / self.finished as f64
        }
    }

    /// Maximum bounded slowdown seen so far.
    pub fn max_bsld(&self) -> f64 {
        self.max_bsld
    }

    /// Mean waiting time (seconds) of the jobs finished so far.
    pub fn mean_wait(&self) -> f64 {
        if self.finished == 0 {
            0.0
        } else {
            self.wait_sum / self.finished as f64
        }
    }

    /// Utilization achieved so far: completed work over the span from the
    /// first submission to the latest completion.
    pub fn utilization(&self) -> f64 {
        let Some(first) = self.first_submit else {
            return 0.0;
        };
        let span = (self.last_end - first).max(1) as f64;
        self.busy_work / (span * self.machine_size as f64)
    }
}

impl SimObserver for MetricsObserver {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::Submitted { job, .. } => {
                self.submitted += 1;
                let submit = job.submit.0;
                self.first_submit = Some(self.first_submit.map_or(submit, |f| f.min(submit)));
            }
            SimEvent::Started { .. } => self.started += 1,
            SimEvent::Corrected { .. } => self.corrections += 1,
            SimEvent::Finished { outcome } => {
                self.finished += 1;
                if outcome.killed {
                    self.killed += 1;
                }
                let wait = outcome.wait() as f64;
                let bsld = bounded_slowdown(wait, outcome.run as f64, self.tau);
                self.bsld_sum += bsld;
                self.max_bsld = self.max_bsld.max(bsld);
                self.wait_sum += wait;
                self.busy_work += outcome.run as f64 * outcome.procs as f64;
                self.last_end = self.last_end.max(outcome.end.0);
            }
            SimEvent::Completed { .. } => {}
        }
    }
}

/// A cloneable, thread-safe handle over a [`MetricsObserver`] — see
/// [`MetricsObserver::shared`].
#[derive(Debug, Clone)]
pub struct SharedMetrics(Arc<Mutex<MetricsObserver>>);

impl SharedMetrics {
    /// A copy of the current metrics state.
    ///
    /// # Panics
    ///
    /// Panics if an observer callback panicked while holding the lock.
    pub fn snapshot(&self) -> MetricsObserver {
        self.0.lock().expect("metrics lock poisoned").clone()
    }
}

impl SimObserver for SharedMetrics {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self.0
            .lock()
            .expect("metrics lock poisoned")
            .on_event(event);
    }
}

/// A modular event counter: `tick()` returns `true` once every `every`
/// calls. The shared cadence primitive behind intra-cell `--progress`
/// heartbeats and the serve daemon's periodic `metrics` frames — both
/// count raw [`SimEvent`]s, so one simulation produces the same frame
/// boundaries whichever journaling path consumes them.
#[derive(Debug, Clone)]
pub struct Ticker {
    every: u64,
    seen: u64,
}

impl Ticker {
    /// Fires every `every` events (clamped to at least 1).
    pub fn new(every: u64) -> Self {
        Self {
            every: every.max(1),
            seen: 0,
        }
    }

    /// Counts one event; `true` on every `every`-th call.
    pub fn tick(&mut self) -> bool {
        self.seen += 1;
        self.seen.is_multiple_of(self.every)
    }

    /// Total events counted so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Per-partition utilization time series on simulated-time buckets.
///
/// Busy processor-seconds accumulate from `Finished` outcomes into
/// fixed-width buckets of simulated time (anchored at the first
/// submission), one growable series per partition — the compressed
/// per-resource monitoring shape of cluster simulators, maintained
/// incrementally so a streaming consumer (the serve daemon's `metrics`
/// frames) can snapshot it mid-run.
///
/// Because busy time is recorded at `Finished`, the trailing buckets of
/// a snapshot undercount still-running jobs; the series is exact once
/// the simulation completes.
#[derive(Debug, Clone)]
pub struct UtilizationObserver {
    cluster: ClusterSpec,
    bucket_seconds: i64,
    origin: Option<i64>,
    busy: Vec<Vec<f64>>,
}

impl UtilizationObserver {
    /// Default bucket width: one simulated hour.
    pub const DEFAULT_BUCKET_SECONDS: i64 = 3_600;

    /// A fresh accumulator for `cluster` with `bucket_seconds`-wide
    /// buckets (clamped to at least 1 s).
    pub fn new(cluster: ClusterSpec, bucket_seconds: i64) -> Self {
        let busy = vec![Vec::new(); cluster.len()];
        Self {
            cluster,
            bucket_seconds: bucket_seconds.max(1),
            origin: None,
            busy,
        }
    }

    /// [`Self::new`] with [`Self::DEFAULT_BUCKET_SECONDS`].
    pub fn hourly(cluster: ClusterSpec) -> Self {
        Self::new(cluster, Self::DEFAULT_BUCKET_SECONDS)
    }

    /// The bucket width, simulated seconds.
    pub fn bucket_seconds(&self) -> i64 {
        self.bucket_seconds
    }

    /// Simulated instant of bucket 0's left edge (the first submission),
    /// or `None` before any job was submitted.
    pub fn origin(&self) -> Option<Time> {
        self.origin.map(Time)
    }

    /// Number of partitions tracked.
    pub fn partitions(&self) -> usize {
        self.busy.len()
    }

    /// Busy processor-seconds per bucket for `partition` (empty until the
    /// first completion there).
    pub fn busy_seconds(&self, partition: usize) -> &[f64] {
        &self.busy[partition]
    }

    /// Utilization fraction per bucket for `partition`: busy
    /// processor-seconds over `bucket_seconds × partition size`.
    pub fn utilization(&self, partition: usize) -> Vec<f64> {
        let capacity = self.bucket_seconds as f64 * self.cluster.part(partition).size as f64;
        self.busy[partition].iter().map(|b| b / capacity).collect()
    }

    /// Run-length-compressed utilization for `partition`: `(fraction,
    /// repeat)` pairs over values rounded to 4 decimals — the compact
    /// wire form for streamed metrics frames.
    pub fn compressed(&self, partition: usize) -> Vec<(f64, u32)> {
        let mut runs: Vec<(f64, u32)> = Vec::new();
        for value in self.utilization(partition) {
            let rounded = (value * 1e4).round() / 1e4;
            match runs.last_mut() {
                Some((v, n)) if *v == rounded => *n += 1,
                _ => runs.push((rounded, 1)),
            }
        }
        runs
    }

    fn record(&mut self, outcome: &JobOutcome) {
        let origin = match self.origin {
            Some(o) => o.min(outcome.submit.0),
            None => outcome.submit.0,
        };
        self.origin = Some(origin);
        let (start, end) = (outcome.start.0, outcome.end.0);
        if end <= start || outcome.procs == 0 {
            return;
        }
        let series = &mut self.busy[outcome.partition as usize];
        let first = ((start - origin) / self.bucket_seconds).max(0) as usize;
        let last = ((end - 1 - origin) / self.bucket_seconds).max(0) as usize;
        if series.len() <= last {
            series.resize(last + 1, 0.0);
        }
        for (i, slot) in series.iter_mut().enumerate().take(last + 1).skip(first) {
            let lo = origin + i as i64 * self.bucket_seconds;
            let hi = lo + self.bucket_seconds;
            let overlap = (end.min(hi) - start.max(lo)).max(0);
            *slot += overlap as f64 * outcome.procs as f64;
        }
    }
}

impl SimObserver for UtilizationObserver {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::Submitted { job, .. } => {
                let submit = job.submit.0;
                self.origin = Some(self.origin.map_or(submit, |o| o.min(submit)));
            }
            SimEvent::Finished { outcome } => self.record(outcome),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, simulate_observed, SimConfig};
    use crate::job::JobId;
    use crate::predict::{RequestedTimeCorrection, RequestedTimePredictor, RuntimePredictor};
    use crate::scheduler::EasyScheduler;
    use crate::state::SystemView;

    fn jobs(n: u32) -> Vec<Job> {
        (0..n)
            .map(|i| Job {
                id: JobId(i),
                submit: Time(i as i64 * 40),
                run: 100 + (i as i64 % 3) * 50,
                requested: 400,
                procs: 1 + i % 3,
                user: i % 2,
                user_ix: i % 2,
                swf_id: i as u64,
            })
            .collect()
    }

    #[test]
    fn closure_observer_sees_every_lifecycle_event() {
        let js = jobs(12);
        let mut submits = 0usize;
        let mut starts = 0usize;
        let mut finishes = 0usize;
        let mut completed = 0usize;
        let mut observer = |e: &SimEvent<'_>| match e {
            SimEvent::Submitted { .. } => submits += 1,
            SimEvent::Started { .. } => starts += 1,
            SimEvent::Finished { .. } => finishes += 1,
            SimEvent::Completed { result } => {
                completed += 1;
                assert_eq!(result.outcomes.len(), 12);
            }
            SimEvent::Corrected { .. } => {}
        };
        simulate_observed(
            &js,
            SimConfig::single(4),
            &mut EasyScheduler::new(),
            &mut RequestedTimePredictor,
            None,
            &mut observer,
        )
        .unwrap();
        assert_eq!((submits, starts, finishes, completed), (12, 12, 12, 1));
    }

    #[test]
    fn metrics_observer_matches_post_hoc_scan() {
        let js = jobs(20);
        let cfg = SimConfig::single(5);
        let mut metrics = MetricsObserver::new(cfg.machine_size());
        let observed = simulate_observed(
            &js,
            cfg,
            &mut EasyScheduler::sjbf(),
            &mut RequestedTimePredictor,
            None,
            &mut metrics,
        )
        .unwrap();
        let plain = simulate(
            &js,
            cfg,
            &mut EasyScheduler::sjbf(),
            &mut RequestedTimePredictor,
            None,
        )
        .unwrap();
        assert_eq!(observed, plain, "observation must not perturb the engine");
        assert_eq!(metrics.finished(), plain.outcomes.len());
        assert_eq!(metrics.in_flight(), 0);
        assert!((metrics.ave_bsld() - plain.ave_bsld()).abs() < 1e-9);
        assert!((metrics.mean_wait() - plain.mean_wait()).abs() < 1e-9);
        assert!((metrics.utilization() - plain.utilization()).abs() < 1e-9);
        assert_eq!(metrics.corrections(), plain.total_corrections());
    }

    #[test]
    fn corrections_are_observed() {
        struct Ten;
        impl RuntimePredictor for Ten {
            fn predict(&mut self, _job: &Job, _s: &SystemView<'_>) -> f64 {
                10.0
            }
            fn observe(&mut self, _j: &Job, _a: i64, _s: &SystemView<'_>) {}
            fn name(&self) -> String {
                "ten".into()
            }
        }
        let js = vec![Job {
            id: JobId(0),
            submit: Time(0),
            run: 100,
            requested: 1000,
            procs: 1,
            user: 0,
            user_ix: 0,
            swf_id: 0,
        }];
        let corr = RequestedTimeCorrection;
        let mut corrected = Vec::new();
        let mut observer = |e: &SimEvent<'_>| {
            if let SimEvent::Corrected {
                expired_prediction,
                new_prediction,
                corrections,
                ..
            } = e
            {
                corrected.push((*expired_prediction, *new_prediction, *corrections));
            }
        };
        simulate_observed(
            &js,
            SimConfig::single(2),
            &mut EasyScheduler::new(),
            &mut Ten,
            Some(&corr),
            &mut observer,
        )
        .unwrap();
        assert_eq!(corrected, vec![(10, 1000, 1)]);
    }

    #[test]
    fn shared_metrics_handle_reads_after_run() {
        let js = jobs(8);
        let cfg = SimConfig::single(4);
        let (handle, mut observer) = MetricsObserver::shared(cfg.machine_size());
        simulate_observed(
            &js,
            cfg,
            &mut EasyScheduler::new(),
            &mut RequestedTimePredictor,
            None,
            observer.as_mut(),
        )
        .unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.finished(), 8);
        assert!(snap.ave_bsld() >= 1.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = MetricsObserver::new(16);
        assert_eq!(m.ave_bsld(), 0.0);
        assert_eq!(m.mean_wait(), 0.0);
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn ticker_fires_on_the_modulus() {
        let mut t = Ticker::new(3);
        let fired: Vec<bool> = (0..7).map(|_| t.tick()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false]);
        assert_eq!(t.seen(), 7);
        // A zero interval clamps to 1 rather than dividing by zero.
        let mut every = Ticker::new(0);
        assert!(every.tick());
    }

    #[test]
    fn utilization_observer_buckets_busy_time() {
        // One job: submit 0, runs on 2 procs from t=50 to t=250 with
        // 100 s buckets → buckets carry 50·2, 100·2, 50·2 busy seconds.
        let outcome = JobOutcome {
            id: JobId(0),
            swf_id: 0,
            user: 0,
            procs: 2,
            run: 200,
            requested: 400,
            submit: Time(0),
            start: Time(50),
            end: Time(250),
            initial_prediction: 400,
            corrections: 0,
            killed: false,
            partition: 0,
        };
        let mut u = UtilizationObserver::new(ClusterSpec::single(4), 100);
        u.on_event(&SimEvent::Finished { outcome: &outcome });
        assert_eq!(u.busy_seconds(0), &[100.0, 200.0, 100.0]);
        let frac = u.utilization(0);
        assert_eq!(frac, vec![0.25, 0.5, 0.25]);
        assert_eq!(u.origin(), Some(Time(0)));
    }

    #[test]
    fn utilization_observer_matches_overall_utilization() {
        let js = jobs(30);
        let cfg = SimConfig::single(5);
        let mut util = UtilizationObserver::new(cfg.cluster, 60);
        let result = simulate_observed(
            &js,
            cfg,
            &mut EasyScheduler::sjbf(),
            &mut RequestedTimePredictor,
            None,
            &mut util,
        )
        .unwrap();
        let total: f64 = util.busy_seconds(0).iter().sum();
        let work: f64 = result
            .outcomes
            .iter()
            .map(|o| (o.end.0 - o.start.0) as f64 * o.procs as f64)
            .sum();
        assert!((total - work).abs() < 1e-6, "{total} vs {work}");
        // The RLE form decompresses back to the raw series.
        let decompressed: Vec<f64> = util
            .compressed(0)
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize))
            .collect();
        assert_eq!(decompressed.len(), util.utilization(0).len());
    }

    #[test]
    fn utilization_observer_separates_partitions() {
        let mk = |partition: u32, start: i64, end: i64| JobOutcome {
            id: JobId(partition),
            swf_id: partition as u64,
            user: 0,
            procs: 1,
            run: end - start,
            requested: end - start,
            submit: Time(0),
            start: Time(start),
            end: Time(end),
            initial_prediction: end - start,
            corrections: 0,
            killed: false,
            partition,
        };
        let cluster: ClusterSpec = "cluster:4x1+2x0.5".parse().unwrap();
        let mut u = UtilizationObserver::new(cluster, 10);
        u.on_event(&SimEvent::Finished {
            outcome: &mk(0, 0, 10),
        });
        u.on_event(&SimEvent::Finished {
            outcome: &mk(1, 10, 30),
        });
        assert_eq!(u.partitions(), 2);
        assert_eq!(u.busy_seconds(0), &[10.0]);
        assert_eq!(u.busy_seconds(1), &[0.0, 10.0, 10.0]);
        // Partition capacity differs: 4 procs vs 2.
        assert_eq!(u.utilization(0), vec![0.25]);
        assert_eq!(u.utilization(1), vec![0.0, 0.5, 0.5]);
    }
}
