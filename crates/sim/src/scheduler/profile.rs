//! Processor-availability profile over future time.
//!
//! Conservative backfilling \[14\] plans a tentative start time for *every*
//! waiting job, which requires reasoning about how many processors are
//! free at every future instant, given the predicted ends of running jobs
//! and the reservations already granted. [`Profile`] is that piecewise-
//! constant function, with the operations conservative backfilling needs:
//! find the earliest feasible start for a `(procs, duration)` rectangle,
//! and carve a reservation out of the capacity.

use crate::time::Time;

/// Piecewise-constant "free processors" function of time.
///
/// Internally a sorted list of `(time, free)` breakpoints; `free` of the
/// last breakpoint extends to infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    points: Vec<(i64, i64)>,
}

impl Profile {
    /// Builds the profile as seen at `now` with `free` processors idle and
    /// each `(end, procs)` release adding capacity at its (predicted) end.
    ///
    /// Releases at or before `now` are treated as immediately free (they
    /// can occur transiently while corrections are being applied).
    pub fn new(now: Time, free: u32, releases: &[(Time, u32)]) -> Self {
        let mut deltas: Vec<(i64, i64)> = releases
            .iter()
            .map(|&(t, p)| (t.0.max(now.0), p as i64))
            .collect();
        deltas.sort_unstable();
        let mut points = Vec::with_capacity(deltas.len() + 1);
        points.push((now.0, free as i64));
        for (t, p) in deltas {
            let (last_t, last_free) = *points.last().expect("profile never empty");
            if t == last_t {
                points.last_mut().expect("non-empty").1 = last_free + p;
            } else {
                points.push((t, last_free + p));
            }
        }
        Self { points }
    }

    /// Free processors at instant `t` (clamped to the profile's start).
    pub fn free_at(&self, t: i64) -> i64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Earliest start `s ≥ from` such that at least `procs` processors are
    /// free during the whole interval `[s, s + duration)`.
    ///
    /// Feasibility is guaranteed whenever `procs` does not exceed the
    /// machine size, because capacity is non-decreasing after the last
    /// breakpoint.
    pub fn earliest_start(&self, from: i64, procs: u32, duration: i64) -> i64 {
        let procs = procs as i64;
        debug_assert!(duration > 0, "reservation must have positive duration");
        // Candidate starts: `from` itself and every later breakpoint.
        let mut candidates: Vec<i64> = vec![from];
        candidates.extend(self.points.iter().map(|&(t, _)| t).filter(|&t| t > from));
        'candidate: for s in candidates {
            if self.free_at(s) < procs {
                continue;
            }
            // Check every breakpoint inside (s, s+duration).
            for &(t, f) in &self.points {
                if t <= s {
                    continue;
                }
                if t >= s + duration {
                    break;
                }
                if f < procs {
                    continue 'candidate;
                }
            }
            return s;
        }
        // With procs ≤ machine size this is unreachable; degrade to the
        // profile's horizon for robustness.
        self.points
            .last()
            .map(|&(t, _)| t.max(from))
            .unwrap_or(from)
    }

    /// Removes `procs` processors during `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the interval would drive capacity negative
    /// — callers must only reserve what [`Profile::earliest_start`]
    /// declared feasible.
    pub fn reserve(&mut self, start: i64, duration: i64, procs: u32) {
        let procs = procs as i64;
        let end = start + duration;
        self.ensure_breakpoint(start);
        self.ensure_breakpoint(end);
        for (t, f) in self.points.iter_mut() {
            if *t >= start && *t < end {
                *f -= procs;
                debug_assert!(*f >= 0, "over-reserved profile at t={t}: {f}");
            }
        }
    }

    fn ensure_breakpoint(&mut self, t: i64) {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(_) => {}
            Err(0) => {
                // Before profile start: extend backwards with the same free
                // count (callers only reserve from `now` on, so this is a
                // defensive path).
                let f = self.points[0].1;
                self.points.insert(0, (t, f));
            }
            Err(i) => {
                let f = self.points[i - 1].1;
                self.points.insert(i, (t, f));
            }
        }
    }

    /// The breakpoints, for inspection in tests.
    pub fn points(&self) -> &[(i64, i64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        // now=0, 2 free; +4 at t=100; +2 at t=50 -> [(0,2),(50,4),(100,8)]
        Profile::new(Time(0), 2, &[(Time(100), 4), (Time(50), 2)])
    }

    #[test]
    fn construction_accumulates_releases() {
        let p = profile();
        assert_eq!(p.points(), &[(0, 2), (50, 4), (100, 8)]);
    }

    #[test]
    fn releases_at_same_instant_merge() {
        let p = Profile::new(Time(0), 0, &[(Time(10), 1), (Time(10), 2)]);
        assert_eq!(p.points(), &[(0, 0), (10, 3)]);
    }

    #[test]
    fn past_releases_count_as_immediate() {
        let p = Profile::new(Time(100), 1, &[(Time(50), 3)]);
        assert_eq!(p.points(), &[(100, 4)]);
    }

    #[test]
    fn free_at_steps() {
        let p = profile();
        assert_eq!(p.free_at(0), 2);
        assert_eq!(p.free_at(49), 2);
        assert_eq!(p.free_at(50), 4);
        assert_eq!(p.free_at(1_000_000), 8);
        assert_eq!(p.free_at(-10), 2); // clamped
    }

    #[test]
    fn earliest_start_immediate_fit() {
        let p = profile();
        assert_eq!(p.earliest_start(0, 2, 1000), 0);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p = profile();
        assert_eq!(p.earliest_start(0, 3, 10), 50);
        assert_eq!(p.earliest_start(0, 8, 10), 100);
    }

    #[test]
    fn earliest_start_respects_from() {
        let p = profile();
        assert_eq!(p.earliest_start(70, 3, 10), 70);
    }

    #[test]
    fn reserve_carves_capacity() {
        let mut p = profile();
        p.reserve(0, 50, 2); // consume both free procs until t=50
        assert_eq!(p.free_at(0), 0);
        assert_eq!(p.free_at(49), 0);
        assert_eq!(p.free_at(50), 4);
        // Now a 1-proc job must wait until 50.
        assert_eq!(p.earliest_start(0, 1, 10), 50);
    }

    #[test]
    fn reserve_inserts_breakpoints() {
        let mut p = profile();
        p.reserve(10, 20, 1); // [10,30)
        assert_eq!(p.free_at(9), 2);
        assert_eq!(p.free_at(10), 1);
        assert_eq!(p.free_at(29), 1);
        assert_eq!(p.free_at(30), 2);
    }

    #[test]
    fn reservation_spanning_releases() {
        let mut p = profile();
        // 4 procs for [50, 150): uses the t=50 capacity of 4 entirely,
        // leaving 4 at t=100.
        assert_eq!(p.earliest_start(0, 4, 100), 50);
        p.reserve(50, 100, 4);
        assert_eq!(p.free_at(50), 0);
        assert_eq!(p.free_at(100), 4);
        assert_eq!(p.free_at(150), 8);
    }

    #[test]
    fn sequential_reservations_stack() {
        let mut p = Profile::new(Time(0), 4, &[]);
        let s1 = p.earliest_start(0, 3, 100);
        p.reserve(s1, 100, 3);
        let s2 = p.earliest_start(0, 3, 100);
        assert_eq!(s1, 0);
        assert_eq!(s2, 100); // must queue behind the first
    }
}
