//! Processor-availability profile over future time.
//!
//! Conservative backfilling \[14\] plans a tentative start time for *every*
//! waiting job, which requires reasoning about how many processors are
//! free at every future instant, given the predicted ends of running jobs
//! and the reservations already granted. [`Profile`] is that piecewise-
//! constant function, with the operations conservative backfilling needs:
//! find the earliest feasible start for a `(procs, duration)` rectangle,
//! and carve a reservation out of the capacity.
//!
//! [`ReleaseSet`] is the *incrementally maintained* substrate both
//! backfilling families read: the time-sorted aggregate of future
//! capacity releases (one entry per distinct predicted end), kept up to
//! date by the engine on every start, finish, and correction instead of
//! being rebuilt and re-sorted from the running set on every scheduling
//! pass. EASY's reservation walk consumes it directly;
//! [`Profile::rebuild_from`] materializes it into a [`Profile`] for
//! conservative backfilling without sorting or allocating.

use crate::state::RunningJob;
use crate::time::Time;

/// One aggregated future capacity release.
///
/// Equality ignores the [`ReleasePoint::uniform`] cache: it is a
/// conservative summary of the *history* of additions, so an
/// incrementally maintained point can legitimately hold 0 where a
/// freshly aggregated one knows the common size — without the sets
/// differing in any behavior-relevant way (a 0 merely routes the EASY
/// fast path to the fallback, which computes the same reservation).
#[derive(Debug, Clone, Copy, Eq)]
pub struct ReleasePoint {
    /// The instant (a predicted end of one or more running jobs).
    pub time: i64,
    /// Total processors released at this instant.
    pub procs: u32,
    /// How many running jobs release at this instant. Scheduling fast
    /// paths that are only order-independent for a *single* release at
    /// the crossing instant use this to detect ties.
    pub jobs: u32,
    /// The common per-job processor count when every job releasing here
    /// is known to release the same amount, else 0. Conservative: a
    /// point that was ever heterogeneous stays 0 even if removals make
    /// it uniform again (the aggregate cannot tell). A *uniform* tie at
    /// a reservation's crossing instant is order-free — every
    /// permutation of equal releases crosses after the same number of
    /// jobs — which lets EASY's fast path resolve most ties without the
    /// legacy sort-and-walk fallback.
    pub uniform: u32,
}

impl PartialEq for ReleasePoint {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.procs, self.jobs) == (other.time, other.procs, other.jobs)
    }
}

/// Time-sorted aggregate of the future capacity releases of the running
/// set: for every distinct predicted end, the processors freed there.
///
/// Maintained incrementally by the engine — O(log n) locate plus a
/// memmove per update, no allocation after warm-up — so a scheduling
/// pass never sorts the running set again. The invariant the engine
/// upholds (and [`crate::state::SimState`] asserts in tests): the
/// multiset of `(predicted_end, procs)` over running jobs equals this
/// set's aggregated contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReleaseSet {
    points: Vec<ReleasePoint>,
}

impl ReleaseSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the set from a running slice (tests and oracles; the
    /// engine maintains its set incrementally instead).
    pub fn from_running(running: &[RunningJob]) -> Self {
        let mut set = Self::new();
        for r in running {
            set.add(r.predicted_end.0, r.procs);
        }
        set
    }

    /// Registers one job releasing `procs` processors at `time`.
    pub fn add(&mut self, time: i64, procs: u32) {
        match self.points.binary_search_by_key(&time, |p| p.time) {
            Ok(i) => {
                let p = &mut self.points[i];
                p.procs += procs;
                p.jobs += 1;
                if p.uniform != procs {
                    p.uniform = 0;
                }
            }
            Err(i) => self.points.insert(
                i,
                ReleasePoint {
                    time,
                    procs,
                    jobs: 1,
                    uniform: procs,
                },
            ),
        }
    }

    /// Unregisters one job that would have released `procs` at `time`
    /// (it finished, or its prediction moved).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if no such release is registered — that is
    /// an engine bookkeeping bug, not a runtime condition.
    pub fn remove(&mut self, time: i64, procs: u32) {
        match self.points.binary_search_by_key(&time, |p| p.time) {
            Ok(i) => {
                let p = &mut self.points[i];
                debug_assert!(
                    p.procs >= procs && p.jobs >= 1,
                    "release underflow at t={time}: removing {procs} from {p:?}"
                );
                p.procs -= procs;
                p.jobs -= 1;
                if p.jobs == 0 {
                    debug_assert_eq!(p.procs, 0, "procs left with no jobs at t={time}");
                    self.points.remove(i);
                }
            }
            Err(_) => debug_assert!(false, "no release registered at t={time}"),
        }
    }

    /// Moves one job's release of `procs` from `from` to `to` (a
    /// correction re-predicted its end).
    pub fn shift(&mut self, from: i64, to: i64, procs: u32) {
        if from == to {
            return;
        }
        self.remove(from, procs);
        self.add(to, procs);
    }

    /// The aggregated releases, sorted by time.
    pub fn points(&self) -> &[ReleasePoint] {
        &self.points
    }

    /// Empties the set, keeping the buffer's capacity (scratch reuse
    /// across simulations).
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// Capacity of the point buffer (scratch-reuse accounting).
    pub fn capacity(&self) -> usize {
        self.points.capacity()
    }

    /// Number of distinct release instants.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no job is due to release capacity.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Piecewise-constant "free processors" function of time.
///
/// Internally a sorted list of `(time, free)` breakpoints; `free` of the
/// last breakpoint extends to infinity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    points: Vec<(i64, i64)>,
}

impl Profile {
    /// An empty profile, to be filled by [`Profile::rebuild_from`]
    /// (scratch reuse: the points buffer is retained across rebuilds).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Refills this profile from `now`, `free` idle processors, and the
    /// incrementally maintained release set — the allocation-free
    /// equivalent of [`Profile::new`] (byte-identical result for the
    /// same release multiset: both aggregate per instant, and
    /// aggregation is order-free).
    ///
    /// Releases at or before `now` fold into the immediately-free
    /// capacity, exactly as in [`Profile::new`].
    pub fn rebuild_from(&mut self, now: Time, free: u32, releases: &ReleaseSet) {
        self.points.clear();
        let pts = releases.points();
        let mut base = free as i64;
        let mut i = 0;
        while i < pts.len() && pts[i].time <= now.0 {
            base += pts[i].procs as i64;
            i += 1;
        }
        self.points.push((now.0, base));
        let mut cum = base;
        for p in &pts[i..] {
            cum += p.procs as i64;
            self.points.push((p.time, cum));
        }
    }

    /// Builds the profile as seen at `now` with `free` processors idle and
    /// each `(end, procs)` release adding capacity at its (predicted) end.
    ///
    /// Releases at or before `now` are treated as immediately free (they
    /// can occur transiently while corrections are being applied).
    pub fn new(now: Time, free: u32, releases: &[(Time, u32)]) -> Self {
        let mut deltas: Vec<(i64, i64)> = releases
            .iter()
            .map(|&(t, p)| (t.0.max(now.0), p as i64))
            .collect();
        deltas.sort_unstable();
        let mut points = Vec::with_capacity(deltas.len() + 1);
        points.push((now.0, free as i64));
        for (t, p) in deltas {
            let (last_t, last_free) = *points.last().expect("profile never empty");
            if t == last_t {
                points.last_mut().expect("non-empty").1 = last_free + p;
            } else {
                points.push((t, last_free + p));
            }
        }
        Self { points }
    }

    /// Free processors at instant `t` (clamped to the profile's start).
    pub fn free_at(&self, t: i64) -> i64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Earliest start `s ≥ from` such that at least `procs` processors are
    /// free during the whole interval `[s, s + duration)`.
    ///
    /// Feasibility is guaranteed whenever `procs` does not exceed the
    /// machine size, because capacity is non-decreasing after the last
    /// breakpoint.
    pub fn earliest_start(&self, from: i64, procs: u32, duration: i64) -> i64 {
        let procs = procs as i64;
        debug_assert!(duration > 0, "reservation must have positive duration");
        // Candidate starts: `from` itself, then every later breakpoint —
        // examined in place (this runs once per queued job per scheduling
        // pass, so it must not allocate).
        if self.feasible_at(from, procs, duration) {
            return from;
        }
        for i in 0..self.points.len() {
            let s = self.points[i].0;
            if s <= from {
                continue;
            }
            if self.feasible_at(s, procs, duration) {
                return s;
            }
        }
        // With procs ≤ machine size this is unreachable; degrade to the
        // profile's horizon for robustness.
        self.points
            .last()
            .map(|&(t, _)| t.max(from))
            .unwrap_or(from)
    }

    /// True when at least `procs` processors stay free during the whole
    /// interval `[s, s + duration)`.
    fn feasible_at(&self, s: i64, procs: i64, duration: i64) -> bool {
        if self.free_at(s) < procs {
            return false;
        }
        // Check every breakpoint inside (s, s+duration).
        for &(t, f) in &self.points {
            if t <= s {
                continue;
            }
            if t >= s + duration {
                break;
            }
            if f < procs {
                return false;
            }
        }
        true
    }

    /// Removes `procs` processors during `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the interval would drive capacity negative
    /// — callers must only reserve what [`Profile::earliest_start`]
    /// declared feasible.
    pub fn reserve(&mut self, start: i64, duration: i64, procs: u32) {
        let procs = procs as i64;
        let end = start + duration;
        self.ensure_breakpoint(start);
        self.ensure_breakpoint(end);
        for (t, f) in self.points.iter_mut() {
            if *t >= start && *t < end {
                *f -= procs;
                debug_assert!(*f >= 0, "over-reserved profile at t={t}: {f}");
            }
        }
    }

    fn ensure_breakpoint(&mut self, t: i64) {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(_) => {}
            Err(0) => {
                // Before profile start: extend backwards with the same free
                // count (callers only reserve from `now` on, so this is a
                // defensive path).
                let f = self.points[0].1;
                self.points.insert(0, (t, f));
            }
            Err(i) => {
                let f = self.points[i - 1].1;
                self.points.insert(i, (t, f));
            }
        }
    }

    /// The breakpoints, for inspection in tests.
    pub fn points(&self) -> &[(i64, i64)] {
        &self.points
    }

    /// Capacity of the breakpoint buffer (scratch-reuse accounting).
    pub fn capacity(&self) -> usize {
        self.points.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        // now=0, 2 free; +4 at t=100; +2 at t=50 -> [(0,2),(50,4),(100,8)]
        Profile::new(Time(0), 2, &[(Time(100), 4), (Time(50), 2)])
    }

    #[test]
    fn construction_accumulates_releases() {
        let p = profile();
        assert_eq!(p.points(), &[(0, 2), (50, 4), (100, 8)]);
    }

    #[test]
    fn releases_at_same_instant_merge() {
        let p = Profile::new(Time(0), 0, &[(Time(10), 1), (Time(10), 2)]);
        assert_eq!(p.points(), &[(0, 0), (10, 3)]);
    }

    #[test]
    fn past_releases_count_as_immediate() {
        let p = Profile::new(Time(100), 1, &[(Time(50), 3)]);
        assert_eq!(p.points(), &[(100, 4)]);
    }

    #[test]
    fn free_at_steps() {
        let p = profile();
        assert_eq!(p.free_at(0), 2);
        assert_eq!(p.free_at(49), 2);
        assert_eq!(p.free_at(50), 4);
        assert_eq!(p.free_at(1_000_000), 8);
        assert_eq!(p.free_at(-10), 2); // clamped
    }

    #[test]
    fn earliest_start_immediate_fit() {
        let p = profile();
        assert_eq!(p.earliest_start(0, 2, 1000), 0);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p = profile();
        assert_eq!(p.earliest_start(0, 3, 10), 50);
        assert_eq!(p.earliest_start(0, 8, 10), 100);
    }

    #[test]
    fn earliest_start_respects_from() {
        let p = profile();
        assert_eq!(p.earliest_start(70, 3, 10), 70);
    }

    #[test]
    fn reserve_carves_capacity() {
        let mut p = profile();
        p.reserve(0, 50, 2); // consume both free procs until t=50
        assert_eq!(p.free_at(0), 0);
        assert_eq!(p.free_at(49), 0);
        assert_eq!(p.free_at(50), 4);
        // Now a 1-proc job must wait until 50.
        assert_eq!(p.earliest_start(0, 1, 10), 50);
    }

    #[test]
    fn reserve_inserts_breakpoints() {
        let mut p = profile();
        p.reserve(10, 20, 1); // [10,30)
        assert_eq!(p.free_at(9), 2);
        assert_eq!(p.free_at(10), 1);
        assert_eq!(p.free_at(29), 1);
        assert_eq!(p.free_at(30), 2);
    }

    #[test]
    fn reservation_spanning_releases() {
        let mut p = profile();
        // 4 procs for [50, 150): uses the t=50 capacity of 4 entirely,
        // leaving 4 at t=100.
        assert_eq!(p.earliest_start(0, 4, 100), 50);
        p.reserve(50, 100, 4);
        assert_eq!(p.free_at(50), 0);
        assert_eq!(p.free_at(100), 4);
        assert_eq!(p.free_at(150), 8);
    }

    #[test]
    fn sequential_reservations_stack() {
        let mut p = Profile::new(Time(0), 4, &[]);
        let s1 = p.earliest_start(0, 3, 100);
        p.reserve(s1, 100, 3);
        let s2 = p.earliest_start(0, 3, 100);
        assert_eq!(s1, 0);
        assert_eq!(s2, 100); // must queue behind the first
    }

    #[test]
    fn release_set_aggregates_and_sorts() {
        let mut s = ReleaseSet::new();
        s.add(100, 4);
        s.add(50, 2);
        s.add(100, 3);
        assert_eq!(
            s.points(),
            &[
                ReleasePoint {
                    time: 50,
                    procs: 2,
                    jobs: 1,
                    uniform: 0
                },
                ReleasePoint {
                    time: 100,
                    procs: 7,
                    jobs: 2,
                    uniform: 0
                },
            ]
        );
        let total: u64 = s.points().iter().map(|p| p.procs as u64).sum();
        assert_eq!(total, 9);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn release_set_remove_and_shift() {
        let mut s = ReleaseSet::new();
        s.add(100, 4);
        s.add(100, 3);
        s.remove(100, 4);
        assert_eq!(
            s.points(),
            &[ReleasePoint {
                time: 100,
                procs: 3,
                jobs: 1,
                uniform: 0
            }]
        );
        s.shift(100, 250, 3);
        assert_eq!(
            s.points(),
            &[ReleasePoint {
                time: 250,
                procs: 3,
                jobs: 1,
                uniform: 0
            }]
        );
        s.remove(250, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn rebuild_from_matches_from_scratch_construction() {
        let mut set = ReleaseSet::new();
        set.add(100, 4);
        set.add(50, 2);
        set.add(100, 2);
        let mut incremental = Profile::empty();
        incremental.rebuild_from(Time(0), 2, &set);
        let scratch = Profile::new(Time(0), 2, &[(Time(100), 4), (Time(50), 2), (Time(100), 2)]);
        assert_eq!(incremental, scratch);
    }

    #[test]
    fn rebuild_from_folds_past_releases_into_now() {
        let mut set = ReleaseSet::new();
        set.add(50, 3);
        set.add(200, 1);
        let mut incremental = Profile::empty();
        incremental.rebuild_from(Time(100), 1, &set);
        assert_eq!(incremental.points(), &[(100, 4), (200, 5)]);
        assert_eq!(
            incremental,
            Profile::new(Time(100), 1, &[(Time(50), 3), (Time(200), 1)])
        );
    }

    #[test]
    fn rebuild_reuses_capacity() {
        let mut set = ReleaseSet::new();
        for t in 0..32 {
            set.add(100 + t, 1);
        }
        let mut p = Profile::empty();
        p.rebuild_from(Time(0), 4, &set);
        let cap = {
            p.rebuild_from(Time(0), 4, &set);
            p.points.capacity()
        };
        for _ in 0..100 {
            p.rebuild_from(Time(1), 2, &set);
        }
        assert_eq!(p.points.capacity(), cap, "rebuild must not reallocate");
    }
}
