//! Conservative backfilling \[14\].
//!
//! Every waiting job receives a reservation when it is considered, in
//! arrival order, at the earliest instant where the availability profile
//! can host it; a job starts when its reservation time is *now*. No job
//! can delay any earlier-arrived job, which gives conservative backfilling
//! its no-starvation guarantee — at the price of less aggressive packing
//! than EASY.
//!
//! The paper (§2.1) contrasts this with EASY: "In the former, the job
//! allocation is completely recomputed at each new event (job arrival or
//! job completion) while in the second, the process is purely on-line".
//! We follow that description: each scheduling pass rebuilds the plan from
//! the current predictions. Provided as an extension beyond the paper's
//! two evaluated variants; exercised by the ablation benches.

use crate::job::JobId;
use crate::scheduler::profile::Profile;
use crate::scheduler::{Scheduler, ScratchStats};
use crate::state::SchedulerContext;

/// Conservative backfilling: plan every queued job, start those planned
/// now.
///
/// The availability profile is a reusable scratch buffer refilled from
/// the engine's incrementally maintained release set
/// ([`Profile::rebuild_from`]) — no sort and, once warm, no allocation
/// per pass. Reservations for the tentative plan are carved into the
/// scratch copy, which the next pass overwrites.
#[derive(Debug, Default, Clone)]
pub struct ConservativeScheduler {
    profile: Profile,
    stats: ScratchStats,
}

impl ConservativeScheduler {
    /// A fresh scheduler (cold scratch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch-buffer accounting (test hook for the no-allocation
    /// guarantee).
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Resets the scratch-buffer accounting (buffers stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = ScratchStats::default();
    }
}

impl Scheduler for ConservativeScheduler {
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
        self.stats.passes += 1;
        let caps_before = (self.profile.capacity(), starts.capacity());
        self.profile.rebuild_from(ctx.now, ctx.free, ctx.releases);
        for job in ctx.queue {
            let duration = job.predicted.max(1);
            let start = self.profile.earliest_start(ctx.now.0, job.procs, duration);
            self.profile.reserve(start, duration, job.procs);
            if start == ctx.now.0 {
                starts.push(job.id);
            }
        }
        if (self.profile.capacity(), starts.capacity()) != caps_before {
            self.stats.reallocating_passes += 1;
        }
    }

    fn name(&self) -> String {
        "conservative".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::testutil::{ctx, running, waiting};

    #[test]
    fn starts_everything_on_free_machine() {
        let queue = [waiting(0, 4, 100, 0), waiting(1, 4, 100, 1)];
        let c = ctx(0, 8, &queue, &[]);
        let starts = ConservativeScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn backfills_without_delaying_any_reservation() {
        // Machine 10: 8 busy until t=100. Head needs 8 (reserved at 100).
        // Short 2-proc job (pred 90) fits now without touching the head's
        // reservation.
        let queue = [waiting(2, 8, 200, 1), waiting(3, 2, 90, 2)];
        let running = [running(1, 8, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = ConservativeScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(3)]);
    }

    #[test]
    fn long_backfill_blocked_by_intermediate_reservation() {
        // Unlike EASY, conservative protects *every* queued job. Queue:
        // A (8 procs, reserved at 100), B (8 procs, reserved at 100+200),
        // C (2 procs, pred 250). EASY would check C only against A's
        // shadow... conservative must also not delay B.
        // C on 2 procs: free now=2. Interval [0,250). A reserved [100,300)
        // with 8 procs: free during [100,250) is 10-8-...
        // Profile after A,B reservations: [0,100):2, [100,300):2(10-8),
        // [300,500):2. C fits at 0 on 2 procs? free_at in [0,250) is 2 -> C
        // starts now *because the extra 2 procs happen to stay free*.
        let queue = [
            waiting(0, 8, 200, 0),
            waiting(1, 8, 200, 1),
            waiting(2, 2, 250, 2),
        ];
        let running = [running(9, 8, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = ConservativeScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(2)]);
    }

    #[test]
    fn backfill_that_would_delay_second_reservation_is_refused() {
        // Machine 10: 8 busy until 100. A needs 8 -> [100,300).
        // B needs 4 -> earliest with 4 free: t=300 (during [100,300) only
        // 2 free). C needs 2, pred 400: would hold [0,400) x2 procs; free
        // during [300, 400) would be 10-4(B)-... profile: [300,...) has
        // 10-4=6 free after B, so C fits at 0: starts.
        // Make C need 4 procs instead: free now = 2 -> cannot start now.
        let queue = [
            waiting(0, 8, 200, 0),
            waiting(1, 4, 200, 1),
            waiting(2, 4, 400, 2),
        ];
        let running = [running(9, 8, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = ConservativeScheduler::new().schedule(&c);
        assert!(starts.is_empty());
    }

    #[test]
    fn empty_queue() {
        let c = ctx(0, 8, &[], &[]);
        assert!(ConservativeScheduler::new().schedule(&c).is_empty());
    }

    #[test]
    fn name() {
        assert_eq!(ConservativeScheduler::new().name(), "conservative");
    }
}
