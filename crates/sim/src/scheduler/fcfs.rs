//! First-Come-First-Serve without backfilling.
//!
//! Starts queued jobs strictly in arrival order; the first job that does
//! not fit blocks everything behind it. This is the no-backfilling
//! baseline that EASY improves upon — useful for tests and ablations
//! (predictions cannot help FCFS, since it never looks at running times).

use crate::job::JobId;
use crate::scheduler::Scheduler;
use crate::state::SchedulerContext;

/// Plain FCFS: start the head of the queue while it fits, never skip.
#[derive(Debug, Default, Clone, Copy)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
        let mut free = ctx.free;
        for job in ctx.queue {
            if job.procs > free {
                break;
            }
            free -= job.procs;
            starts.push(job.id);
        }
    }

    fn name(&self) -> String {
        "fcfs".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::testutil::{ctx, running, waiting};

    #[test]
    fn starts_in_order_until_blocked() {
        let queue = [
            waiting(0, 4, 100, 0),
            waiting(1, 4, 100, 1),
            waiting(2, 2, 100, 2),
        ];
        let c = ctx(0, 8, &queue, &[]);
        let starts = FcfsScheduler.schedule(&c);
        // Jobs 0 and 1 fill the machine; job 2 must wait even though it fits
        // behind job 1 — FCFS never skips.
        assert_eq!(starts, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn head_blocks_smaller_followers() {
        let queue = [waiting(0, 8, 100, 0), waiting(1, 1, 100, 1)];
        let running = [running(99, 1, 0, 50)];
        let c = ctx(10, 8, &queue, &running);
        // 7 free, head needs 8 -> nothing starts, not even the 1-proc job.
        assert!(FcfsScheduler.schedule(&c).is_empty());
    }

    #[test]
    fn empty_queue_starts_nothing() {
        let c = ctx(0, 8, &[], &[]);
        assert!(FcfsScheduler.schedule(&c).is_empty());
    }

    #[test]
    fn name() {
        assert_eq!(FcfsScheduler.name(), "fcfs");
    }
}
