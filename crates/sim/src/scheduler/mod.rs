//! Scheduling policies.
//!
//! All policies implement [`Scheduler`]: given a read-only snapshot of the
//! system they return the jobs to start *now*. The engine applies the
//! decision, so policies stay pure and unit-testable.
//!
//! Provided policies:
//!
//! * [`FcfsScheduler`] — First-Come-First-Serve without backfilling;
//! * [`EasyScheduler`] — EASY (aggressive) backfilling \[9\], with either
//!   FCFS or Shortest-Job-Backfilled-First queue ordering during the
//!   backfilling phase (§5.1); EASY-SJBF is the \[24\] variant the paper's
//!   best heuristic triple uses;
//! * [`ConservativeScheduler`] — conservative backfilling \[14\], where every
//!   queued job holds a reservation (provided as an extension; the paper
//!   discusses it in §2.1).

pub mod conservative;
pub mod easy;
pub mod fcfs;
pub mod profile;
pub mod reference;

pub use conservative::ConservativeScheduler;
pub use easy::{BackfillOrder, EasyScheduler};
pub use fcfs::FcfsScheduler;
pub use profile::{ReleasePoint, ReleaseSet};
pub use reference::{ReferenceConservative, ReferenceEasy, ReferenceHetero};

use crate::job::JobId;
use crate::state::SchedulerContext;

/// A scheduling policy: decides which waiting jobs start now.
pub trait Scheduler {
    /// One scheduling pass: appends the ids of queue jobs to start
    /// immediately to `starts` (handed in cleared by the caller, and
    /// reused across passes so warm implementations allocate nothing).
    /// The engine validates capacity and applies the starts.
    ///
    /// Invariants the engine guarantees on `ctx`: the queue is in FCFS
    /// (submit, id) order; every running job's `predicted_end` is `> now`;
    /// `free` equals `machine_size` (the partition size) minus the
    /// processors held by the `running` jobs on `ctx.partition`;
    /// `releases` aggregates exactly those jobs'
    /// `(predicted_end, procs)`. On a multi-partition cluster the engine
    /// calls the scheduler once per partition in first-fit order (see
    /// [`crate::cluster::ClusterSpec`]); implementations that read
    /// `ctx.running` directly must filter it by
    /// [`crate::state::RunningJob::partition`].
    ///
    /// The engine **skips** passes that provably cannot start anything
    /// (empty queue, or zero free processors — every valid job needs at
    /// least one). Implementations must therefore be memoryless across
    /// passes: each call decides from `ctx` alone.
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>);

    /// Allocating convenience wrapper around
    /// [`Scheduler::schedule_into`] (tests, one-off callers).
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<JobId> {
        let mut starts = Vec::new();
        self.schedule_into(ctx, &mut starts);
        starts
    }

    /// Display name used in reports (e.g. `"easy-sjbf"`).
    fn name(&self) -> String;
}

/// Scratch-buffer accounting for a scheduler, in the style of the
/// thread-pool stats: enough to verify that warm passes allocate
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Scheduling passes executed.
    pub passes: u64,
    /// Passes during which some scratch buffer (including the caller's
    /// `starts`) grew its capacity. After warm-up this must stop
    /// increasing — the no-allocation property the engine relies on.
    pub reallocating_passes: u64,
    /// Passes that fell back to a from-scratch computation because the
    /// incremental fast path could not prove byte-identity (EASY only:
    /// a release tie at the reservation's crossing instant).
    pub slow_passes: u64,
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by the scheduler unit tests.
    use crate::job::JobId;
    use crate::scheduler::profile::ReleaseSet;
    use crate::state::{RunningJob, SchedulerContext, WaitingJob};
    use crate::time::Time;

    /// Builds a waiting job with prediction = requested.
    pub fn waiting(id: u32, procs: u32, predicted: i64, submit: i64) -> WaitingJob {
        WaitingJob {
            id: JobId(id),
            procs,
            predicted,
            requested: predicted,
            submit: Time(submit),
            user: 1,
        }
    }

    /// Builds a running job (on partition 0).
    pub fn running(id: u32, procs: u32, start: i64, predicted_end: i64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            procs,
            start: Time(start),
            predicted_end: Time(predicted_end),
            deadline: Time(predicted_end + 100_000),
            user: 1,
            corrections: 0,
            partition: 0,
        }
    }

    /// Builds a context; `free` is derived from machine size minus
    /// running, and the release set from the running slice (leaked —
    /// test-only convenience that keeps call sites borrow-free).
    pub fn ctx<'a>(
        now: i64,
        machine: u32,
        queue: &'a [WaitingJob],
        running: &'a [RunningJob],
    ) -> SchedulerContext<'a> {
        let used: u32 = running.iter().map(|r| r.procs).sum();
        SchedulerContext {
            now: Time(now),
            partition: 0,
            machine_size: machine,
            free: machine - used,
            queue,
            running,
            releases: Box::leak(Box::new(ReleaseSet::from_running(running))),
            shortest_first: Box::leak(
                crate::state::sorted_shortest_first(queue).into_boxed_slice(),
            ),
        }
    }
}
