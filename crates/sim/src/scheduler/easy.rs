//! EASY (aggressive) backfilling, with FCFS or SJBF backfill ordering.
//!
//! EASY \[9\] grants a *reservation* to the first job in the queue that does
//! not fit: the earliest future instant at which enough processors will be
//! free, assuming running jobs end at their predicted times. Any other
//! waiting job may be *backfilled* (started immediately) iff it cannot
//! delay that reservation, i.e. it either completes (according to its
//! prediction) before the reservation's *shadow time*, or it only uses
//! *extra* processors that the reservation does not need (Mu'alem &
//! Feitelson's classic formulation \[14\]).
//!
//! The paper evaluates two orderings of the backfill candidates (§5.1):
//! arrival order (plain EASY) and increasing predicted running time —
//! *Shortest Job Backfilled First* (EASY-SJBF, from Tsafrir et al. \[24\]).
//! SJBF is one ingredient of the winning heuristic triple (§6.3.3).
//!
//! Running times enter this algorithm **only** through the predictions
//! (`WaitingJob::predicted`, `RunningJob::predicted_end`) — this is the
//! lever by which better predictions improve the schedule, and exactly
//! what Figure 2 of the paper illustrates.

use crate::job::JobId;
use crate::scheduler::profile::ReleaseSet;
use crate::scheduler::{Scheduler, ScratchStats};
use crate::state::SchedulerContext;
use crate::time::Time;

/// Order in which backfill candidates are examined (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackfillOrder {
    /// Arrival (FCFS) order — plain EASY.
    #[default]
    Fcfs,
    /// Increasing predicted running time — EASY-SJBF \[24\]. Ties broken by
    /// arrival order, keeping the policy deterministic.
    ShortestFirst,
}

/// The reservation EASY computes for the blocked head job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Earliest instant at which the head job can start, assuming running
    /// jobs end at their predicted ends.
    pub shadow: Time,
    /// Processors that will be free at `shadow` beyond the head job's
    /// requirement — backfill jobs that outlive the shadow may use these.
    pub extra: u32,
}

/// EASY backfilling scheduler.
///
/// Owns reusable scratch buffers (the phase-1 release list and the
/// tie fallback's release vector) so a warm scheduling pass allocates
/// nothing — see [`EasyScheduler::stats`]. SJBF candidates come from
/// the state layer's incrementally maintained shortest-first view
/// ([`SchedulerContext::shortest_first`]), so no per-pass sort either.
#[derive(Debug, Default, Clone)]
pub struct EasyScheduler {
    order: BackfillOrder,
    /// Releases contributed by phase-1 starts of the current pass,
    /// sorted by time.
    phase1: Vec<(i64, u32)>,
    /// Legacy-order release vector for the tie fallback.
    fallback: Vec<(Time, u32)>,
    stats: ScratchStats,
}

impl EasyScheduler {
    /// Plain EASY (FCFS backfill order).
    pub fn new() -> Self {
        Self::default()
    }

    /// EASY with the given backfill ordering.
    pub fn with_order(order: BackfillOrder) -> Self {
        Self {
            order,
            ..Self::default()
        }
    }

    /// EASY-SJBF.
    pub fn sjbf() -> Self {
        Self::with_order(BackfillOrder::ShortestFirst)
    }

    /// The configured backfill ordering.
    pub fn order(&self) -> BackfillOrder {
        self.order
    }

    /// Scratch-buffer accounting (test hook for the no-allocation
    /// guarantee).
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Resets the scratch-buffer accounting (buffers stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = ScratchStats::default();
    }

    /// The head reservation from the incrementally maintained release
    /// set merged with this pass's phase-1 releases, or `None` when the
    /// releases tied at the crossing instant are (possibly)
    /// heterogeneous — there the extra count depends on the legacy sort
    /// order, so the caller must fall back to the from-scratch
    /// computation to stay byte-identical. A *uniform* tie (every
    /// release at the crossing instant frees the same processor count —
    /// see [`crate::scheduler::ReleasePoint::uniform`]) is resolved
    /// here: all permutations of equal releases cross after the same
    /// number of jobs, so the legacy walk's result is computable without
    /// the sort.
    fn fast_reservation(
        &self,
        now: Time,
        free: u32,
        head_procs: u32,
        releases: &ReleaseSet,
    ) -> Option<Reservation> {
        let base = releases.points();
        let extra = &self.phase1;
        let (mut i, mut j) = (0usize, 0usize);
        let mut avail = free;
        while i < base.len() || j < extra.len() {
            let t = match (base.get(i), extra.get(j)) {
                (Some(b), Some(e)) => b.time.min(e.0),
                (Some(b), None) => b.time,
                (None, Some(e)) => e.0,
                (None, None) => unreachable!("loop condition"),
            };
            let avail_before = avail;
            let mut jobs_here = 0u32;
            // The common per-job release size of this instant's group, or
            // 0 when unknown/heterogeneous.
            let mut uniform = u32::MAX;
            if i < base.len() && base[i].time == t {
                avail += base[i].procs;
                jobs_here += base[i].jobs;
                uniform = base[i].uniform;
                i += 1;
            }
            while j < extra.len() && extra[j].0 == t {
                avail += extra[j].1;
                jobs_here += 1;
                uniform = if uniform == u32::MAX || uniform == extra[j].1 {
                    extra[j].1
                } else {
                    0
                };
                j += 1;
            }
            if avail >= head_procs {
                if jobs_here > 1 {
                    if uniform == 0 {
                        // (Possibly) heterogeneous tie at the crossing
                        // instant: the legacy per-release walk may cross
                        // mid-group and report fewer extra processors,
                        // depending on sort order.
                        return None;
                    }
                    // Uniform tie: the legacy walk crosses after
                    // ⌈need/uniform⌉ of the equal releases regardless of
                    // their order.
                    let need = head_procs - avail_before;
                    let k = need.div_ceil(uniform);
                    return Some(Reservation {
                        shadow: Time(t),
                        extra: avail_before + k * uniform - head_procs,
                    });
                }
                return Some(Reservation {
                    shadow: Time(t),
                    extra: avail - head_procs,
                });
            }
        }
        // Releases exhausted without covering the head: the degrade
        // branch is order-free, so the fast path may take it.
        Some(Reservation {
            shadow: now,
            extra: 0,
        })
    }
}

/// Computes the head job's reservation: the shadow time and extra
/// processors, given currently `free` processors and the predicted ends of
/// `releases` (pairs of `(predicted end, processors)`, in any order).
///
/// `releases` must cumulatively free enough processors for the head,
/// which holds whenever `head_procs ≤ machine_size`.
pub fn head_reservation(
    now: Time,
    free: u32,
    head_procs: u32,
    releases: &mut [(Time, u32)],
) -> Reservation {
    debug_assert!(free < head_procs, "head fits now; no reservation needed");
    releases.sort_unstable_by_key(|&(t, _)| t);
    let mut avail = free;
    for &(t, procs) in releases.iter() {
        avail += procs;
        if avail >= head_procs {
            return Reservation {
                shadow: t,
                extra: avail - head_procs,
            };
        }
    }
    // Unreachable for validated inputs (head_procs ≤ machine size means all
    // releases plus free cover it); degrade gracefully for robustness.
    Reservation {
        shadow: now,
        extra: 0,
    }
}

impl Scheduler for EasyScheduler {
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
        self.stats.passes += 1;
        let caps_before = (
            self.phase1.capacity(),
            self.fallback.capacity(),
            starts.capacity(),
        );
        let mut free = ctx.free;

        // Phase 1 — start the head of the queue while it fits (pure FCFS).
        let mut head_idx = 0;
        while head_idx < ctx.queue.len() && ctx.queue[head_idx].procs <= free {
            free -= ctx.queue[head_idx].procs;
            starts.push(ctx.queue[head_idx].id);
            head_idx += 1;
        }
        if head_idx < ctx.queue.len() {
            // Phase 2 — reservation for the blocked head. Jobs just
            // started in phase 1 also release processors at their
            // predicted ends and must be part of the computation; the
            // running jobs' releases come pre-sorted from `ctx.releases`.
            let head = &ctx.queue[head_idx];
            self.phase1.clear();
            self.phase1.extend(
                ctx.queue[..head_idx]
                    .iter()
                    .map(|w| (ctx.now.plus(w.predicted).0, w.procs)),
            );
            self.phase1.sort_unstable_by_key(|&(t, _)| t);
            let reservation = match self.fast_reservation(ctx.now, free, head.procs, ctx.releases) {
                Some(r) => r,
                None => {
                    // Tie at the crossing instant: recompute exactly as
                    // the from-scratch oracle would (legacy vector
                    // order, unstable sort, per-release walk).
                    self.stats.slow_passes += 1;
                    self.fallback.clear();
                    self.fallback.extend(
                        ctx.running
                            .iter()
                            .filter(|r| r.partition == ctx.partition)
                            .map(|r| (r.predicted_end, r.procs)),
                    );
                    self.fallback.extend(
                        ctx.queue[..head_idx]
                            .iter()
                            .map(|w| (ctx.now.plus(w.predicted), w.procs)),
                    );
                    head_reservation(ctx.now, free, head.procs, &mut self.fallback)
                }
            };
            let Reservation { shadow, mut extra } = reservation;

            // Phase 3 — backfill the rest of the queue without delaying
            // the reservation. Candidates are the queue positions after
            // the head; in SJBF order they come from the incrementally
            // maintained shortest-first view (a sorted list restricted
            // to a subset is the sorted subset — identical to sorting
            // the candidates per pass, without the per-pass sort).
            let mut backfill = |job: &crate::state::WaitingJob, free: &mut u32| {
                if job.procs > *free {
                    return;
                }
                let ends_by_shadow = ctx.now.plus(job.predicted) <= shadow;
                if ends_by_shadow {
                    *free -= job.procs;
                    starts.push(job.id);
                } else if job.procs <= extra {
                    extra -= job.procs;
                    *free -= job.procs;
                    starts.push(job.id);
                }
            };
            // Once no processor is free, no candidate can start (every
            // valid job needs at least one), so the remaining iterations
            // are provably no-ops and the walk stops early — identical
            // decisions, less per-pass work on deep queues.
            match self.order {
                BackfillOrder::Fcfs => {
                    for job in &ctx.queue[head_idx + 1..] {
                        if free == 0 {
                            break;
                        }
                        backfill(job, &mut free);
                    }
                }
                BackfillOrder::ShortestFirst => {
                    for &position in ctx.shortest_first {
                        if free == 0 {
                            break;
                        }
                        if (position as usize) <= head_idx {
                            continue;
                        }
                        backfill(&ctx.queue[position as usize], &mut free);
                    }
                }
            }
        }

        let caps_after = (
            self.phase1.capacity(),
            self.fallback.capacity(),
            starts.capacity(),
        );
        if caps_after != caps_before {
            self.stats.reallocating_passes += 1;
        }
    }

    fn name(&self) -> String {
        match self.order {
            BackfillOrder::Fcfs => "easy".into(),
            BackfillOrder::ShortestFirst => "easy-sjbf".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::testutil::{ctx, running, waiting};

    #[test]
    fn reservation_math() {
        // 2 free now; running jobs release 4 procs at t=100 and 2 at t=50.
        let mut releases = vec![(Time(100), 4), (Time(50), 2)];
        let r = head_reservation(Time(0), 2, 6, &mut releases);
        // At t=50: 4 avail (<6). At t=100: 8 avail -> shadow=100, extra=2.
        assert_eq!(r.shadow, Time(100));
        assert_eq!(r.extra, 2);
    }

    #[test]
    fn reservation_uses_earliest_sufficient_instant() {
        let mut releases = vec![(Time(30), 5), (Time(10), 1)];
        let r = head_reservation(Time(0), 0, 1, &mut releases);
        assert_eq!(r.shadow, Time(10));
        assert_eq!(r.extra, 0);
    }

    #[test]
    fn paper_figure2_scenario() {
        // Figure 2 of the paper: machine of (say) 10 procs. Job 1 runs on 6
        // procs until t=100. Queue: job 2 needs 8 procs (blocked), job 3
        // needs 4 and is short -> backfilled at t0.
        let queue = [waiting(2, 8, 200, 1), waiting(3, 4, 90, 2)];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        // Job 3 ends (predicted) at 90 <= shadow 100: backfilled.
        assert_eq!(starts, vec![JobId(3)]);
    }

    #[test]
    fn backfill_rejected_if_it_would_delay_reservation() {
        // Same scenario but job 3 is long (ends after shadow) and the
        // reservation leaves 10-8=2 extra procs < 4 procs.
        let queue = [waiting(2, 8, 200, 1), waiting(3, 4, 150, 2)];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        assert!(starts.is_empty());
    }

    #[test]
    fn long_backfill_allowed_on_extra_processors() {
        // Head needs 6 of 10; shadow releases 6 at t=100, extra = 10-6-2...
        // Setup: 4 free now, running 6 procs end t=100. Head needs 6.
        // At t=100 avail = 10 -> extra = 4. A long 3-proc job fits in extra.
        let queue = [waiting(2, 6, 500, 1), waiting(3, 3, 400, 2)];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(3)]);
    }

    #[test]
    fn extra_is_consumed_by_long_backfills() {
        // extra = 4; two long 3-proc jobs -> only the first backfills.
        let queue = [
            waiting(2, 6, 500, 1),
            waiting(3, 3, 400, 2),
            waiting(4, 3, 400, 3),
        ];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(3)]);
    }

    #[test]
    fn short_backfills_do_not_consume_extra() {
        // Machine 12, 6 procs busy until t=100, head needs 7 -> shadow at
        // t=100 with extra = 12-7 = 5. Two short 2-proc jobs backfill
        // before the shadow without touching extra; a long 2-proc job
        // still fits in the extra afterwards.
        let queue = [
            waiting(2, 7, 500, 1),
            waiting(3, 2, 50, 2),
            waiting(4, 2, 50, 3),
            waiting(5, 2, 400, 4),
        ];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 12, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(3), JobId(4), JobId(5)]);
    }

    #[test]
    fn sjbf_examines_shortest_first() {
        // 2 free procs; candidates in arrival order: long job then short
        // job, both 2 procs, only one can backfill (extra=0, shadow=100).
        // FCFS order backfills neither (first candidate too long, second
        // fits); SJBF backfills the short one.
        let queue = [
            waiting(2, 10, 500, 1),
            waiting(3, 2, 300, 2),
            waiting(4, 2, 80, 3),
        ];
        let running = [running(1, 8, 0, 100)];
        let c = ctx(0, 10, &queue, &running);

        let fcfs_starts = EasyScheduler::new().schedule(&c);
        // FCFS: job 3 rejected (ends at 300 > 100, extra=0 after head
        // needs all 10), job 4 accepted (ends 80 <= 100).
        assert_eq!(fcfs_starts, vec![JobId(4)]);

        let sjbf_starts = EasyScheduler::sjbf().schedule(&c);
        assert_eq!(sjbf_starts, vec![JobId(4)]);
    }

    #[test]
    fn sjbf_outbackfills_fcfs_when_short_job_is_behind() {
        // Machine 10, running job holds 8 until t=100 -> free=2. Head
        // needs 8: shadow=100, extra=10-8=2. Candidate A (arrives first):
        // 2 procs, predicted 300 -> outlives the shadow but fits in the 2
        // extra procs. Candidate B: 2 procs, predicted 50 -> fits before
        // the shadow. Only one of them can start (free=2).
        // FCFS examines A first and gives it the slot; SJBF examines the
        // short job B first — the behavior [24] argues improves packing.
        let queue = [
            waiting(2, 8, 500, 1),
            waiting(3, 2, 300, 2),
            waiting(4, 2, 50, 3),
        ];
        let running = [running(1, 8, 0, 100)];
        let c = ctx(0, 10, &queue, &running);

        let fcfs = EasyScheduler::new().schedule(&c);
        assert_eq!(fcfs, vec![JobId(3)]); // long job grabbed the slot
        let sjbf = EasyScheduler::sjbf().schedule(&c);
        assert_eq!(sjbf, vec![JobId(4)]); // short job preferred
    }

    #[test]
    fn whole_queue_starts_when_machine_is_free() {
        let queue = [
            waiting(0, 3, 10, 0),
            waiting(1, 3, 10, 1),
            waiting(2, 4, 10, 2),
        ];
        let c = ctx(0, 10, &queue, &[]);
        let starts = EasyScheduler::new().schedule(&c);
        assert_eq!(starts.len(), 3);
    }

    #[test]
    fn phase1_starts_feed_reservation() {
        // Machine 4. Queue: job A (2 procs, pred 100), job B (4 procs).
        // A starts now; B's reservation must account for A ending at 100,
        // plus running job ending at 50. At t=50 avail=2+...
        // free after A = 0; releases: running (2 procs @50), A (2 @100).
        // At 50: avail 2 < 4; at 100: avail 4 -> shadow=100.
        // Candidate C (2 procs, pred 40): free=0 -> cannot backfill.
        let queue = [
            waiting(10, 2, 100, 0),
            waiting(11, 4, 100, 1),
            waiting(12, 2, 40, 2),
        ];
        let running = [running(1, 2, 0, 50)];
        let c = ctx(0, 4, &queue, &running);
        let starts = EasyScheduler::new().schedule(&c);
        assert_eq!(starts, vec![JobId(10)]);
    }

    #[test]
    fn names() {
        assert_eq!(EasyScheduler::new().name(), "easy");
        assert_eq!(EasyScheduler::sjbf().name(), "easy-sjbf");
        assert_eq!(EasyScheduler::sjbf().order(), BackfillOrder::ShortestFirst);
    }
}
