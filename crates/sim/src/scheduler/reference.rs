//! Brute-force reference schedulers: rebuild-from-scratch oracles.
//!
//! These are the pre-refactor implementations of EASY and conservative
//! backfilling, kept verbatim: every pass re-collects the running jobs'
//! releases into a fresh vector, re-sorts it, and (for conservative)
//! rebuilds the availability [`Profile`] from scratch. They are
//! deliberately slow and allocation-heavy — their only job is to be
//! *obviously* equivalent to the published algorithms, so the property
//! tests can assert that the production schedulers (incremental release
//! set, reusable scratch, slot-indexed state) produce identical starts
//! on arbitrary queue/running states.
//!
//! Not registered in the experiment registry; use
//! [`crate::scheduler::EasyScheduler`] /
//! [`crate::scheduler::ConservativeScheduler`] for real runs.

use crate::cluster::ClusterSpec;
use crate::job::JobId;
use crate::scheduler::easy::{head_reservation, BackfillOrder, Reservation};
use crate::scheduler::profile::{Profile, ReleaseSet};
use crate::scheduler::Scheduler;
use crate::state::{sorted_shortest_first, RunningJob, SchedulerContext, WaitingJob};
use crate::time::Time;

/// The from-scratch EASY oracle (optionally SJBF-ordered), bit-equal to
/// the pre-refactor `EasyScheduler`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceEasy {
    /// Backfill candidate ordering (§5.1).
    pub order: BackfillOrder,
}

impl ReferenceEasy {
    /// Plain EASY oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// EASY-SJBF oracle.
    pub fn sjbf() -> Self {
        Self {
            order: BackfillOrder::ShortestFirst,
        }
    }
}

impl Scheduler for ReferenceEasy {
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
        let mut free = ctx.free;

        // Phase 1 — start the head of the queue while it fits (pure FCFS).
        let mut head_idx = 0;
        while head_idx < ctx.queue.len() && ctx.queue[head_idx].procs <= free {
            free -= ctx.queue[head_idx].procs;
            starts.push(ctx.queue[head_idx].id);
            head_idx += 1;
        }
        if head_idx >= ctx.queue.len() {
            return; // whole queue started
        }

        // Phase 2 — reservation for the blocked head, rebuilt from
        // scratch: running releases in running-vector order, then the
        // phase-1 starts, unstable-sorted by time.
        let head = &ctx.queue[head_idx];
        let mut releases: Vec<(Time, u32)> = ctx
            .running
            .iter()
            .filter(|r| r.partition == ctx.partition)
            .map(|r: &RunningJob| (r.predicted_end, r.procs))
            .chain(
                ctx.queue[..head_idx]
                    .iter()
                    .map(|w| (ctx.now.plus(w.predicted), w.procs)),
            )
            .collect();
        let Reservation { shadow, mut extra } =
            head_reservation(ctx.now, free, head.procs, &mut releases);

        // Phase 3 — backfill the rest of the queue without delaying the
        // reservation.
        let mut candidates: Vec<&WaitingJob> = ctx.queue[head_idx + 1..].iter().collect();
        if self.order == BackfillOrder::ShortestFirst {
            candidates.sort_by_key(|j| (j.predicted, j.submit, j.id));
        }
        for job in candidates {
            if job.procs > free {
                continue;
            }
            let ends_by_shadow = ctx.now.plus(job.predicted) <= shadow;
            if ends_by_shadow {
                free -= job.procs;
                starts.push(job.id);
            } else if job.procs <= extra {
                extra -= job.procs;
                free -= job.procs;
                starts.push(job.id);
            }
        }
    }

    fn name(&self) -> String {
        match self.order {
            BackfillOrder::Fcfs => "reference-easy".into(),
            BackfillOrder::ShortestFirst => "reference-easy-sjbf".into(),
        }
    }
}

/// The from-scratch conservative oracle, bit-equal to the pre-refactor
/// `ConservativeScheduler`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceConservative;

impl Scheduler for ReferenceConservative {
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, starts: &mut Vec<JobId>) {
        let releases: Vec<(Time, u32)> = ctx
            .running
            .iter()
            .map(|r| (r.predicted_end, r.procs))
            .collect();
        let mut profile = Profile::new(ctx.now, ctx.free, &releases);
        for job in ctx.queue {
            let duration = job.predicted.max(1);
            let start = profile.earliest_start(ctx.now.0, job.procs, duration);
            profile.reserve(start, duration, job.procs);
            if start == ctx.now.0 {
                starts.push(job.id);
            }
        }
    }

    fn name(&self) -> String {
        "reference-conservative".into()
    }
}

/// Brute-force oracle for the engine's heterogeneous routing policy:
/// first-fit by partition order, then per-partition EASY (optionally
/// SJBF) — see [`ClusterSpec`]. Rebuilds every per-partition view from
/// scratch (filtered running vectors, fresh release sets, re-sorted
/// shortest-first), so it is *obviously* the routing loop's semantics;
/// the property tests assert the production engine produces identical
/// `(job, partition)` placements.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceHetero {
    /// Backfill candidate ordering of the per-partition EASY passes.
    pub order: BackfillOrder,
}

impl ReferenceHetero {
    /// First-fit routing over per-partition plain EASY.
    pub fn new() -> Self {
        Self::default()
    }

    /// First-fit routing over per-partition EASY-SJBF.
    pub fn sjbf() -> Self {
        Self {
            order: BackfillOrder::ShortestFirst,
        }
    }

    /// One scheduling instant: the `(job, partition)` placements the
    /// engine's routing loop makes at `now`, given the global FCFS
    /// `queue` and the cluster-wide `running` set (each running job
    /// tagged with its partition).
    pub fn schedule(
        &self,
        now: Time,
        cluster: ClusterSpec,
        queue: &[WaitingJob],
        running: &[RunningJob],
    ) -> Vec<(JobId, u32)> {
        let mut placements = Vec::new();
        let mut remaining: Vec<WaitingJob> = queue.to_vec();
        for (p, part) in cluster.partitions().iter().enumerate() {
            if remaining.is_empty() {
                break;
            }
            let local: Vec<RunningJob> = running
                .iter()
                .filter(|r| r.partition as usize == p)
                .copied()
                .collect();
            let used: u32 = local.iter().map(|r| r.procs).sum();
            let free = part.size - used;
            if free == 0 {
                continue;
            }
            let releases = ReleaseSet::from_running(&local);
            let shortest = sorted_shortest_first(&remaining);
            let ctx = SchedulerContext {
                now,
                partition: p as u32,
                machine_size: part.size,
                free,
                queue: &remaining,
                running: &local,
                releases: &releases,
                shortest_first: &shortest,
            };
            let starts = ReferenceEasy { order: self.order }.schedule(&ctx);
            placements.extend(starts.iter().map(|&id| (id, p as u32)));
            remaining.retain(|w| !starts.contains(&w.id));
        }
        placements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::testutil::{ctx, running, waiting};
    use crate::scheduler::{ConservativeScheduler, EasyScheduler};

    #[test]
    fn oracles_match_production_on_the_figure2_scenario() {
        let queue = [waiting(2, 8, 200, 1), waiting(3, 4, 90, 2)];
        let running = [running(1, 6, 0, 100)];
        let c = ctx(0, 10, &queue, &running);
        assert_eq!(
            ReferenceEasy::new().schedule(&c),
            EasyScheduler::new().schedule(&c)
        );
        assert_eq!(
            ReferenceConservative.schedule(&c),
            ConservativeScheduler::new().schedule(&c)
        );
    }

    #[test]
    fn names() {
        assert_eq!(ReferenceEasy::new().name(), "reference-easy");
        assert_eq!(ReferenceEasy::sjbf().name(), "reference-easy-sjbf");
        assert_eq!(ReferenceConservative.name(), "reference-conservative");
    }
}
