//! Cross-simulation scratch reuse.
//!
//! PR 4 made scheduler passes allocation-free *within* one run; this
//! module extends the property *across* runs. A [`SimArena`] owns every
//! per-run buffer of the engine — the indexed [`SimState`], the event
//! heap, the outcome and prediction tables, the batch and start lists —
//! and [`crate::engine::simulate_in`] re-initializes them in place
//! instead of allocating fresh ones. A worker that keeps one arena
//! across the simulations it executes (the campaign fan-out pattern —
//! see `predictsim-experiments`) therefore allocates ~nothing once the
//! arena is warm; [`ArenaStats`] pins the property the same way
//! [`crate::scheduler::ScratchStats`] pins it for scheduler passes.

use crate::event::EventQueue;
use crate::job::JobId;
use crate::outcome::JobOutcome;
use crate::state::SimState;

/// Run-level scratch accounting, in the style of
/// [`crate::scheduler::ScratchStats`]: enough to verify that warm
/// cross-simulation runs allocate nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Simulation runs executed through this arena.
    pub runs: u64,
    /// Runs during which some arena buffer grew its capacity. After the
    /// arena has seen each workload shape once, this must stop
    /// increasing — the cross-simulation no-allocation property.
    pub reallocating_runs: u64,
}

/// Reusable per-run engine buffers — see the module docs.
///
/// Construct once (per worker, typically), then pass to
/// [`crate::engine::simulate_in`] for every run. A fresh arena behaves
/// identically to the plain [`crate::engine::simulate`] entry points;
/// reuse only retains *capacity*, never state.
#[derive(Debug, Default)]
pub struct SimArena {
    pub(crate) state: SimState,
    pub(crate) events: EventQueue,
    /// Clamped prediction made at each job's submission (by job index).
    pub(crate) initial_predictions: Vec<i64>,
    /// Outcome table written by job index.
    pub(crate) outcomes: Vec<Option<JobOutcome>>,
    /// Event batch being applied (all events at one instant).
    pub(crate) pending: Vec<crate::event::EventKind>,
    /// Start list reused across scheduling passes.
    pub(crate) starts: Vec<JobId>,
    stats: ArenaStats,
}

impl SimArena {
    /// A fresh (cold) arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cross-simulation scratch accounting.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Resets the scratch accounting (buffers stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = ArenaStats::default();
    }

    /// Total capacity (in elements) across every owned buffer.
    pub(crate) fn capacity_signature(&self) -> usize {
        self.state.scratch_capacity()
            + self.events.capacity()
            + self.initial_predictions.capacity()
            + self.outcomes.capacity()
            + self.pending.capacity()
            + self.starts.capacity()
    }

    /// Records one run and whether it grew any buffer.
    pub(crate) fn record_run(&mut self, capacity_before: usize) {
        self.stats.runs += 1;
        if self.capacity_signature() != capacity_before {
            self.stats.reallocating_runs += 1;
        }
    }
}
