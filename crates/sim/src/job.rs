//! Jobs as the simulator sees them (§2.3 of the paper).
//!
//! A job `j` is described by its submission date `r_j`, resource
//! requirement `q_j`, actual running time `p_j` (known only a posteriori),
//! and requested running time `p̃_j` (the user's upper bound, after which
//! the job is killed). The user id links the job to the per-user history
//! features of Table 2.

use predictsim_swf::SwfRecord;

use crate::time::Time;

/// Dense job identifier: the index of the job in the simulation's job
/// vector. Distinct from the (sparse, 1-based) SWF job number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The index as `usize` for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A rigid parallel job (§2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Dense simulation id.
    pub id: JobId,
    /// Submission (release) date `r_j`.
    pub submit: Time,
    /// Actual running time `p_j`, seconds (> 0).
    pub run: i64,
    /// Requested running time `p̃_j`, seconds — the kill bound (≥ 1).
    pub requested: i64,
    /// Resource requirement `q_j` (processor count, ≥ 1).
    pub procs: u32,
    /// Submitting user, for the per-user features of Table 2.
    ///
    /// This is the *raw* id from the source trace (SWF user id + 1, a
    /// hash for cloud traces, …) — arbitrary and possibly sparse. It is
    /// what appears in outcomes and SWF round trips.
    pub user: u32,
    /// Dense interned user index in `0..U`, assigned once at load time
    /// by [`intern_users`] in first-appearance order. Every per-event
    /// user lookup (running index, prediction histories) indexes flat
    /// slabs with this, never hashing `user`.
    pub user_ix: u32,
    /// Original SWF job number, for traceability back to the log.
    pub swf_id: u64,
}

impl Job {
    /// The running time the platform will actually grant: `min(p, p̃)` —
    /// jobs exceeding their request are killed at the request (§2.1).
    #[inline]
    pub fn granted_run(&self) -> i64 {
        self.run.min(self.requested)
    }

    /// Whether the platform kills this job at its requested time.
    #[inline]
    pub fn is_killed(&self) -> bool {
        self.run > self.requested
    }

    /// Job *area* `p · q`, the quantity the Table 3 weighting factors and
    /// the E-Loss weight are built from.
    #[inline]
    pub fn area(&self) -> f64 {
        self.run as f64 * self.procs as f64
    }

    /// Validates the structural invariants the engine relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.run <= 0 {
            return Err(format!("{}: non-positive run time {}", self.id, self.run));
        }
        if self.requested <= 0 {
            return Err(format!(
                "{}: non-positive requested time {}",
                self.id, self.requested
            ));
        }
        if self.procs == 0 {
            return Err(format!("{}: zero processors", self.id));
        }
        Ok(())
    }
}

/// Error converting an SWF record into a [`Job`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobConversionError {
    /// The SWF job number of the offending record.
    pub swf_id: u64,
    /// What was missing or invalid.
    pub reason: String,
}

impl std::fmt::Display for JobConversionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF job {}: {}", self.swf_id, self.reason)
    }
}

impl std::error::Error for JobConversionError {}

/// Converts a cleaned SWF record into a simulator job with dense id `id`.
///
/// Requires the record to be simulatable (positive run time and processor
/// count — see `predictsim_swf::filter`); a missing requested time falls
/// back to the run time, and a missing user id maps to a synthetic
/// "unknown" user 0 shared by all such records.
pub fn job_from_swf(id: JobId, r: &SwfRecord) -> Result<Job, JobConversionError> {
    let run = r.run_time_opt().ok_or_else(|| JobConversionError {
        swf_id: r.job_id,
        reason: "missing run time".into(),
    })?;
    let procs = r.effective_procs().ok_or_else(|| JobConversionError {
        swf_id: r.job_id,
        reason: "missing processor count".into(),
    })?;
    let requested = r.effective_requested_time().unwrap_or(run).max(run);
    let user = r.user_id_opt().map(|u| u as u32 + 1).unwrap_or(0);
    Ok(Job {
        id,
        submit: Time(r.submit_time),
        run,
        requested,
        procs: procs as u32,
        user,
        user_ix: 0, // assigned by `intern_users` once the full set is known
        swf_id: r.job_id,
    })
}

/// Converts a whole cleaned record slice, assigning dense ids in order
/// and interning user ids (see [`intern_users`]).
pub fn jobs_from_swf(records: &[SwfRecord]) -> Result<Vec<Job>, JobConversionError> {
    let mut jobs: Vec<Job> = records
        .iter()
        .enumerate()
        .map(|(i, r)| job_from_swf(JobId(i as u32), r))
        .collect::<Result<_, _>>()?;
    intern_users(&mut jobs);
    Ok(jobs)
}

/// Interns the (arbitrary, possibly sparse) raw `user` ids of `jobs`
/// into dense `user_ix` indices `0..U`, assigned in first-appearance
/// order, and returns `U` (the number of distinct users).
///
/// Every workload loader calls this exactly once after the final job
/// order is fixed, so equal job sequences always get equal interned
/// indices regardless of which source produced them.
pub fn intern_users(jobs: &mut [Job]) -> u32 {
    let mut interned: crate::hash::FxHashMap<u32, u32> =
        crate::hash::FxHashMap::with_capacity_and_hasher(1024, Default::default());
    for job in jobs.iter_mut() {
        let next = interned.len() as u32;
        job.user_ix = *interned.entry(job.user).or_insert(next);
    }
    interned.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_swf::MISSING;

    fn swf(run: i64, req_procs: i64, req_time: i64, user: i64) -> SwfRecord {
        let mut r = SwfRecord::empty(77);
        r.submit_time = 500;
        r.run_time = run;
        r.requested_procs = req_procs;
        r.requested_time = req_time;
        r.user_id = user;
        r
    }

    #[test]
    fn conversion_maps_fields() {
        let j = job_from_swf(JobId(3), &swf(100, 8, 200, 4)).unwrap();
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.submit, Time(500));
        assert_eq!(j.run, 100);
        assert_eq!(j.requested, 200);
        assert_eq!(j.procs, 8);
        assert_eq!(j.user, 5); // user ids are shifted by one
        assert_eq!(j.swf_id, 77);
    }

    #[test]
    fn missing_requested_time_falls_back_to_run() {
        let j = job_from_swf(JobId(0), &swf(100, 8, MISSING, 4)).unwrap();
        assert_eq!(j.requested, 100);
    }

    #[test]
    fn inverted_estimate_is_raised() {
        let j = job_from_swf(JobId(0), &swf(100, 8, 10, 4)).unwrap();
        assert_eq!(j.requested, 100);
        assert!(!j.is_killed());
    }

    #[test]
    fn missing_user_becomes_zero() {
        let j = job_from_swf(JobId(0), &swf(100, 8, 200, MISSING)).unwrap();
        assert_eq!(j.user, 0);
    }

    #[test]
    fn missing_run_time_is_an_error() {
        let err = job_from_swf(JobId(0), &swf(MISSING, 8, 200, 4)).unwrap_err();
        assert!(err.reason.contains("run time"));
        assert_eq!(err.swf_id, 77);
    }

    #[test]
    fn granted_run_and_kill_flag() {
        let mut j = job_from_swf(JobId(0), &swf(100, 1, 200, 1)).unwrap();
        assert_eq!(j.granted_run(), 100);
        assert!(!j.is_killed());
        j.run = 500; // exceeds requested=200
        assert_eq!(j.granted_run(), 200);
        assert!(j.is_killed());
    }

    #[test]
    fn validate_rejects_degenerate_jobs() {
        let mut j = job_from_swf(JobId(0), &swf(100, 8, 200, 4)).unwrap();
        assert!(j.validate().is_ok());
        j.procs = 0;
        assert!(j.validate().is_err());
        j.procs = 1;
        j.run = 0;
        assert!(j.validate().is_err());
    }

    #[test]
    fn batch_conversion_assigns_dense_ids() {
        let records = vec![swf(10, 1, 20, 1), swf(30, 2, 40, 2)];
        let jobs = jobs_from_swf(&records).unwrap();
        assert_eq!(jobs[0].id, JobId(0));
        assert_eq!(jobs[1].id, JobId(1));
        assert_eq!(jobs[1].run, 30);
    }

    #[test]
    fn interning_is_first_appearance_dense() {
        let records = vec![
            swf(10, 1, 20, 900_000),
            swf(10, 1, 20, 3),
            swf(10, 1, 20, 900_000),
            swf(10, 1, 20, MISSING),
            swf(10, 1, 20, 3),
        ];
        let jobs = jobs_from_swf(&records).unwrap();
        let ixs: Vec<u32> = jobs.iter().map(|j| j.user_ix).collect();
        assert_eq!(ixs, [0, 1, 0, 2, 1]);
        assert_eq!(jobs[0].user, 900_001, "raw ids survive interning");
        assert_eq!(jobs[3].user, 0, "missing user keeps the sentinel");
    }

    #[test]
    fn intern_users_returns_distinct_count() {
        let records = vec![swf(10, 1, 20, 5), swf(10, 1, 20, 5), swf(10, 1, 20, 9)];
        let mut jobs = jobs_from_swf(&records).unwrap();
        assert_eq!(intern_users(&mut jobs), 2);
        assert_eq!(intern_users(&mut []), 0);
    }

    #[test]
    fn area() {
        let j = job_from_swf(JobId(0), &swf(100, 8, 200, 4)).unwrap();
        assert_eq!(j.area(), 800.0);
    }
}
