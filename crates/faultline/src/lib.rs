//! # predictsim-faultline
//!
//! Seeded, **deterministic** fault injection for the IO surfaces of the
//! reproduction: the disk cache (`experiments::cache`), the serve
//! socket loop, the SWF/CSV trace readers, and the simulation worker
//! cells. Production code asks this crate — at named *injection sites*
//! such as `"cache.write"` or `"cell.panic"` — whether a fault should
//! fire *now*; with no plan installed every query is a zero-cost
//! passthrough (one relaxed atomic load), so hot paths and golden pins
//! are untouched.
//!
//! A *fault plan* maps site names to a firing rule:
//!
//! * `p` — firing probability per call (default `1.0`);
//! * `max` — cap on total fires for the site (default unlimited);
//! * `after` — number of initial calls to leave untouched (default `0`);
//! * `kind` — `transient` (surfaced as [`std::io::ErrorKind::Interrupted`],
//!   retryable) or `hard` (surfaced as a generic IO error, not
//!   retryable). Default `transient`.
//!
//! Decisions are a pure function of `(plan seed, site name, per-site
//! call index)` — no wall clock, no global RNG — so a plan replays
//! identically across runs, threads notwithstanding (each site call
//! atomically takes the next index). Two runs with the same plan and
//! the same per-site call sequences fire the same faults.
//!
//! Plans come from the `REPRO_FAULTS` environment variable (parsed
//! once, on first query) or from [`FaultPlan::builder`] + [`install`]
//! in tests. Grammar, comma-separated clauses:
//!
//! ```text
//! REPRO_FAULTS="seed=42,cache.write:p=0.05:max=3,cell.panic:p=1:max=1,swf.read:p=0.01:kind=transient"
//! ```
//!
//! Tests that install a plan affect the *whole process*; keep such
//! tests in their own integration-test binary and serialize them with
//! [`with_plan`], which holds a process-wide lock and uninstalls the
//! plan (restoring passthrough) when the closure finishes — even by
//! panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

// ---------------------------------------------------------------------------
// Plan description
// ---------------------------------------------------------------------------

/// How a fired fault is surfaced to the injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A retryable hiccup: IO sites surface it as
    /// [`std::io::ErrorKind::Interrupted`]; hardened callers absorb it
    /// with a bounded retry.
    Transient,
    /// A persistent failure: IO sites surface it as a generic IO error.
    /// Hardened callers degrade (e.g. the disk cache falls back to
    /// memory-only) rather than retry forever.
    Hard,
}

/// Firing rule for one injection site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that any given call fires.
    pub p: f64,
    /// Cap on the total number of fires (`None` = unlimited).
    pub max: Option<u64>,
    /// Number of initial calls that never fire.
    pub after: u64,
    /// How a fire is surfaced.
    pub kind: FaultKind,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            p: 1.0,
            max: None,
            after: 0,
            kind: FaultKind::Transient,
        }
    }
}

/// A complete fault plan: a seed plus per-site firing rules.
///
/// Build one with [`FaultPlan::parse`] (the `REPRO_FAULTS` grammar) or
/// [`FaultPlan::builder`], then activate it with [`install`] or
/// [`with_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<String, FaultSpec>,
}

impl FaultPlan {
    /// Start building a plan in code (the test-side API).
    pub fn builder() -> PlanBuilder {
        PlanBuilder {
            plan: FaultPlan {
                seed: 0,
                sites: BTreeMap::new(),
            },
        }
    }

    /// Parse the `REPRO_FAULTS` grammar (see the crate docs). An empty
    /// (or all-whitespace) string yields an empty plan, which
    /// [`install`] treats as "no faults".
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan {
            seed: 0,
            sites: BTreeMap::new(),
        };
        for clause in text.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| PlanError(format!("bad seed `{seed}`")))?;
                continue;
            }
            let mut parts = clause.split(':');
            let site = parts.next().expect("split yields at least one part").trim();
            if site.is_empty() || site.contains('=') {
                return Err(PlanError(format!(
                    "bad clause `{clause}`: expected `site[:key=value...]` or `seed=N`"
                )));
            }
            let mut spec = FaultSpec::default();
            for opt in parts {
                let opt = opt.trim();
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| PlanError(format!("bad option `{opt}` in `{clause}`")))?;
                match key.trim() {
                    "p" => {
                        let p: f64 = value
                            .trim()
                            .parse()
                            .map_err(|_| PlanError(format!("bad p `{value}` in `{clause}`")))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(PlanError(format!(
                                "p out of range [0,1]: `{value}` in `{clause}`"
                            )));
                        }
                        spec.p = p;
                    }
                    "max" => {
                        spec.max =
                            Some(value.trim().parse().map_err(|_| {
                                PlanError(format!("bad max `{value}` in `{clause}`"))
                            })?);
                    }
                    "after" => {
                        spec.after = value
                            .trim()
                            .parse()
                            .map_err(|_| PlanError(format!("bad after `{value}` in `{clause}`")))?;
                    }
                    "kind" => {
                        spec.kind = match value.trim() {
                            "transient" => FaultKind::Transient,
                            "hard" => FaultKind::Hard,
                            other => {
                                return Err(PlanError(format!(
                                    "bad kind `{other}` in `{clause}` (transient|hard)"
                                )))
                            }
                        };
                    }
                    other => {
                        return Err(PlanError(format!(
                            "unknown option `{other}` in `{clause}` (p|max|after|kind)"
                        )));
                    }
                }
            }
            plan.sites.insert(site.to_string(), spec);
        }
        Ok(plan)
    }

    /// True when the plan names no sites (installing it is a no-op).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// One-line human summary, used by the `repro` banner.
    pub fn summary(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for (site, spec) in &self.sites {
            out.push_str(&format!(" {site}(p={}", spec.p));
            if let Some(max) = spec.max {
                out.push_str(&format!(",max={max}"));
            }
            if spec.after > 0 {
                out.push_str(&format!(",after={}", spec.after));
            }
            if spec.kind == FaultKind::Hard {
                out.push_str(",hard");
            }
            out.push(')');
        }
        out
    }
}

/// Builder for [`FaultPlan`] (test-side counterpart of the
/// `REPRO_FAULTS` grammar).
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: FaultPlan,
}

impl PlanBuilder {
    /// Set the plan seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.plan.seed = seed;
        self
    }

    /// Add a site with an explicit spec.
    pub fn site(mut self, name: &str, spec: FaultSpec) -> Self {
        self.plan.sites.insert(name.to_string(), spec);
        self
    }

    /// Add a site firing with probability `p`, transient kind, no cap.
    pub fn transient(self, name: &str, p: f64) -> Self {
        self.site(
            name,
            FaultSpec {
                p,
                ..FaultSpec::default()
            },
        )
    }

    /// Add a site firing with probability `p`, hard kind, no cap.
    pub fn hard(self, name: &str, p: f64) -> Self {
        self.site(
            name,
            FaultSpec {
                p,
                kind: FaultKind::Hard,
                ..FaultSpec::default()
            },
        )
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

// ---------------------------------------------------------------------------
// Active plan (global state)
// ---------------------------------------------------------------------------

struct ActiveSite {
    name: String,
    spec: FaultSpec,
    calls: AtomicU64,
    fired: AtomicU64,
}

struct ActivePlan {
    seed: u64,
    // Linear scan: plans name a handful of sites and lookups are off
    // the zero-fault fast path anyway.
    sites: Vec<ActiveSite>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn plan_slot() -> &'static Mutex<Option<Arc<ActivePlan>>> {
    static SLOT: Mutex<Option<Arc<ActivePlan>>> = Mutex::new(None);
    &SLOT
}

fn current_plan() -> Option<Arc<ActivePlan>> {
    ENV_INIT.call_once(|| {
        if let Ok(text) = std::env::var("REPRO_FAULTS") {
            match FaultPlan::parse(&text) {
                Ok(plan) => install(Some(plan)),
                Err(err) => {
                    // A typo'd plan silently running fault-free would be
                    // worse than noise on stderr.
                    eprintln!("warning: ignoring REPRO_FAULTS: {err}");
                }
            }
        }
    });
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    plan_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Install `plan` process-wide (replacing any previous plan, resetting
/// all per-site counters); `None` — or an empty plan — restores the
/// zero-cost passthrough. Prefer [`with_plan`] in tests.
pub fn install(plan: Option<FaultPlan>) {
    let active = plan.filter(|p| !p.is_empty()).map(|p| {
        Arc::new(ActivePlan {
            seed: p.seed,
            sites: p
                .sites
                .into_iter()
                .map(|(name, spec)| ActiveSite {
                    name,
                    spec,
                    calls: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect(),
        })
    });
    let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(active.is_some(), Ordering::Relaxed);
    *slot = active;
}

/// True when a non-empty fault plan is active. One relaxed atomic load
/// (plus a one-time `REPRO_FAULTS` parse on the very first call).
pub fn enabled() -> bool {
    if !ENV_INIT.is_completed() {
        return current_plan().is_some();
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` with `plan` installed, serialized against every other
/// `with_plan` caller in the process, and uninstall the plan afterwards
/// — even if `f` panics. This is the only safe way to use faults from
/// tests that share a binary.
pub fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            install(None);
        }
    }
    let _uninstall = Uninstall;
    install(Some(plan));
    f()
}

/// Fired-fault counts per site, for assertions and the `repro` banner.
/// Empty when no plan is active.
pub fn fired_counts() -> Vec<(String, u64)> {
    match current_plan() {
        None => Vec::new(),
        Some(plan) => plan
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.fired.load(Ordering::Relaxed)))
            .collect(),
    }
}

/// One-line description of the active plan for log banners, `None` in
/// passthrough mode.
pub fn active_summary() -> Option<String> {
    let plan = current_plan()?;
    let mut out = format!("seed={}", plan.seed);
    for site in &plan.sites {
        out.push_str(&format!(" {}(p={})", site.name, site.spec.p));
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Decisions
// ---------------------------------------------------------------------------

fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    // 53 high-entropy bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn roll(plan: &ActivePlan, site: &ActiveSite) -> Option<FaultKind> {
    let call = site.calls.fetch_add(1, Ordering::Relaxed);
    if call < site.spec.after {
        return None;
    }
    let bits = splitmix64(plan.seed ^ fnv1a(&site.name) ^ call.wrapping_add(1));
    if unit(bits) >= site.spec.p {
        return None;
    }
    if let Some(max) = site.spec.max {
        // Exact cap even under concurrent callers.
        if site
            .fired
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fired| {
                (fired < max).then_some(fired + 1)
            })
            .is_err()
        {
            return None;
        }
    } else {
        site.fired.fetch_add(1, Ordering::Relaxed);
    }
    Some(site.spec.kind)
}

/// Decide whether `site` fires on this call, consuming one call index.
/// Always `None` in passthrough mode or for sites the plan doesn't
/// name.
pub fn fault_at(site: &str) -> Option<FaultKind> {
    let plan = current_plan()?;
    let active = plan.sites.iter().find(|s| s.name == site)?;
    roll(&plan, active)
}

/// Like [`fault_at`], mapped to an [`io::Error`]: transient faults
/// become [`io::ErrorKind::Interrupted`] (retryable), hard faults a
/// generic error. `None` means "proceed with the real operation".
pub fn io_fault(site: &str) -> Option<io::Error> {
    match fault_at(site)? {
        FaultKind::Transient => Some(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient fault at {site}"),
        )),
        FaultKind::Hard => Some(io::Error::other(format!("injected hard fault at {site}"))),
    }
}

/// Panic (deterministically) if `site` fires — the poison-cell
/// injection used to exercise `catch_unwind` isolation in the serve
/// worker pool and campaign fan-out.
pub fn maybe_panic(site: &str) {
    if fault_at(site).is_some() {
        panic!("injected panic at fault site {site}");
    }
}

// ---------------------------------------------------------------------------
// FaultyRead
// ---------------------------------------------------------------------------

/// A [`Read`] adapter that consults a fault site on every `read` call.
///
/// * transient fire → the call returns [`io::ErrorKind::Interrupted`]
///   without consuming input (standard-library buffered readers retry
///   this transparently, which is exactly the property the hardened
///   trace readers rely on);
/// * hard fire → the stream is *truncated mid-record*: the call
///   delivers at most half of what the inner reader produced, and every
///   later call reports end-of-file.
///
/// In passthrough mode the adapter forwards straight to the inner
/// reader.
pub struct FaultyRead<R> {
    inner: R,
    site: &'static str,
    truncated: bool,
}

impl<R: Read> FaultyRead<R> {
    /// Wrap `inner`, consulting `site` on every read.
    pub fn new(inner: R, site: &'static str) -> Self {
        FaultyRead {
            inner,
            site,
            truncated: false,
        }
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.truncated {
            return Ok(0);
        }
        if enabled() {
            match fault_at(self.site) {
                Some(FaultKind::Transient) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("injected transient fault at {}", self.site),
                    ));
                }
                Some(FaultKind::Hard) => {
                    self.truncated = true;
                    let n = self.inner.read(buf)?;
                    return Ok(n / 2);
                }
                None => {}
            }
        }
        self.inner.read(buf)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42, cache.write:p=0.05:max=3:kind=transient ,cell.panic:max=1, index.flush:p=0.5:after=2:kind=hard",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.sites["cache.write"],
            FaultSpec {
                p: 0.05,
                max: Some(3),
                after: 0,
                kind: FaultKind::Transient
            }
        );
        assert_eq!(
            plan.sites["cell.panic"],
            FaultSpec {
                p: 1.0,
                max: Some(1),
                after: 0,
                kind: FaultKind::Transient
            }
        );
        assert_eq!(
            plan.sites["index.flush"],
            FaultSpec {
                p: 0.5,
                max: None,
                after: 2,
                kind: FaultKind::Hard
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "seed=x",
            "site:p=nope",
            "site:p=1.5",
            "site:frobnicate=1",
            "site:kind=soft",
            "site:p",
            "=5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn passthrough_without_plan() {
        // Note: other tests in this binary install plans via with_plan,
        // which serializes on a lock and uninstalls afterwards; outside
        // it, every query must be inert.
        with_plan(FaultPlan::builder().build(), || {
            assert!(fault_at("cache.write").is_none());
            assert!(io_fault("cache.write").is_none());
            maybe_panic("cell.panic");
            assert!(fired_counts().is_empty());
            assert!(active_summary().is_none());
        });
    }

    #[test]
    fn deterministic_across_installs() {
        let plan = || {
            FaultPlan::builder()
                .seed(7)
                .site(
                    "s",
                    FaultSpec {
                        p: 0.3,
                        ..FaultSpec::default()
                    },
                )
                .build()
        };
        let run = || {
            with_plan(plan(), || {
                (0..200)
                    .map(|_| fault_at("s").is_some())
                    .collect::<Vec<_>>()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let fires = a.iter().filter(|f| **f).count();
        // p = 0.3 over 200 calls: loose bounds, deterministic anyway.
        assert!((30..=90).contains(&fires), "unexpected fire count {fires}");
    }

    #[test]
    fn seed_changes_decisions() {
        let decisions = |seed| {
            let plan = FaultPlan::builder()
                .seed(seed)
                .site(
                    "s",
                    FaultSpec {
                        p: 0.5,
                        ..FaultSpec::default()
                    },
                )
                .build();
            with_plan(plan, || {
                (0..64).map(|_| fault_at("s").is_some()).collect::<Vec<_>>()
            })
        };
        assert_ne!(decisions(1), decisions(2));
    }

    #[test]
    fn max_and_after_are_honored() {
        let plan = FaultPlan::builder()
            .seed(0)
            .site(
                "s",
                FaultSpec {
                    p: 1.0,
                    max: Some(3),
                    after: 5,
                    kind: FaultKind::Hard,
                },
            )
            .build();
        with_plan(plan, || {
            let fires: Vec<bool> = (0..12).map(|_| fault_at("s").is_some()).collect();
            assert_eq!(&fires[..5], &[false; 5], "first `after` calls must pass");
            assert_eq!(fires.iter().filter(|f| **f).count(), 3, "capped at max");
            assert_eq!(fired_counts(), vec![("s".to_string(), 3)]);
        });
    }

    #[test]
    fn io_fault_kinds_map_to_errorkind() {
        let plan = FaultPlan::builder()
            .seed(0)
            .site(
                "t",
                FaultSpec {
                    max: Some(1),
                    ..FaultSpec::default()
                },
            )
            .site(
                "h",
                FaultSpec {
                    kind: FaultKind::Hard,
                    max: Some(1),
                    ..FaultSpec::default()
                },
            )
            .build();
        with_plan(plan, || {
            assert_eq!(io_fault("t").unwrap().kind(), io::ErrorKind::Interrupted);
            let hard = io_fault("h").unwrap();
            assert_ne!(hard.kind(), io::ErrorKind::Interrupted);
            assert!(io_fault("t").is_none(), "max=1 exhausted");
        });
    }

    #[test]
    fn maybe_panic_fires() {
        let plan = FaultPlan::builder()
            .site(
                "boom",
                FaultSpec {
                    max: Some(1),
                    ..FaultSpec::default()
                },
            )
            .build();
        with_plan(plan, || {
            let err = std::panic::catch_unwind(|| maybe_panic("boom")).unwrap_err();
            let text = err.downcast_ref::<String>().expect("panic payload");
            assert!(text.contains("boom"), "{text}");
            maybe_panic("boom"); // exhausted → no panic
        });
    }

    #[test]
    fn faulty_read_transient_is_transparent_under_bufreader() {
        let data = b"line one\nline two\nline three\n";
        let plan = FaultPlan::builder()
            .seed(3)
            .site(
                "test.read",
                FaultSpec {
                    p: 0.7,
                    ..FaultSpec::default()
                },
            )
            .build();
        let lines = with_plan(plan, || {
            // Tiny capacity so the reader takes many inner reads.
            let faulty = FaultyRead::new(&data[..], "test.read");
            let reader = BufReader::with_capacity(4, faulty);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });
        assert_eq!(lines, vec!["line one", "line two", "line three"]);
    }

    #[test]
    fn faulty_read_hard_truncates_to_eof() {
        let data = vec![0xABu8; 1024];
        let plan = FaultPlan::builder()
            .site(
                "test.trunc",
                FaultSpec {
                    kind: FaultKind::Hard,
                    ..FaultSpec::default()
                },
            )
            .build();
        let total = with_plan(plan, || {
            let mut faulty = FaultyRead::new(&data[..], "test.trunc");
            let mut out = Vec::new();
            faulty.read_to_end(&mut out).unwrap();
            out.len()
        });
        assert!(total < data.len(), "stream must be truncated, got {total}");
        // And EOF is sticky.
    }

    #[test]
    fn with_plan_uninstalls_on_panic() {
        let plan = FaultPlan::builder().transient("s", 1.0).build();
        let _ = std::panic::catch_unwind(|| {
            with_plan(plan, || panic!("boom"));
        });
        assert!(
            fault_at("s").is_none(),
            "plan must be gone after panicking with_plan"
        );
    }

    #[test]
    fn summary_mentions_sites() {
        let plan =
            FaultPlan::parse("seed=9,cache.write:p=0.25:max=2,cell.panic:kind=hard").unwrap();
        let summary = plan.summary();
        assert!(summary.contains("seed=9"), "{summary}");
        assert!(summary.contains("cache.write(p=0.25,max=2)"), "{summary}");
        assert!(summary.contains("cell.panic(p=1,hard)"), "{summary}");
    }
}
