//! Empirical cumulative distribution functions.
//!
//! The paper's Figures 4 and 5 plot ECDFs of prediction errors and of
//! predicted values on the Curie log. [`Ecdf`] supports exact evaluation at
//! arbitrary points, quantile queries, and uniform sampling of the curve for
//! plotting/export.

/// An empirical cumulative distribution function built from a sample.
///
/// Construction sorts a copy of the sample (`O(n log n)`); evaluation is a
/// binary search (`O(log n)`).
///
/// # Examples
///
/// ```
/// use predictsim_metrics::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(2.0), 0.5);   // two of four samples are <= 2.0
/// assert_eq!(e.eval(10.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of `sample`. Non-finite values are discarded so the
    /// distribution stays well defined even on noisy simulator output.
    pub fn new(mut sample: Vec<f64>) -> Self {
        sample.retain(|x| x.is_finite());
        sample.sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered"));
        Self { sorted: sample }
    }

    /// Number of (finite) points backing the distribution.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample was empty (or all non-finite).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples ≤ `x`. Returns 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the number of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) using the "lower value" convention:
    /// the smallest sample value `v` with `F(v) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&q), "quantile order {q} outside [0,1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Minimum sample value. Panics on an empty sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty ECDF")
    }

    /// Maximum sample value. Panics on an empty sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty ECDF")
    }

    /// Samples the curve at `n` points evenly spaced over `[lo, hi]`,
    /// returning `(x, F(x))` pairs — the series format used to export
    /// Figures 4 and 5.
    pub fn curve(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two curve points");
        assert!(hi >= lo, "curve range is inverted");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Access to the underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ecdf_is_zero_everywhere() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1e18), 0.0);
    }

    #[test]
    fn eval_matches_hand_computation() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.9), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(2.5), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(1.5), 0.5);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
    }

    #[test]
    fn curve_is_monotone_and_spans_01() {
        let e = Ecdf::new(vec![5.0, 10.0, 15.0]);
        let c = e.curve(0.0, 20.0, 21);
        assert_eq!(c.len(), 21);
        assert_eq!(c[0].1, 0.0);
        assert_eq!(c[20].1, 1.0);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "ECDF curve must be nondecreasing");
        }
    }

    #[test]
    #[should_panic(expected = "quantile of empty ECDF")]
    fn quantile_of_empty_panics() {
        Ecdf::new(vec![]).quantile(0.5);
    }
}
