//! Pearson's correlation coefficient.
//!
//! §6.3.2 of the paper measures how heuristic-triple performance correlates
//! across workload logs, reporting a mean coefficient of 0.26 (min 0.01, max
//! 0.80) over all log pairs, and concludes the correlation is weak — hence
//! the need for the cross-validated triple selection of §6.3.3.

/// Pearson's correlation coefficient between two equal-length samples.
///
/// Returns `None` when the coefficient is undefined: fewer than two points,
/// or zero variance in either sample.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use predictsim_metrics::pearson_correlation;
///
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Mean/min/max of the pairwise Pearson coefficients between the columns of
/// a matrix of observations, mirroring the §6.3.2 aggregate ("with a mean of
/// 0.26 (min: 0.01, max: 0.80)").
///
/// `columns[k]` holds the observations of series `k` (e.g. the AVEbsld of
/// every heuristic triple on log `k`); all columns must have equal length.
/// Pairs with undefined correlation are skipped. Coefficients are aggregated
/// in absolute value, matching the paper's interest in *strength* of
/// association. Returns `None` if no pair yields a defined coefficient.
pub fn pairwise_correlation_summary(columns: &[Vec<f64>]) -> Option<(f64, f64, f64)> {
    let mut coeffs = Vec::new();
    for i in 0..columns.len() {
        for j in (i + 1)..columns.len() {
            if let Some(r) = pearson_correlation(&columns[i], &columns[j]) {
                coeffs.push(r.abs());
            }
        }
    }
    if coeffs.is_empty() {
        return None;
    }
    let mean = coeffs.iter().sum::<f64>() / coeffs.len() as f64;
    let min = coeffs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = coeffs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some((mean, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson_correlation(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_undefined() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson_correlation(&x, &y), None);
    }

    #[test]
    fn too_few_points_is_undefined() {
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), None);
    }

    #[test]
    fn known_value() {
        // Hand-computed example: r = 0.8165 (approx).
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let r = pearson_correlation(&x, &y).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn pairwise_summary() {
        let cols = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0], // r=1 with col0
            vec![3.0, 2.0, 1.0], // r=-1 with col0 -> abs = 1
        ];
        let (mean, min, max) = pairwise_correlation_summary(&cols).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        assert!((min - 1.0).abs() < 1e-12);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_summary_empty() {
        assert_eq!(pairwise_correlation_summary(&[]), None);
        let cols = vec![vec![1.0, 1.0], vec![1.0, 2.0]];
        // First column has zero variance -> the only pair is undefined.
        assert_eq!(pairwise_correlation_summary(&cols), None);
    }
}
