//! # predictsim-metrics
//!
//! Scheduling and prediction quality metrics used throughout the
//! *predictsim-rs* reproduction of Gaussier et al., *"Improving Backfilling by
//! using Machine Learning to predict Running Times"* (SC '15).
//!
//! The crate is dependency-free and purely numerical. It provides:
//!
//! * [`bsld`] — the *bounded slowdown* objective (paper §5.3) and its average
//!   [`bsld::ave_bsld`], the single objective function used in every table of
//!   the paper's evaluation;
//! * [`ecdf`] — empirical cumulative distribution functions (Figures 4 and 5);
//! * [`pearson`] — Pearson's correlation coefficient (Figure 3's inter-log
//!   correlation analysis, §6.3.2);
//! * [`error`] — prediction-error metrics: MAE and mean E-Loss (Table 8);
//! * [`summary`] — generic descriptive statistics (mean/median/percentiles)
//!   used by the experiment reports.
//!
//! All functions operate on plain `f64` slices so they can be used on any
//! simulator output without conversion glue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsld;
pub mod ecdf;
pub mod error;
pub mod pearson;
pub mod summary;

pub use bsld::{ave_bsld, bounded_slowdown, BsldRecord, DEFAULT_TAU};
pub use ecdf::Ecdf;
pub use error::{mae, mean_signed_error, rmse};
pub use pearson::pearson_correlation;
pub use summary::Summary;
