//! Prediction-error metrics (Table 8 of the paper).
//!
//! Table 8 compares prediction techniques on two axes: the Mean Absolute
//! Error (MAE) and the mean value of the paper's custom *E-Loss*. The E-Loss
//! itself lives in `predictsim-core` (it needs job features); this module
//! provides the generic error aggregations, plus a helper to aggregate any
//! per-job loss values.

/// Mean absolute error between `predicted` and `actual`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use predictsim_metrics::mae;
/// assert_eq!(mae(&[1.0, 2.0], &[3.0, 2.0]), 1.0);
/// ```
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mae: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let sum: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum();
    sum / predicted.len() as f64
}

/// Root mean squared error between `predicted` and `actual`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let sum: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    (sum / predicted.len() as f64).sqrt()
}

/// Mean signed error `mean(predicted - actual)`.
///
/// Positive values indicate a bias toward over-prediction, negative values a
/// bias toward under-prediction — the quantity visualized by Figure 4's
/// ECDF shift.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_signed_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "mean_signed_error: length mismatch"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let sum: f64 = predicted.iter().zip(actual).map(|(p, a)| p - a).sum();
    sum / predicted.len() as f64
}

/// Mean of arbitrary per-job loss values (e.g. per-job E-Loss), ignoring
/// non-finite entries so a single degenerate job cannot poison Table 8.
pub fn mean_loss(losses: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for &l in losses {
        if l.is_finite() {
            sum += l;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Fraction of jobs that are *under-predicted* (`predicted < actual`).
///
/// §2.2 defines under-/over-prediction; §6.4 analyses how the E-Loss shifts
/// this fraction upward relative to a symmetric squared loss.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn underprediction_rate(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "underprediction_rate: length mismatch"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let n = predicted.iter().zip(actual).filter(|(p, a)| p < a).count();
    n as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_hand_example() {
        let p = [10.0, 20.0, 30.0];
        let a = [12.0, 18.0, 30.0];
        assert!((mae(&p, &a) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominates_mae() {
        let p = [10.0, 20.0, 30.0];
        let a = [12.0, 15.0, 30.0];
        assert!(rmse(&p, &a) >= mae(&p, &a));
    }

    #[test]
    fn signed_error_sign_convention() {
        // Systematic over-prediction -> positive.
        assert!(mean_signed_error(&[10.0, 10.0], &[5.0, 5.0]) > 0.0);
        // Systematic under-prediction -> negative.
        assert!(mean_signed_error(&[1.0, 1.0], &[5.0, 5.0]) < 0.0);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(mean_signed_error(&[], &[]), 0.0);
        assert_eq!(underprediction_rate(&[], &[]), 0.0);
        assert_eq!(mean_loss(&[]), 0.0);
    }

    #[test]
    fn mean_loss_skips_non_finite() {
        assert_eq!(mean_loss(&[1.0, f64::NAN, 3.0, f64::INFINITY]), 2.0);
    }

    #[test]
    fn underprediction_rate_counts_strict() {
        let p = [1.0, 5.0, 10.0, 4.9];
        let a = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(underprediction_rate(&p, &a), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
