//! Bounded slowdown (§5.3 of the paper).
//!
//! For a job `j` with waiting time `wait_j` and actual running time `p_j`,
//! the *bounded slowdown* is
//!
//! ```text
//! bsld(j) = max( (wait_j + p_j) / max(p_j, τ), 1 )
//! ```
//!
//! where `τ` is a constant preventing very small jobs from reaching huge
//! slowdown values. Following the paper (and the literature it cites, \[4\]),
//! `τ = 10` seconds; this is [`DEFAULT_TAU`].
//!
//! The scheduling objective used throughout the paper's evaluation is the
//! average of `bsld` over all jobs, `AVEbsld` ([`ave_bsld`]).

/// The paper's value of the bounding constant τ, in seconds (§5.3).
pub const DEFAULT_TAU: f64 = 10.0;

/// Waiting time and running time of one completed job, in seconds.
///
/// This is the minimal per-job information needed to evaluate the paper's
/// objective function. The simulator produces one record per completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsldRecord {
    /// Time spent between submission and the start of execution (seconds).
    pub wait: f64,
    /// Actual running time of the job (seconds).
    pub run: f64,
}

impl BsldRecord {
    /// Creates a record, asserting basic sanity (non-negative times).
    pub fn new(wait: f64, run: f64) -> Self {
        debug_assert!(wait >= 0.0, "negative waiting time {wait}");
        debug_assert!(run >= 0.0, "negative running time {run}");
        Self { wait, run }
    }

    /// Bounded slowdown of this job with bounding constant `tau`.
    pub fn bsld(&self, tau: f64) -> f64 {
        bounded_slowdown(self.wait, self.run, tau)
    }
}

/// Bounded slowdown of a single job (§5.3).
///
/// `wait` and `run` are the job's waiting and running times in seconds, and
/// `tau` the bounding constant (use [`DEFAULT_TAU`] to follow the paper).
///
/// The result is always ≥ 1, and equals 1 for any job that starts
/// immediately (`wait == 0`).
///
/// # Examples
///
/// ```
/// use predictsim_metrics::{bounded_slowdown, DEFAULT_TAU};
///
/// // A job that waited as long as it ran has slowdown 2.
/// assert_eq!(bounded_slowdown(100.0, 100.0, DEFAULT_TAU), 2.0);
/// // Tiny jobs are bounded by tau: a 1s job waiting 9s is *not* slowed
/// // down 10x, because the denominator is clamped to tau = 10s.
/// assert_eq!(bounded_slowdown(9.0, 1.0, DEFAULT_TAU), 1.0);
/// ```
pub fn bounded_slowdown(wait: f64, run: f64, tau: f64) -> f64 {
    let denom = run.max(tau);
    debug_assert!(denom > 0.0, "bounded_slowdown denominator must be positive");
    ((wait + run) / denom).max(1.0)
}

/// `AVEbsld`: the mean bounded slowdown over a set of jobs (§5.3).
///
/// Returns 0 for an empty slice (an empty schedule has no slowdown), which
/// keeps campaign aggregation total.
pub fn ave_bsld(records: &[BsldRecord], tau: f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let sum: f64 = records.iter().map(|r| r.bsld(tau)).sum();
    sum / records.len() as f64
}

/// Maximum bounded slowdown over a set of jobs.
///
/// Used by the §6.5 discussion of extreme slowdown values ("roughly 0.1% of
/// jobs have extremely high values of bounded slowdowns").
pub fn max_bsld(records: &[BsldRecord], tau: f64) -> f64 {
    records.iter().map(|r| r.bsld(tau)).fold(0.0, f64::max)
}

/// Fraction of jobs whose bounded slowdown exceeds `threshold`.
///
/// Supports the §6.5 analysis of extreme-value prevalence.
pub fn fraction_bsld_above(records: &[BsldRecord], tau: f64, threshold: f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let n = records.iter().filter(|r| r.bsld(tau) > threshold).count();
    n as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_wait_gives_unit_slowdown() {
        assert_eq!(bounded_slowdown(0.0, 500.0, DEFAULT_TAU), 1.0);
    }

    #[test]
    fn long_job_slowdown_is_flow_over_run() {
        // 1h wait, 1h run -> slowdown 2.
        assert_eq!(bounded_slowdown(3600.0, 3600.0, DEFAULT_TAU), 2.0);
    }

    #[test]
    fn tiny_job_is_bounded_by_tau() {
        // 1s job waiting 99s: unbounded slowdown would be 100, bounded uses
        // denominator tau=10 -> (99+1)/10 = 10.
        assert_eq!(bounded_slowdown(99.0, 1.0, DEFAULT_TAU), 10.0);
    }

    #[test]
    fn slowdown_never_below_one() {
        assert_eq!(bounded_slowdown(0.0, 1.0, DEFAULT_TAU), 1.0);
        assert_eq!(bounded_slowdown(0.0, 0.0, DEFAULT_TAU), 1.0);
    }

    #[test]
    fn ave_bsld_empty_is_zero() {
        assert_eq!(ave_bsld(&[], DEFAULT_TAU), 0.0);
    }

    #[test]
    fn ave_bsld_averages() {
        let recs = [
            BsldRecord::new(0.0, 100.0),   // 1.0
            BsldRecord::new(100.0, 100.0), // 2.0
            BsldRecord::new(300.0, 100.0), // 4.0
        ];
        let got = ave_bsld(&recs, DEFAULT_TAU);
        assert!((got - 7.0 / 3.0).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn max_and_fraction() {
        let recs = [
            BsldRecord::new(0.0, 100.0),    // 1.0
            BsldRecord::new(900.0, 100.0),  // 10.0
            BsldRecord::new(9900.0, 100.0), // 100.0
        ];
        assert_eq!(max_bsld(&recs, DEFAULT_TAU), 100.0);
        let frac = fraction_bsld_above(&recs, DEFAULT_TAU, 5.0);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_constructor_matches_free_function() {
        let r = BsldRecord::new(50.0, 25.0);
        assert_eq!(
            r.bsld(DEFAULT_TAU),
            bounded_slowdown(50.0, 25.0, DEFAULT_TAU)
        );
    }
}
