//! Descriptive statistics used by the experiment reports.

/// Descriptive summary of a sample: count, mean, standard deviation,
/// min/max, and common percentiles.
///
/// Built once (`O(n log n)` for the sort) and then queried cheaply. Used by
/// the campaign reports in `predictsim-experiments` to summarize AVEbsld
/// distributions and per-job slowdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes the summary of `sample`, ignoring non-finite values.
    pub fn of(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered"));
        let n = sorted.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                sorted,
            };
        }
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            sorted,
        }
    }

    /// Number of finite observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for an empty sample).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Minimum observation. Panics on an empty sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty summary")
    }

    /// Maximum observation. Panics on an empty sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty summary")
    }

    /// Median (50th percentile). Panics on an empty sample.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Percentile in `[0, 100]` using nearest-rank. Panics on an empty
    /// sample or out-of-range argument.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(self.n > 0, "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let rank = ((p / 100.0) * self.n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.n) - 1]
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} p50={:.2} p95={:.2} max={:.2}",
            self.n,
            self.mean,
            self.std_dev,
            self.min(),
            self.median(),
            self.percentile(95.0),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0); // classic population-sd example
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 4.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::of(&(1..=10).map(f64::from).collect::<Vec<_>>());
        assert_eq!(s.percentile(10.0), 1.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn non_finite_filtered() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(format!("{s}"), "n=0");
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let txt = format!("{s}");
        assert!(txt.contains("n=3"));
        assert!(txt.contains("mean=2.00"));
    }
}
