//! Property-based tests of the metrics crate.

use proptest::prelude::*;

use predictsim_metrics::bsld::{fraction_bsld_above, max_bsld};
use predictsim_metrics::error::{mean_signed_error, underprediction_rate};
use predictsim_metrics::{
    ave_bsld, bounded_slowdown, mae, pearson_correlation, rmse, BsldRecord, Ecdf, Summary,
    DEFAULT_TAU,
};

proptest! {
    /// Bounded slowdown is always ≥ 1, finite, and monotone in the wait.
    #[test]
    fn bsld_bounds_and_monotonicity(
        wait in 0.0f64..1e9,
        run in 0.0f64..1e9,
        extra in 0.0f64..1e6,
    ) {
        let b = bounded_slowdown(wait, run, DEFAULT_TAU);
        prop_assert!(b >= 1.0);
        prop_assert!(b.is_finite());
        let b2 = bounded_slowdown(wait + extra, run, DEFAULT_TAU);
        prop_assert!(b2 >= b, "more waiting cannot reduce slowdown");
    }

    /// AVEbsld lies between the min and max per-job slowdown, and max
    /// dominates the threshold fraction logic.
    #[test]
    fn ave_bsld_is_bounded_by_extremes(
        recs in prop::collection::vec((0.0f64..1e6, 1.0f64..1e6), 1..100)
    ) {
        let records: Vec<BsldRecord> =
            recs.iter().map(|&(w, r)| BsldRecord::new(w, r)).collect();
        let ave = ave_bsld(&records, DEFAULT_TAU);
        let max = max_bsld(&records, DEFAULT_TAU);
        prop_assert!(ave <= max + 1e-9);
        prop_assert!(ave >= 1.0 - 1e-9);
        // The fraction above the max is zero; above 0 it is 1.
        prop_assert_eq!(fraction_bsld_above(&records, DEFAULT_TAU, max), 0.0);
        prop_assert_eq!(fraction_bsld_above(&records, DEFAULT_TAU, 0.5), 1.0);
    }

    /// MAE ≤ RMSE (Jensen), both zero iff identical.
    #[test]
    fn mae_rmse_relationship(
        pairs in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..80)
    ) {
        let p: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
        let a: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
        prop_assert!(mae(&p, &a) <= rmse(&p, &a) + 1e-9);
        prop_assert!(mae(&p, &p) == 0.0);
        prop_assert!(rmse(&p, &p) == 0.0);
    }

    /// Signed error decomposes: |mean signed error| ≤ MAE.
    #[test]
    fn signed_error_bounded_by_mae(
        pairs in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..80)
    ) {
        let p: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
        let a: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
        prop_assert!(mean_signed_error(&p, &a).abs() <= mae(&p, &a) + 1e-9);
    }

    /// Pearson is symmetric, bounded by 1 in absolute value, and exactly
    /// ±1 under affine maps.
    #[test]
    fn pearson_properties(
        xs in prop::collection::vec(-1e3f64..1e3, 3..50),
        a in prop_oneof![-5.0f64..-0.1, 0.1f64..5.0],
        b in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        if let Some(r) = pearson_correlation(&xs, &ys) {
            prop_assert!((r.abs() - 1.0).abs() < 1e-6, "affine map must give |r|=1, got {r}");
            prop_assert_eq!(r.signum(), a.signum());
        }
        if let Some(r) = pearson_correlation(&xs, &xs) {
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
        // Symmetry.
        let fwd = pearson_correlation(&xs, &ys);
        let bwd = pearson_correlation(&ys, &xs);
        match (fwd, bwd) {
            (Some(f), Some(g)) => prop_assert!((f - g).abs() < 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric definedness {other:?}"),
        }
    }

    /// ECDF evaluation is a valid CDF: monotone, 0 below min, 1 at max;
    /// quantile is a partial inverse.
    #[test]
    fn ecdf_is_a_cdf(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(sample.clone());
        prop_assert_eq!(e.eval(e.min() - 1.0), 0.0);
        prop_assert_eq!(e.eval(e.max()), 1.0);
        let q50 = e.quantile(0.5);
        prop_assert!(e.eval(q50) >= 0.5);
        // Monotone on a grid.
        let lo = e.min();
        let hi = e.max();
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let f = e.eval(x);
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    /// Summary invariants: min ≤ p25 ≤ median ≤ p75 ≤ max; sd ≥ 0.
    #[test]
    fn summary_order_statistics(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&sample);
        prop_assert!(s.min() <= s.percentile(25.0) + 1e-9);
        prop_assert!(s.percentile(25.0) <= s.median() + 1e-9);
        prop_assert!(s.median() <= s.percentile(75.0) + 1e-9);
        prop_assert!(s.percentile(75.0) <= s.max() + 1e-9);
        prop_assert!(s.std_dev() >= 0.0);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Under-prediction rate is a probability and flips under swap.
    #[test]
    fn underprediction_rate_is_probability(
        pairs in prop::collection::vec((1.0f64..1e6, 1.0f64..1e6), 1..80)
    ) {
        let p: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
        let a: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
        let u = underprediction_rate(&p, &a);
        let o = underprediction_rate(&a, &p);
        prop_assert!((0.0..=1.0).contains(&u));
        // under(p,a) + under(a,p) + ties = 1
        let ties = p.iter().zip(&a).filter(|(x, y)| x == y).count() as f64
            / p.len() as f64;
        prop_assert!((u + o + ties - 1.0).abs() < 1e-9);
    }
}
