//! Synthetic counterparts of the paper's six production logs (Table 4).
//!
//! | Name        | Year | CPUs   | Jobs | Duration  |
//! |-------------|------|--------|------|-----------|
//! | KTH-SP2     | 1996 | 100    | 28k  | 11 months |
//! | CTC-SP2     | 1996 | 338    | 77k  | 11 months |
//! | SDSC-SP2    | 2000 | 128    | 59k  | 24 months |
//! | SDSC-BLUE   | 2003 | 1 152  | 243k | 32 months |
//! | Curie       | 2012 | 80 640 | 312k | 3 months  |
//! | Metacentrum | 2013 | 3 356  | 495k | 6 months  |
//!
//! Machine sizes, job counts and durations are taken from Table 4
//! verbatim; utilization targets and behavioral knobs approximate the
//! published characteristics of each log (all six were "selected for
//! their high resource utilization"). The *real* logs remain fully
//! usable through `predictsim-swf` — these presets are the
//! redistributable stand-ins (see DESIGN.md §3 for the substitution
//! argument).

use crate::spec::WorkloadSpec;

const MONTH: i64 = 30 * 86_400;

fn base(
    name: &str,
    machine: u32,
    jobs: usize,
    months: i64,
    utilization: f64,
    users: usize,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        machine_size: machine,
        jobs,
        duration: months * MONTH,
        utilization,
        users,
        session_len_mean: 3.0,
        session_repeat_prob: 0.85,
        crash_rate: 0.12,
        overestimate_median: 3.0,
        overestimate_sigma: 0.7,
        modal_round_prob: 0.8,
        procs_mean_log2: 2.0,
        procs_sigma_log2: 1.3,
        classes_per_user: 3,
    }
}

/// KTH-SP2: the 100-node IBM SP2 at KTH, Stockholm (1996).
pub fn kth_sp2() -> WorkloadSpec {
    let mut s = base("KTH-SP2", 100, 28_000, 11, 0.88, 200);
    s.procs_mean_log2 = 1.8;
    s
}

/// CTC-SP2: the 338-node Cornell Theory Center SP2 (1996).
pub fn ctc_sp2() -> WorkloadSpec {
    let mut s = base("CTC-SP2", 338, 77_000, 11, 0.84, 250);
    s.procs_mean_log2 = 2.2;
    s
}

/// SDSC-SP2: the 128-node San Diego SP2 (2000) — a long, heavily loaded
/// trace.
pub fn sdsc_sp2() -> WorkloadSpec {
    let mut s = base("SDSC-SP2", 128, 59_000, 24, 0.87, 430);
    s.procs_mean_log2 = 2.0;
    s
}

/// SDSC-BLUE: the 1 152-processor Blue Horizon (2003).
pub fn sdsc_blue() -> WorkloadSpec {
    let mut s = base("SDSC-BLUE", 1_152, 243_000, 32, 0.84, 470);
    s.procs_mean_log2 = 3.5;
    s
}

/// Curie: the 80 640-core Bull/CEA petascale machine (2012). Very wide
/// jobs, short trace, bursty — the log on which the paper's approach
/// shines most (86% AVEbsld reduction).
pub fn curie() -> WorkloadSpec {
    let mut s = base("Curie", 80_640, 312_000, 3, 0.80, 580);
    s.procs_mean_log2 = 7.0;
    s.procs_sigma_log2 = 2.2;
    s.session_len_mean = 4.0;
    s.crash_rate = 0.16; // young machine, noisy jobs
    s
}

/// Metacentrum: the Czech national grid (2013) — many users, mixed
/// hardware, moderate utilization.
pub fn metacentrum() -> WorkloadSpec {
    let mut s = base("Metacentrum", 3_356, 495_000, 6, 0.75, 800);
    s.procs_mean_log2 = 3.2;
    s.procs_sigma_log2 = 1.7;
    s.session_len_mean = 4.0;
    s
}

/// `millions-of-users`: the cloud-scale stressor, not a Table 4 log. A
/// million jobs from a 400 000-user population (heavy-tail activity,
/// short bursty sessions) on a 65 536-processor machine — the shape of
/// the Alibaba/Google cluster traces, scaled to what the offline build
/// environment can generate. Exercises the streaming ingestion path and
/// the dense-interned per-user slabs at ≥ 10^5 *active* users; not part
/// of [`all_six`], so no paper experiment is affected.
pub fn millions_of_users() -> WorkloadSpec {
    let mut s = base("millions-of-users", 65_536, 1_000_000, 1, 0.70, 400_000);
    s.session_len_mean = 2.0; // short sessions → many distinct submitters
    s.session_repeat_prob = 0.8;
    s.procs_mean_log2 = 3.0;
    s.procs_sigma_log2 = 1.8;
    s.classes_per_user = 2;
    s
}

/// All six Table 4 presets in the paper's order.
pub fn all_six() -> Vec<WorkloadSpec> {
    vec![
        kth_sp2(),
        ctc_sp2(),
        sdsc_sp2(),
        sdsc_blue(),
        curie(),
        metacentrum(),
    ]
}

/// All six presets scaled by `factor` (see [`WorkloadSpec::scaled`]) —
/// the fast variants the test-suite and benches default to.
pub fn all_six_scaled(factor: f64) -> Vec<WorkloadSpec> {
    all_six().into_iter().map(|s| s.scaled(factor)).collect()
}

/// Looks a preset up by its (case-insensitive) Table 4 name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    let lower = name.to_ascii_lowercase();
    all_six()
        .into_iter()
        .find(|s| s.name.to_ascii_lowercase() == lower)
        .or_else(|| (lower == "toy").then(WorkloadSpec::toy))
        .or_else(|| (lower == "millions-of-users").then(millions_of_users))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millions_of_users_is_cloud_scale() {
        let s = millions_of_users();
        assert!(s.validate().is_ok());
        assert_eq!(s.jobs, 1_000_000);
        assert_eq!(s.users, 400_000);
        assert_eq!(by_name("Millions-Of-Users"), Some(s));
        // A stressor, not a Table 4 log.
        assert!(all_six().iter().all(|s| s.name != "millions-of-users"));
    }

    #[test]
    fn millions_of_users_generates_many_distinct_users_when_scaled() {
        // The full preset is exercised in release by the ingest bench
        // and CI smoke; here a 1% scale checks the population shape:
        // nearly every session comes from a distinct user.
        let w = crate::generate(&millions_of_users().scaled(0.01), 1);
        assert_eq!(w.jobs.len(), 10_000);
        assert!(
            w.stats.active_users > 2_000,
            "only {} distinct users — population not heavy enough",
            w.stats.active_users
        );
        assert_eq!(w.stats.active_users as u32, {
            let mut users: Vec<u32> = w.jobs.iter().map(|j| j.user_ix).collect();
            users.sort_unstable();
            users.dedup();
            users.len() as u32
        });
    }

    #[test]
    fn table4_shapes() {
        let six = all_six();
        assert_eq!(six.len(), 6);
        let names: Vec<&str> = six.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "KTH-SP2",
                "CTC-SP2",
                "SDSC-SP2",
                "SDSC-BLUE",
                "Curie",
                "Metacentrum"
            ]
        );
        // Table 4 numbers.
        assert_eq!(six[0].machine_size, 100);
        assert_eq!(six[1].machine_size, 338);
        assert_eq!(six[2].machine_size, 128);
        assert_eq!(six[3].machine_size, 1_152);
        assert_eq!(six[4].machine_size, 80_640);
        assert_eq!(six[5].machine_size, 3_356);
        assert_eq!(six[4].jobs, 312_000);
        assert_eq!(six[5].jobs, 495_000);
        for s in &six {
            assert!(s.validate().is_ok(), "{} invalid", s.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("curie").unwrap().machine_size, 80_640);
        assert_eq!(by_name("KTH-SP2").unwrap().jobs, 28_000);
        assert_eq!(by_name("toy").unwrap().name, "toy");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn scaled_presets_stay_valid() {
        for s in all_six_scaled(0.02) {
            assert!(s.validate().is_ok(), "{} invalid", s.name);
            assert!(s.jobs >= 50);
        }
    }
}
