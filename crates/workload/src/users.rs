//! The user population model.
//!
//! Each synthetic user owns a handful of *job classes* — applications the
//! user runs repeatedly, each with its own lognormal running-time
//! distribution and characteristic processor request. Successive jobs of
//! one user strongly tend to repeat the same class (session locality),
//! which produces the temporal running-time dependence that the paper's
//! per-user features (and the AVE₂ baseline) exploit: "two successive
//! running times are enough to predict running time with good accuracy"
//! (§4.1, citing \[24\]).
//!
//! Users also differ in *estimation style*: a per-user over-estimation
//! factor, following the observation of \[23\] that users wildly pad their
//! requested times — and in activity level, following the usual Zipf-like
//! activity skew of production logs.

use rand::Rng;

use crate::sampling;
use crate::spec::WorkloadSpec;

/// One application a user runs repeatedly.
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    /// Lognormal location of running times (log-seconds).
    pub mu: f64,
    /// Lognormal scale of running times: small values make the class
    /// highly predictable from history.
    pub sigma: f64,
    /// Processor request used by (almost) every run of this class.
    pub procs: u32,
    /// Relative probability of picking this class when starting a
    /// session.
    pub weight: f64,
}

impl JobClass {
    /// Samples a raw (pre-calibration) running time for this class.
    pub fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sampling::lognormal(rng, self.mu, self.sigma)
    }

    /// The *habitual requested time* of this class, in raw
    /// (pre-calibration) units: users do not estimate per job — they
    /// reuse a single padded figure per application (Tsafrir, Etsion &
    /// Feitelson \[23\]), sized so the application "never" gets killed.
    /// We model it as the ~93rd percentile of the class's runtime
    /// distribution; the user's personal padding factor multiplies this
    /// later. The key property is that *within* a class, the request
    /// carries no information about the individual run — exactly the
    /// weak runtime/estimate correlation observed in production logs.
    pub fn habitual_request(&self) -> f64 {
        (self.mu + 1.5 * self.sigma).exp()
    }

    /// Samples the processor request; a small minority of runs deviate
    /// from the class's canonical size.
    pub fn sample_procs<R: Rng + ?Sized>(&self, rng: &mut R, machine: u32) -> u32 {
        if rng.gen::<f64>() < 0.9 {
            self.procs
        } else {
            sampling::proc_request(rng, machine, (self.procs.max(1) as f64).log2(), 0.8)
        }
    }
}

/// One synthetic user.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// Population index (engine `Job::user` is `id + 1`: 0 is reserved
    /// for "unknown user" by the SWF conversion).
    pub id: u32,
    /// The user's applications.
    pub classes: Vec<JobClass>,
    /// Relative submission activity (Zipf-like across the population).
    pub activity: f64,
    /// The user's requested-time over-estimation factor (≥ 1).
    pub overestimate: f64,
    /// Whether this user rounds requests up to modal values.
    pub rounds_to_modal: bool,
    /// Hour of day (0–24) around which the user's submissions peak.
    pub peak_hour: f64,
}

impl User {
    /// Picks a class index to start a session with.
    pub fn pick_class<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        sampling::weighted_index(rng, &weights)
    }
}

/// Builds the user population for `spec`.
pub fn build_users<R: Rng + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Vec<User> {
    let mut users = Vec::with_capacity(spec.users);
    for id in 0..spec.users {
        let n_classes = 1 + rng.gen_range(0..spec.classes_per_user);
        let classes = (0..n_classes)
            .map(|_| {
                // Class medians spread over ~minutes to ~half a day; the
                // later utilization calibration rescales globally.
                let mu = sampling::normal_with(rng, (1800.0f64).ln(), 1.6);
                let sigma = rng.gen_range(0.1..0.6);
                let procs = sampling::proc_request(
                    rng,
                    spec.machine_size,
                    spec.procs_mean_log2,
                    spec.procs_sigma_log2,
                );
                JobClass {
                    mu,
                    sigma,
                    procs,
                    weight: rng.gen_range(0.2..1.0),
                }
            })
            .collect();
        // Zipf-like activity: a few users dominate the log.
        let activity = 1.0 / (1.0 + id as f64).powf(0.8);
        // Over-estimation factor: lognormal around the spec's median, with
        // a floor at 1 (requests never below actual, enforced later too).
        let overestimate =
            sampling::lognormal(rng, spec.overestimate_median.ln(), spec.overestimate_sigma)
                .max(1.0);
        let rounds_to_modal = rng.gen::<f64>() < spec.modal_round_prob;
        // Peak activity hours concentrated in the working day.
        let peak_hour = sampling::normal_with(rng, 13.0, 3.0).rem_euclid(24.0);
        users.push(User {
            id: id as u32,
            classes,
            activity,
            overestimate,
            rounds_to_modal,
            peak_hour,
        });
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn users() -> Vec<User> {
        let mut rng = StdRng::seed_from_u64(1);
        build_users(&WorkloadSpec::toy(), &mut rng)
    }

    #[test]
    fn population_matches_spec() {
        let spec = WorkloadSpec::toy();
        let us = users();
        assert_eq!(us.len(), spec.users);
        for (i, u) in us.iter().enumerate() {
            assert_eq!(u.id, i as u32);
            assert!(!u.classes.is_empty());
            assert!(u.classes.len() <= spec.classes_per_user);
            assert!(u.overestimate >= 1.0);
            assert!((0.0..24.0).contains(&u.peak_hour));
            for c in &u.classes {
                assert!(c.procs >= 1 && c.procs <= spec.machine_size);
                assert!(c.sigma > 0.0);
            }
        }
    }

    #[test]
    fn activity_is_skewed() {
        let us = users();
        assert!(us[0].activity > us.last().unwrap().activity * 5.0);
    }

    #[test]
    fn class_runtimes_are_clustered() {
        // Per-class runtimes vary much less than cross-class runtimes —
        // the locality signal. Compare within-class spread to the class
        // median for a tight class.
        let mut rng = StdRng::seed_from_u64(2);
        let class = JobClass {
            mu: (3600.0f64).ln(),
            sigma: 0.2,
            procs: 8,
            weight: 1.0,
        };
        let samples: Vec<f64> = (0..500).map(|_| class.sample_runtime(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let within = samples
            .iter()
            .filter(|&&x| (x / mean - 1.0).abs() < 0.5)
            .count();
        assert!(within > 450, "class runtimes too dispersed: {within}/500");
    }

    #[test]
    fn class_procs_mostly_canonical() {
        let mut rng = StdRng::seed_from_u64(3);
        let class = JobClass {
            mu: 8.0,
            sigma: 0.3,
            procs: 16,
            weight: 1.0,
        };
        let canonical = (0..1000)
            .filter(|_| class.sample_procs(&mut rng, 64) == 16)
            .count();
        assert!(canonical > 850, "only {canonical}/1000 canonical sizes");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(9);
            build_users(&WorkloadSpec::toy(), &mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(9);
            build_users(&WorkloadSpec::toy(), &mut rng)
        };
        assert_eq!(a, b);
    }
}
