//! Workload generation: from a [`WorkloadSpec`] to a simulated job stream.
//!
//! The pipeline (all deterministic from the seed):
//!
//! 1. build the user population ([`crate::users`]);
//! 2. generate submission *sessions* — bursts of same-class jobs placed on
//!    a day/week activity cycle — until the target job count is reached;
//! 3. calibrate running times so total work hits the spec's utilization
//!    (`Σ p·q ≈ u · m · T`), preserving all per-user structure;
//! 4. derive requested times from each user's over-estimation style
//!    (modal rounding per \[23\]);
//! 5. inject crash noise: a fraction of jobs die early *after* their
//!    request was set, yielding exactly the pathological
//!    (tiny `p`, huge `p̃`) records the paper's robustness discussion
//!    (§4.1, §6.5) worries about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use predictsim_sim::job::{intern_users, Job, JobId};
use predictsim_sim::time::{Time, DAY, HOUR};
use predictsim_swf::{SwfHeader, SwfLog, SwfRecord, MISSING};

use crate::sampling;
use crate::spec::WorkloadSpec;
use crate::users::{build_users, User};

/// A generated workload: simulator-ready jobs plus provenance.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// Name of the generating spec.
    pub name: String,
    /// Machine size to simulate with.
    pub machine_size: u32,
    /// Jobs sorted by submission, densely numbered.
    pub jobs: Vec<Job>,
    /// Descriptive statistics of the generated stream.
    pub stats: WorkloadStats,
}

/// Summary statistics of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Distinct users that actually submitted.
    pub active_users: usize,
    /// Total work `Σ p·q` in processor-seconds.
    pub total_work: f64,
    /// Expected utilization `total_work / (m · duration)`.
    pub offered_utilization: f64,
    /// Mean running time, seconds.
    pub mean_run: f64,
    /// Mean processor request.
    pub mean_procs: f64,
    /// Mean over-estimation ratio `p̃ / p`.
    pub mean_overestimate: f64,
    /// Jobs replaced by crash noise.
    pub crashed_jobs: usize,
}

/// User populations larger than this pick sessions via
/// [`sampling::CumulativeSampler`]; all pinned Table 4 presets (≤ 800
/// users) stay on the original subtract-chain, keeping their generated
/// bytes frozen.
const FAST_SAMPLER_CUTOVER: usize = 10_000;

struct RawJob {
    submit: i64,
    user: u32,
    runtime: f64,
    /// The class's habitual request (same raw units as `runtime`),
    /// already multiplied by the user's padding factor.
    request: f64,
    procs: u32,
}

/// Generates the workload for `spec`, deterministically from `seed`.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> GeneratedWorkload {
    spec.validate().expect("invalid workload spec");
    let mut rng = StdRng::seed_from_u64(seed);
    let users = build_users(spec, &mut rng);
    let activity: Vec<f64> = users.iter().map(|u| u.activity).collect();

    // Above the cutover, user selection switches from the O(users)
    // subtract-chain to a prefix-sum binary search — mandatory for the
    // cloud-scale presets (10^5–10^6 users), byte-preserving below it
    // because every pinned preset has at most 800 users and both
    // samplers consume exactly one RNG draw.
    let fast_sampler =
        (users.len() > FAST_SAMPLER_CUTOVER).then(|| sampling::CumulativeSampler::new(&activity));

    // Phase 1 — sessions until enough arrivals.
    let mut raw: Vec<RawJob> = Vec::with_capacity(spec.jobs + 64);
    while raw.len() < spec.jobs {
        let user_ix = match &fast_sampler {
            Some(sampler) => sampler.sample(&mut rng),
            None => sampling::weighted_index(&mut rng, &activity),
        };
        generate_session(spec, &users[user_ix], &mut rng, &mut raw);
    }
    raw.sort_by_key(|r| r.submit);
    raw.truncate(spec.jobs);

    // Phase 2 — utilization calibration. Requests scale with runtimes so
    // the class-level "habitual request" semantics survive calibration.
    let target_work = spec.utilization * spec.machine_size as f64 * spec.duration as f64;
    let raw_work: f64 = raw.iter().map(|r| r.runtime * r.procs as f64).sum();
    let scale = if raw_work > 0.0 {
        target_work / raw_work
    } else {
        1.0
    };
    let max_run = (7 * DAY) as f64;
    for r in &mut raw {
        r.runtime = (r.runtime * scale).clamp(10.0, max_run);
        r.request = (r.request * scale).clamp(10.0, 2.0 * max_run);
    }

    // Phase 3 — requested times, then crash injection.
    let mut jobs = Vec::with_capacity(raw.len());
    let mut crashed = 0usize;
    let mut sum_over = 0.0;
    for (i, r) in raw.iter().enumerate() {
        let user = &users[r.user as usize];
        let mut run = r.runtime.round() as i64;
        let requested = requested_time(run, r.request, user, &mut rng);
        if rng.gen::<f64>() < spec.crash_rate {
            // The job dies early; the user's request reflected the
            // *intended* runtime, so it stays untouched.
            run = rng.gen_range(20..300);
            crashed += 1;
        }
        let run = run.clamp(1, requested);
        sum_over += requested as f64 / run as f64;
        jobs.push(Job {
            id: JobId(i as u32),
            submit: Time(r.submit),
            run,
            requested,
            procs: r.procs,
            // Engine user ids are 1-based: `job_from_swf` reserves 0 for
            // records with no user, so generated users start at 1 and the
            // SWF export stays a true inverse without special cases.
            user: r.user + 1,
            user_ix: 0, // interned below, once the final job order is fixed
            swf_id: i as u64 + 1,
        });
    }

    // Dense user interning over the final sorted job order — the same
    // first-appearance rule every workload loader applies, so an SWF
    // round trip reproduces identical `user_ix` assignments. The distinct
    // count doubles as the active-user statistic.
    let active_users = intern_users(&mut jobs) as usize;
    let total_work: f64 = jobs.iter().map(|j| j.run as f64 * j.procs as f64).sum();
    let stats = WorkloadStats {
        jobs: jobs.len(),
        active_users,
        total_work,
        offered_utilization: total_work / (spec.machine_size as f64 * spec.duration as f64),
        mean_run: jobs.iter().map(|j| j.run as f64).sum::<f64>() / jobs.len().max(1) as f64,
        mean_procs: jobs.iter().map(|j| j.procs as f64).sum::<f64>() / jobs.len().max(1) as f64,
        mean_overestimate: sum_over / jobs.len().max(1) as f64,
        crashed_jobs: crashed,
    };

    GeneratedWorkload {
        name: spec.name.clone(),
        machine_size: spec.machine_size,
        jobs,
        stats,
    }
}

/// One submission burst of a user.
fn generate_session(spec: &WorkloadSpec, user: &User, rng: &mut StdRng, out: &mut Vec<RawJob>) {
    // Place the session on the weekly cycle: weekdays dominate.
    let days = (spec.duration / DAY).max(1);
    let day = loop {
        let d = rng.gen_range(0..days);
        let weekday = d % 7; // day 0 is a Monday by convention
        let weight = if weekday < 5 { 1.0 } else { 0.35 };
        if rng.gen::<f64>() < weight {
            break d;
        }
    };
    // Time of day around the user's peak hour.
    let hour = sampling::normal_with(rng, user.peak_hour, 3.0).rem_euclid(24.0);
    let mut t = day * DAY + (hour * HOUR as f64) as i64;

    let n_jobs = 1 + sampling::geometric(rng, spec.session_len_mean) as usize;
    let mut class_idx = user.pick_class(rng);
    for _ in 0..n_jobs {
        if rng.gen::<f64>() > spec.session_repeat_prob {
            class_idx = user.pick_class(rng);
        }
        let class = &user.classes[class_idx];
        t += sampling::exponential(rng, 300.0) as i64 + 1;
        if t >= spec.duration {
            break;
        }
        out.push(RawJob {
            submit: t,
            user: user.id,
            runtime: class.sample_runtime(rng),
            request: class.habitual_request() * user.overestimate,
            procs: class.sample_procs(rng, spec.machine_size),
        });
    }
}

/// The user's requested time: the class's habitual padded figure,
/// rounded the way this user rounds, raised to the actual runtime when
/// the habit would have under-shot (those jobs would otherwise be
/// killed; users learn to bump the estimate).
fn requested_time(run: i64, habitual: f64, user: &User, rng: &mut StdRng) -> i64 {
    let padded = habitual * rng.gen_range(0.95..1.1);
    let rounded = if user.rounds_to_modal {
        sampling::round_to_modal(padded.round() as i64)
    } else {
        // Round up to the next 5 minutes.
        let raw = padded.round() as i64;
        ((raw + 299) / 300) * 300
    };
    let floor = if user.rounds_to_modal {
        sampling::round_to_modal(run)
    } else {
        ((run + 299) / 300) * 300
    };
    rounded.max(floor).max(run).max(60)
}

impl GeneratedWorkload {
    /// Exports the workload as an SWF log (usable by any SWF consumer,
    /// including this repository's own parser — round-trip tested).
    pub fn to_swf(&self) -> SwfLog {
        let mut log = SwfLog {
            header: SwfHeader::synthetic(self.machine_size as u64, &self.name),
            records: Vec::with_capacity(self.jobs.len()),
        };
        for j in &self.jobs {
            let mut r = SwfRecord::empty(j.swf_id);
            r.submit_time = j.submit.0;
            r.wait_time = MISSING;
            r.run_time = j.run;
            r.allocated_procs = j.procs as i64;
            r.requested_procs = j.procs as i64;
            r.requested_time = j.requested;
            r.status = if j.run < j.requested { 1 } else { 0 };
            // Exact inverse of `job_from_swf`'s user mapping (SWF user
            // `u` maps to engine user `u + 1`, MISSING to 0), so a
            // write → parse → convert round trip reproduces the jobs
            // byte-for-byte. Generated users are 1-based, so MISSING
            // only appears for jobs that came from user-less records.
            r.user_id = if j.user == 0 {
                MISSING
            } else {
                j.user as i64 - 1
            };
            log.records.push(r);
        }
        log
    }

    /// Convenience: a `SimConfig` for this workload's machine.
    pub fn sim_config(&self) -> predictsim_sim::SimConfig {
        predictsim_sim::SimConfig::single(self.machine_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> GeneratedWorkload {
        generate(&WorkloadSpec::toy(), 7)
    }

    #[test]
    fn generates_requested_count_sorted_and_numbered() {
        let w = toy();
        assert_eq!(w.jobs.len(), 2000);
        for (i, j) in w.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32));
            assert!(j.validate().is_ok());
            assert!(j.requested >= j.run);
            assert!(j.procs <= w.machine_size);
            assert!(j.submit.0 >= 0);
        }
        for pair in w.jobs.windows(2) {
            assert!(pair[0].submit <= pair[1].submit);
        }
    }

    #[test]
    fn utilization_is_calibrated() {
        let w = toy();
        let u = w.stats.offered_utilization;
        // Clamping and crash injection bleed some work; stay in a band.
        assert!(
            (0.4..1.1).contains(&u),
            "offered utilization {u} far from the 0.75 target"
        );
    }

    #[test]
    fn overestimation_is_substantial() {
        let w = toy();
        assert!(
            w.stats.mean_overestimate > 2.0,
            "mean overestimate {} too small to matter",
            w.stats.mean_overestimate
        );
    }

    #[test]
    fn crash_fraction_near_spec() {
        let w = toy();
        let spec_rate = WorkloadSpec::toy().crash_rate;
        let frac = w.stats.crashed_jobs as f64 / w.stats.jobs as f64;
        assert!(
            (frac - spec_rate).abs() < 0.04,
            "crash fraction {frac} far from spec {spec_rate}"
        );
    }

    #[test]
    fn per_user_runtime_locality_exists() {
        // For users with enough jobs, consecutive runtimes should often be
        // within 50% of each other (session/class locality) — this is the
        // signal AVE₂ and the ML features rely on.
        let w = toy();
        // BTreeMap: deterministic iteration order, unlike std::HashMap
        // whose per-instance random seed could make this test flaky and
        // would leak ordering if a map like this ever fed generation.
        let mut per_user: std::collections::BTreeMap<u32, Vec<i64>> = Default::default();
        for j in &w.jobs {
            per_user.entry(j.user).or_default().push(j.run);
        }
        let mut close = 0usize;
        let mut total = 0usize;
        for runs in per_user.values().filter(|r| r.len() >= 10) {
            for pair in runs.windows(2) {
                let (a, b) = (pair[0] as f64, pair[1] as f64);
                if (a / b).max(b / a) < 2.0 {
                    close += 1;
                }
                total += 1;
            }
        }
        assert!(total > 100, "not enough per-user sequences ({total})");
        let frac = close as f64 / total as f64;
        assert!(
            frac > 0.5,
            "locality too weak: only {frac:.2} of pairs close"
        );
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = generate(&WorkloadSpec::toy(), 7);
        let b = generate(&WorkloadSpec::toy(), 7);
        assert_eq!(a.jobs, b.jobs);
        let c = generate(&WorkloadSpec::toy(), 8);
        assert_ne!(a.jobs, c.jobs, "different seeds must differ");
    }

    #[test]
    fn fast_sampler_path_is_deterministic_and_plausible() {
        // Above FAST_SAMPLER_CUTOVER the prefix-sum sampler drives user
        // selection; it must be just as deterministic, and still spread
        // sessions across the population.
        let mut spec = WorkloadSpec::toy();
        spec.users = FAST_SAMPLER_CUTOVER + 2_000;
        spec.jobs = 1_500;
        let a = generate(&spec, 3);
        let b = generate(&spec, 3);
        assert_eq!(a.jobs, b.jobs);
        assert!(
            a.stats.active_users > 300,
            "only {} distinct users from a {}-user population",
            a.stats.active_users,
            spec.users
        );
    }

    /// Regression pin: generation must be byte-stable across processes
    /// and platforms, not merely within one process (an iteration-order
    /// leak from a randomly seeded map would pass the in-process
    /// double-generation check above but break this fingerprint).
    #[test]
    fn generation_fingerprint_is_pinned() {
        let w = toy();
        let mut bytes = Vec::with_capacity(w.jobs.len() * 48);
        for j in &w.jobs {
            for word in [
                j.id.0 as u64,
                j.submit.0 as u64,
                j.run as u64,
                j.requested as u64,
                j.procs as u64,
                j.user as u64,
                j.user_ix as u64,
                j.swf_id,
            ] {
                bytes.extend_from_slice(&word.to_le_bytes());
            }
        }
        assert_eq!(
            predictsim_sim::hash::fnv1a64(&bytes),
            PINNED_TOY_FINGERPRINT,
            "toy workload (seed 7) changed — generation is no longer \
             deterministic across runs, or the pipeline changed on purpose \
             (update the pin only in the latter case)"
        );
    }

    /// FNV-1a over the toy workload's job words, recorded from a known
    /// good build.
    const PINNED_TOY_FINGERPRINT: u64 = 4361125763112862718;

    #[test]
    fn swf_export_round_trips_through_parser() {
        let w = toy();
        let text = predictsim_swf::write_log(&w.to_swf());
        let mut log = predictsim_swf::parse_log(&text).unwrap();
        assert_eq!(log.machine_size(), Some(w.machine_size as u64));
        let report = predictsim_swf::filter::clean_default(&mut log);
        assert_eq!(report.kept, w.jobs.len(), "cleaning should drop nothing");
        let jobs = predictsim_sim::jobs_from_swf(&log.records).unwrap();
        assert_eq!(
            &jobs[..],
            &w.jobs[..],
            "write → parse → clean → convert must reproduce every field, \
             interned user_ix included"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let w = toy();
        assert_eq!(w.stats.jobs, w.jobs.len());
        assert!(w.stats.active_users > 5);
        assert!(w.stats.mean_run > 10.0);
        assert!(w.stats.mean_procs >= 1.0);
        let work: f64 = w.jobs.iter().map(|j| j.run as f64 * j.procs as f64).sum();
        assert!((work - w.stats.total_work).abs() < 1e-6);
    }
}
