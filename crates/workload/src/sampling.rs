//! Self-contained samplers for the workload models.
//!
//! Only `rand`'s uniform primitives are used; the distributions the
//! generator needs (normal, lognormal, exponential, geometric, weighted
//! choice) are implemented here so the generated workloads are exactly
//! reproducible from a seed with no dependency on distribution-crate
//! implementation details.

use rand::Rng;

/// Standard normal via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log of zero).
    let u1: f64 = loop {
        let v = rng.gen::<f64>();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// Lognormal: `exp(N(mu, sigma))` — the classic running-time shape used
/// by workload models (Lublin & Feitelson's hyper-distributions are
/// mixtures of these).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Exponential with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = loop {
        let v = rng.gen::<f64>();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    -mean * u.ln()
}

/// Geometric number of successes with the given mean (≥ 0): number of
/// extra jobs in a session beyond the first.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean); // success probability per trial
    let mut count = 0;
    while rng.gen::<f64>() > p && count < 10_000 {
        count += 1;
    }
    count
}

/// Samples an index proportionally to `weights` (must be non-empty with a
/// positive sum).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive sum");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Precomputed weighted sampler: prefix sums + binary search, O(log n)
/// per draw against [`weighted_index`]'s O(n) subtract-chain.
///
/// Draws consume exactly one `rng.gen::<f64>()`, like `weighted_index`,
/// so the two are interchangeable without shifting the RNG stream — but
/// the float arithmetic differs (a prefix-sum comparison instead of a
/// running subtraction), so on rare boundary draws the *chosen index*
/// can differ. The generator therefore only switches to this sampler
/// above a population cutover no pinned preset reaches.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    /// Inclusive prefix sums of the weights.
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds the prefix-sum table (weights must be non-empty with a
    /// positive sum, as for [`weighted_index`]).
    pub fn new(weights: &[f64]) -> Self {
        debug_assert!(!weights.is_empty());
        let mut running = 0.0;
        let cumulative = weights
            .iter()
            .map(|&w| {
                running += w;
                running
            })
            .collect::<Vec<f64>>();
        debug_assert!(running > 0.0, "weights must have positive sum");
        Self { cumulative }
    }

    /// Samples an index proportionally to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}

/// A power-of-two-biased processor count in `[1, max]`: HPC logs show
/// strong modes at 1 and powers of two (with a tail of odd sizes).
pub fn proc_request<R: Rng + ?Sized>(rng: &mut R, max: u32, mean_log2: f64, sd_log2: f64) -> u32 {
    let exp = normal_with(rng, mean_log2, sd_log2).clamp(0.0, 30.0);
    let base = 2f64.powf(exp.round()) as u32;
    let q = if rng.gen::<f64>() < 0.15 {
        // A minority of requests are not powers of two.
        (base as f64 * rng.gen_range(0.6..1.4)).round() as u32
    } else {
        base
    };
    q.clamp(1, max.max(1))
}

/// The modal requested-time values users actually type (Tsafrir, Etsion &
/// Feitelson, *Modeling user runtime estimates* \[23\]): round wall-clock
/// figures, in seconds.
pub const MODAL_REQUEST_VALUES: [i64; 16] = [
    300,    // 5 min
    600,    // 10 min
    900,    // 15 min
    1800,   // 30 min
    3600,   // 1 h
    7200,   // 2 h
    14400,  // 4 h
    21600,  // 6 h
    28800,  // 8 h
    43200,  // 12 h
    64800,  // 18 h
    86400,  // 24 h
    129600, // 36 h
    172800, // 48 h
    259200, // 72 h
    360000, // 100 h
];

/// Rounds a raw requested time up to the next modal value (when below the
/// largest modal value), mimicking users picking round figures from a
/// mental list. Values beyond the largest modal entry are kept as-is.
pub fn round_to_modal(raw: i64) -> i64 {
    for &v in &MODAL_REQUEST_VALUES {
        if raw <= v {
            return v;
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 8.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        let expected = 8.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.1,
            "median {median} vs {expected}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 300.0)).sum::<f64>() / n as f64;
        assert!((mean / 300.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| geometric(&mut r, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean / 4.0 - 1.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio / 3.0 - 1.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let sampler = CumulativeSampler::new(&weights);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio / 3.0 - 1.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn cumulative_sampler_consumes_one_draw_like_weighted_index() {
        // Interchangeability contract: one f64 per draw, so swapping
        // samplers never shifts the RNG stream for later phases.
        let weights: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sampler = CumulativeSampler::new(&weights);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            sampler.sample(&mut a);
            weighted_index(&mut b, &weights);
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams diverged");
    }

    #[test]
    fn proc_request_bounds_and_powers() {
        let mut r = rng();
        let mut pow2 = 0;
        for _ in 0..2000 {
            let q = proc_request(&mut r, 128, 2.0, 1.5);
            assert!((1..=128).contains(&q));
            if q.is_power_of_two() {
                pow2 += 1;
            }
        }
        assert!(pow2 > 1400, "power-of-two bias too weak: {pow2}/2000");
    }

    #[test]
    fn modal_rounding() {
        assert_eq!(round_to_modal(1), 300);
        assert_eq!(round_to_modal(300), 300);
        assert_eq!(round_to_modal(301), 600);
        assert_eq!(round_to_modal(86_000), 86_400);
        assert_eq!(round_to_modal(999_999), 999_999); // beyond the list
    }

    #[test]
    fn determinism() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
