//! # predictsim-workload
//!
//! Synthetic HPC workload models for the *predictsim-rs* reproduction of
//! Gaussier et al. (SC '15).
//!
//! The paper's evaluation runs on six production logs from the Parallel
//! Workloads Archive and Metacentrum (Table 4). Those logs cannot be
//! redistributed with this repository, so this crate generates synthetic
//! stand-ins that reproduce — explicitly and controllably — the workload
//! phenomena the paper's method depends on:
//!
//! * **per-user running-time locality**: users resubmit the same
//!   applications in sessions, so consecutive running times correlate
//!   (the signal behind AVE₂ \[24\] and the Table 2 history features);
//! * **requested-time over-estimation**: per-user padding factors and
//!   modal rounding ("users tend to significantly increase the duration
//!   estimates", §2.1, after \[23\]);
//! * **diurnal and weekly cycles** feeding the periodic features;
//! * **crash noise**: jobs that die early with huge requests — the
//!   robustness hazard of §4.1;
//! * **high utilization**, which is what makes backfilling quality matter
//!   (§6.2).
//!
//! Real SWF logs remain first-class citizens: everything downstream
//! consumes `Vec<Job>`, which `predictsim-swf` produces from any PWA log.
//!
//! ```
//! use predictsim_workload::{generate, WorkloadSpec};
//!
//! let w = generate(&WorkloadSpec::toy(), 42);
//! assert_eq!(w.jobs.len(), 2000);
//! // Deterministic: the same seed always yields the same workload.
//! assert_eq!(generate(&WorkloadSpec::toy(), 42).jobs, w.jobs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod presets;
pub mod sampling;
pub mod spec;
pub mod users;

pub use generator::{generate, GeneratedWorkload, WorkloadStats};
pub use presets::{all_six, all_six_scaled, by_name};
pub use spec::WorkloadSpec;
