//! Workload specifications: the knobs a synthetic log is generated from.

use serde::{Deserialize, Serialize};

/// Everything needed to generate a synthetic workload log.
///
/// A spec captures the *shape* of one of the paper's production logs
/// (Table 4): machine size, job count, trace duration, utilization level,
/// and the behavioral knobs that create the phenomena the paper's method
/// exploits (per-user runtime locality, requested-time over-estimation,
/// day/week cycles, crash noise). Generation itself is deterministic
/// given a seed — see [`crate::generator::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name (e.g. `"KTH-SP2"`).
    pub name: String,
    /// Machine size `m`, processors.
    pub machine_size: u32,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Trace duration in seconds.
    pub duration: i64,
    /// Target machine utilization in `(0, 1)` — total work divided by
    /// `m · duration`. The paper selects logs "for their high resource
    /// utilization, which challenges scheduling algorithms" (§6.2).
    pub utilization: f64,
    /// Number of users submitting jobs.
    pub users: usize,
    /// Mean number of jobs per submission session (burst) beyond the
    /// first; sessions are the unit of temporal runtime locality.
    pub session_len_mean: f64,
    /// Probability that a job within a session repeats the previous job's
    /// class (high values = strong per-user locality, the signal AVE₂ and
    /// the ML features feed on).
    pub session_repeat_prob: f64,
    /// Fraction of jobs that crash early (replaced by a short runtime),
    /// the noise §4.1 demands robustness against.
    pub crash_rate: f64,
    /// Median of the per-user requested-time over-estimation factor
    /// (users request ~this multiple of the actual running time).
    pub overestimate_median: f64,
    /// Spread (lognormal sigma) of the over-estimation factor across
    /// users.
    pub overestimate_sigma: f64,
    /// Probability a user rounds the request up to a modal value
    /// ("round numbers" behavior of \[23\]).
    pub modal_round_prob: f64,
    /// Mean log2 of processor requests (larger machines host wider jobs).
    pub procs_mean_log2: f64,
    /// Spread of log2 processor requests.
    pub procs_sigma_log2: f64,
    /// Number of distinct job classes ("applications") per user.
    pub classes_per_user: usize,
}

impl WorkloadSpec {
    /// A small, fast default spec used by tests and doc examples: a
    /// 64-processor machine, 2 000 jobs over two weeks.
    pub fn toy() -> Self {
        Self {
            name: "toy".into(),
            machine_size: 64,
            jobs: 2_000,
            duration: 14 * 86_400,
            utilization: 0.82,
            users: 30,
            session_len_mean: 3.0,
            session_repeat_prob: 0.85,
            crash_rate: 0.10,
            overestimate_median: 3.0,
            overestimate_sigma: 0.7,
            modal_round_prob: 0.8,
            procs_mean_log2: 2.0,
            procs_sigma_log2: 1.3,
            classes_per_user: 3,
        }
    }

    /// Scales the job count and duration by `factor` (keeping the arrival
    /// rate, machine and utilization unchanged), for fast test/bench
    /// variants of the full Table 4 presets.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut s = self.clone();
        s.jobs = ((self.jobs as f64 * factor).round() as usize).max(50);
        s.duration = ((self.duration as f64 * factor) as i64).max(86_400);
        s.name = format!("{}@{factor}", self.name);
        s
    }

    /// Sanity checks on the knob ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.machine_size == 0 {
            return Err("machine_size must be positive".into());
        }
        if self.jobs == 0 {
            return Err("jobs must be positive".into());
        }
        if self.duration <= 0 {
            return Err("duration must be positive".into());
        }
        if !(0.0 < self.utilization && self.utilization < 1.5) {
            return Err(format!("utilization {} out of range", self.utilization));
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        if !(0.0..=1.0).contains(&self.crash_rate) {
            return Err("crash_rate must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.modal_round_prob) {
            return Err("modal_round_prob must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.session_repeat_prob) {
            return Err("session_repeat_prob must be a probability".into());
        }
        if self.overestimate_median < 1.0 {
            return Err("overestimate_median below 1 would invert estimates".into());
        }
        if self.classes_per_user == 0 {
            return Err("need at least one class per user".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_is_valid() {
        assert!(WorkloadSpec::toy().validate().is_ok());
    }

    #[test]
    fn scaling_shrinks_jobs_and_duration() {
        let toy = WorkloadSpec::toy();
        let s = toy.scaled(0.5);
        assert_eq!(s.jobs, 1000);
        assert_eq!(s.duration, 7 * 86_400);
        assert_eq!(s.machine_size, toy.machine_size);
        assert!(s.name.contains("toy@"));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn scaling_has_floors() {
        let s = WorkloadSpec::toy().scaled(0.0001);
        assert!(s.jobs >= 50);
        assert!(s.duration >= 86_400);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = WorkloadSpec::toy();
        s.machine_size = 0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::toy();
        s.utilization = 0.0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::toy();
        s.crash_rate = 1.5;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::toy();
        s.overestimate_median = 0.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let spec = WorkloadSpec::toy();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
