//! Property-based tests of the workload generator: every generated
//! workload must satisfy the structural contracts the simulator relies
//! on, for arbitrary (valid) spec knobs and seeds.

use proptest::prelude::*;

use predictsim_workload::{generate, WorkloadSpec};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        16u32..256,   // machine size
        60usize..300, // jobs
        1i64..8,      // duration (days)
        0.3f64..1.0,  // utilization
        1usize..40,   // users
        0.0f64..0.3,  // crash rate
        1.0f64..8.0,  // overestimate median
        0.0f64..1.0,  // modal prob
        1usize..5,    // classes per user
    )
        .prop_map(
            |(m, jobs, days, util, users, crash, over, modal, classes)| WorkloadSpec {
                name: "prop".into(),
                machine_size: m,
                jobs,
                duration: days * 86_400,
                utilization: util,
                users,
                session_len_mean: 3.0,
                session_repeat_prob: 0.85,
                crash_rate: crash,
                overestimate_median: over,
                overestimate_sigma: 0.7,
                modal_round_prob: modal,
                procs_mean_log2: 1.5,
                procs_sigma_log2: 1.0,
                classes_per_user: classes,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural contract: sorted, densely numbered, validated jobs that
    /// fit the machine, with requests bounding runtimes.
    #[test]
    fn generated_jobs_satisfy_simulator_contract(spec in arb_spec(), seed in 0u64..1000) {
        let w = generate(&spec, seed);
        prop_assert_eq!(w.jobs.len(), spec.jobs);
        for (i, j) in w.jobs.iter().enumerate() {
            prop_assert_eq!(j.id.index(), i);
            prop_assert!(j.validate().is_ok());
            prop_assert!(j.procs <= spec.machine_size);
            prop_assert!(j.requested >= j.run);
            prop_assert!(j.submit.0 >= 0 && j.submit.0 < spec.duration);
        }
        for pair in w.jobs.windows(2) {
            prop_assert!(pair[0].submit <= pair[1].submit);
        }
    }

    /// The generated stream simulates cleanly end to end (EASY) and
    /// passes the schedule audit.
    #[test]
    fn generated_workloads_simulate_cleanly(spec in arb_spec(), seed in 0u64..50) {
        let w = generate(&spec, seed);
        let mut sched = predictsim_sim::scheduler::EasyScheduler::new();
        let mut pred = predictsim_sim::predict::RequestedTimePredictor;
        let res = predictsim_sim::simulate(
            &w.jobs,
            w.sim_config(),
            &mut sched,
            &mut pred,
            None,
        ).expect("simulation");
        prop_assert_eq!(res.outcomes.len(), w.jobs.len());
        prop_assert!(predictsim_sim::audit(&res).is_ok());
    }

    /// SWF export of any generated workload re-parses to the same jobs.
    #[test]
    fn swf_export_is_lossless(spec in arb_spec(), seed in 0u64..50) {
        let w = generate(&spec, seed);
        let text = predictsim_swf::write_log(&w.to_swf());
        let log = predictsim_swf::parse_log(&text).expect("reparse");
        let jobs = predictsim_sim::jobs_from_swf(&log.records).expect("convert");
        prop_assert_eq!(jobs.len(), w.jobs.len());
        for (a, b) in jobs.iter().zip(&w.jobs) {
            prop_assert_eq!(a.run, b.run);
            prop_assert_eq!(a.requested, b.requested);
            prop_assert_eq!(a.procs, b.procs);
            prop_assert_eq!(a.submit, b.submit);
            // `to_swf` writes the exact inverse of `job_from_swf`'s
            // user mapping, so the round trip preserves user ids and a
            // replay from the exported file is byte-identical.
            prop_assert_eq!(a.user, b.user);
        }
    }

    /// Statistics reported by the generator are internally consistent.
    #[test]
    fn stats_consistency(spec in arb_spec(), seed in 0u64..50) {
        let w = generate(&spec, seed);
        let work: f64 = w.jobs.iter().map(|j| j.run as f64 * j.procs as f64).sum();
        prop_assert!((work - w.stats.total_work).abs() < 1e-6);
        prop_assert!(w.stats.active_users <= spec.users);
        prop_assert!(w.stats.crashed_jobs <= spec.jobs);
        prop_assert!(w.stats.mean_overestimate >= 1.0);
    }
}
