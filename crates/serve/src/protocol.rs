//! The wire protocol: newline-delimited JSON over a local socket.
//!
//! Every line in either direction is one JSON object. Requests carry a
//! `"type"` of `"submit"`, `"ping"`, or `"stats"`; every server line
//! carries a `"type"` of `"ack"`, `"metrics"`, `"result"`, `"error"`,
//! `"pong"`, or `"stats"`. The vendored `serde_derive` handles only
//! flat structs and unit enums, so frames are built and parsed by hand
//! over the [`serde::Value`] tree — which is also what makes the
//! `result` frame's payload *byte-identical* to batch output: the
//! daemon embeds `TripleResult::to_value()` and the client re-serializes
//! that subtree with the same writer `repro scenario` uses for
//! `scenario.json`.
//!
//! A submit request:
//!
//! ```json
//! {"type":"submit",
//!  "workload":{"log":"KTH-SP2","scale":0.05,"seed":20150101},
//!  "scheduler":"easy-sjbf","predictor":"ave2","correction":"incremental",
//!  "cluster":"cluster:100x1","timeout_ms":60000,"metrics_every":200000}
//! ```
//!
//! `workload` is one of the three source shapes of the registry
//! grammar: a Table 4 preset by name prefix (`{"log":..,"scale":..,
//! "seed":..}`), an SWF file on the daemon's filesystem
//! (`{"swf":"/path"}`), or an inline synthetic spec
//! (`{"toy":{"name":..,"jobs":..,"duration":..,"utilization":..},
//! "seed":..}`). Everything but `workload` is optional and defaults
//! like the `repro scenario` flags (easy / requested / none / the
//! workload's own machine).

use std::io::{BufRead, ErrorKind, Read};

use serde::Value;

/// Default cap on one request line, bytes. A submit request is a few
/// hundred bytes; anything near this cap is garbage or abuse.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default event cadence of streamed `metrics` frames.
pub const DEFAULT_METRICS_EVERY: u64 = 200_000;

/// Typed error codes carried by `error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, or not a known request shape.
    Malformed,
    /// The line exceeded the server's size cap and was discarded.
    Oversized,
    /// Scheduler/predictor/correction/cluster name the registry rejects.
    UnknownPolicy,
    /// The workload could not be built (missing preset, bad SWF path,
    /// invalid toy spec).
    BadWorkload,
    /// The submission queue is full; resubmit later.
    Busy,
    /// The request's `timeout_ms` elapsed; the simulation was cancelled
    /// through `SimObserver::keep_running`.
    Timeout,
    /// The server is draining; no new work is accepted and queued or
    /// in-flight jobs may be cancelled.
    Shutdown,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownPolicy => "unknown-policy",
            ErrorCode::BadWorkload => "bad-workload",
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A protocol-level failure: a typed code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The typed code, echoed on the wire.
    pub code: ErrorCode,
    /// What went wrong.
    pub message: String,
}

impl ProtoError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

/// The workload half of a submission — the three source shapes of the
/// registry grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadRequest {
    /// A Table 4 preset by case-insensitive name prefix, generated at
    /// `scale` with `seed`.
    Preset {
        /// Log name prefix, e.g. `"KTH"`.
        log: String,
        /// Scale factor (1.0 = the paper's full size).
        scale: f64,
        /// Generation seed.
        seed: u64,
    },
    /// An SWF log on the daemon's filesystem.
    Swf {
        /// Path to the `.swf` file.
        path: String,
    },
    /// An inline synthetic spec over [`predictsim_workload`]'s toy
    /// defaults.
    Toy {
        /// Display name (also part of the workload's cache identity via
        /// the generated jobs, not the name).
        name: String,
        /// Number of jobs.
        jobs: usize,
        /// Trace duration, seconds.
        duration: i64,
        /// Target utilization in `(0, 1.5)`.
        utilization: f64,
        /// Generation seed.
        seed: u64,
    },
}

impl WorkloadRequest {
    /// A canonical description: displayed in acks and used as the
    /// daemon's workload-memo key.
    pub fn describe(&self) -> String {
        match self {
            WorkloadRequest::Preset { log, scale, seed } => {
                format!("preset {log} @{scale} seed {seed}")
            }
            WorkloadRequest::Swf { path } => format!("swf {path}"),
            WorkloadRequest::Toy {
                name,
                jobs,
                duration,
                utilization,
                seed,
            } => {
                format!("toy {name} jobs={jobs} duration={duration} util={utilization} seed={seed}")
            }
        }
    }

    fn from_value(v: &Value) -> Result<Self, ProtoError> {
        let malformed = |m: String| ProtoError::new(ErrorCode::Malformed, m);
        let Value::Map(_) = v else {
            return Err(malformed("workload must be an object".into()));
        };
        if let Ok(path) = serde::get_field::<String>(v, "swf") {
            return Ok(WorkloadRequest::Swf { path });
        }
        if let Ok(log) = serde::get_field::<String>(v, "log") {
            let scale: f64 = opt_field(v, "scale")?.unwrap_or(1.0);
            let seed: u64 = opt_field(v, "seed")?.unwrap_or(predictsim_experiments::DEFAULT_SEED);
            return Ok(WorkloadRequest::Preset { log, scale, seed });
        }
        if let Ok(toy) = serde::get_field::<Value>(v, "toy") {
            if !matches!(toy, Value::Null) {
                let field = |name: &str| {
                    serde::get_field::<f64>(&toy, name).map_err(|e| malformed(e.0.clone()))
                };
                let name: String =
                    serde::get_field(&toy, "name").unwrap_or_else(|_| "toy".to_string());
                let jobs = field("jobs")? as usize;
                let duration = field("duration")? as i64;
                let utilization = field("utilization")?;
                let seed: u64 =
                    opt_field(v, "seed")?.unwrap_or(predictsim_experiments::DEFAULT_SEED);
                return Ok(WorkloadRequest::Toy {
                    name,
                    jobs,
                    duration,
                    utilization,
                    seed,
                });
            }
        }
        Err(malformed(
            "workload needs one of: {\"log\":..}, {\"swf\":..}, {\"toy\":{..}}".into(),
        ))
    }

    fn to_value(&self) -> Value {
        match self {
            WorkloadRequest::Preset { log, scale, seed } => Value::Map(vec![
                ("log".into(), Value::Str(log.clone())),
                ("scale".into(), Value::Float(*scale)),
                ("seed".into(), Value::UInt(*seed)),
            ]),
            WorkloadRequest::Swf { path } => {
                Value::Map(vec![("swf".into(), Value::Str(path.clone()))])
            }
            WorkloadRequest::Toy {
                name,
                jobs,
                duration,
                utilization,
                seed,
            } => Value::Map(vec![
                (
                    "toy".into(),
                    Value::Map(vec![
                        ("name".into(), Value::Str(name.clone())),
                        ("jobs".into(), Value::UInt(*jobs as u64)),
                        ("duration".into(), Value::Int(*duration)),
                        ("utilization".into(), Value::Float(*utilization)),
                    ]),
                ),
                ("seed".into(), Value::UInt(*seed)),
            ]),
        }
    }
}

/// One scenario submission: a workload plus the (optional) policy
/// triple, cluster, timeout and metrics cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// What to simulate.
    pub workload: WorkloadRequest,
    /// Scheduler registry name (default `easy`).
    pub scheduler: Option<String>,
    /// Predictor registry name (default `requested`).
    pub predictor: Option<String>,
    /// Correction registry name (default none).
    pub correction: Option<String>,
    /// Cluster spec string (default: the workload's own machine).
    pub cluster: Option<String>,
    /// Cancel the simulation after this many wall-clock milliseconds.
    pub timeout_ms: Option<u64>,
    /// Stream a `metrics` frame every this many simulated events
    /// (default [`DEFAULT_METRICS_EVERY`]).
    pub metrics_every: Option<u64>,
}

impl Submission {
    /// A submission of `workload` with every knob defaulted.
    pub fn new(workload: WorkloadRequest) -> Self {
        Self {
            workload,
            scheduler: None,
            predictor: None,
            correction: None,
            cluster: None,
            timeout_ms: None,
            metrics_every: None,
        }
    }

    /// The request line (without trailing newline).
    pub fn to_value(&self) -> Value {
        let mut entries = vec![
            ("type".into(), Value::Str("submit".into())),
            ("workload".into(), self.workload.to_value()),
        ];
        let mut opt = |name: &str, v: &Option<String>| {
            if let Some(v) = v {
                entries.push((name.into(), Value::Str(v.clone())));
            }
        };
        opt("scheduler", &self.scheduler);
        opt("predictor", &self.predictor);
        opt("correction", &self.correction);
        opt("cluster", &self.cluster);
        if let Some(ms) = self.timeout_ms {
            entries.push(("timeout_ms".into(), Value::UInt(ms)));
        }
        if let Some(every) = self.metrics_every {
            entries.push(("metrics_every".into(), Value::UInt(every)));
        }
        Value::Map(entries)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Cache/queue counters; answered with a `stats` frame.
    Stats,
    /// A scenario submission; answered with `ack`, then `metrics`
    /// frames, then `result` (or a job-tagged `error`).
    Submit(Box<Submission>),
}

impl Request {
    /// Parses one request line (already known to be valid JSON).
    pub fn from_value(v: &Value) -> Result<Self, ProtoError> {
        let kind: String = serde::get_field(v, "type").map_err(|_| {
            ProtoError::new(ErrorCode::Malformed, "request needs a string `type` field")
        })?;
        match kind.as_str() {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "submit" => {
                let workload = serde::get_field::<Value>(v, "workload")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?;
                if matches!(workload, Value::Null) {
                    return Err(ProtoError::new(
                        ErrorCode::Malformed,
                        "submit needs a `workload` object",
                    ));
                }
                Ok(Request::Submit(Box::new(Submission {
                    workload: WorkloadRequest::from_value(&workload)?,
                    scheduler: opt_field(v, "scheduler")?,
                    predictor: opt_field(v, "predictor")?,
                    correction: opt_field(v, "correction")?,
                    cluster: opt_field(v, "cluster")?,
                    timeout_ms: opt_field(v, "timeout_ms")?,
                    metrics_every: opt_field(v, "metrics_every")?,
                })))
            }
            other => Err(ProtoError::new(
                ErrorCode::Malformed,
                format!("unknown request type `{other}`"),
            )),
        }
    }

    /// Parses one raw request line.
    pub fn parse(line: &str) -> Result<Self, ProtoError> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?;
        Self::from_value(&value)
    }
}

fn opt_field<T: serde::Deserialize>(v: &Value, name: &str) -> Result<Option<T>, ProtoError> {
    serde::get_field::<Option<T>>(v, name).map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))
}

/// Builds the `ack` frame.
pub fn ack_frame(job: u64, triple: &str, workload: &str) -> Value {
    Value::Map(vec![
        ("type".into(), Value::Str("ack".into())),
        ("job".into(), Value::UInt(job)),
        ("triple".into(), Value::Str(triple.into())),
        ("workload".into(), Value::Str(workload.into())),
    ])
}

/// Builds a `metrics` frame from a heartbeat pulse.
pub fn metrics_frame(
    job: u64,
    events: u64,
    metrics: &predictsim_sim::MetricsObserver,
    utilization: Option<&predictsim_sim::UtilizationObserver>,
) -> Value {
    let mut entries = vec![
        ("type".into(), Value::Str("metrics".into())),
        ("job".into(), Value::UInt(job)),
        ("events".into(), Value::UInt(events)),
        ("submitted".into(), Value::UInt(metrics.submitted() as u64)),
        ("started".into(), Value::UInt(metrics.started() as u64)),
        ("finished".into(), Value::UInt(metrics.finished() as u64)),
        ("killed".into(), Value::UInt(metrics.killed() as u64)),
        ("corrections".into(), Value::UInt(metrics.corrections())),
        ("ave_bsld".into(), Value::Float(metrics.ave_bsld())),
        ("max_bsld".into(), Value::Float(metrics.max_bsld())),
        ("mean_wait".into(), Value::Float(metrics.mean_wait())),
    ];
    if let Some(util) = utilization {
        let partitions: Vec<Value> = (0..util.partitions())
            .map(|p| {
                let series: Vec<Value> = util
                    .compressed(p)
                    .into_iter()
                    .map(|(value, repeat)| {
                        Value::Seq(vec![Value::Float(value), Value::UInt(repeat as u64)])
                    })
                    .collect();
                Value::Map(vec![
                    ("partition".into(), Value::UInt(p as u64)),
                    ("bucket_seconds".into(), Value::Int(util.bucket_seconds())),
                    ("series".into(), Value::Seq(series)),
                ])
            })
            .collect();
        entries.push(("utilization".into(), Value::Seq(partitions)));
    }
    Value::Map(entries)
}

/// Builds the final `result` frame. `result` is the cell's
/// `TripleResult::to_value()` — re-serializing that subtree pretty
/// reproduces batch `scenario.json` byte-for-byte.
pub fn result_frame(job: u64, source: &str, result: Value) -> Value {
    Value::Map(vec![
        ("type".into(), Value::Str("result".into())),
        ("job".into(), Value::UInt(job)),
        ("source".into(), Value::Str(source.into())),
        ("result".into(), result),
    ])
}

/// Builds an `error` frame (`job` is absent for pre-ack failures).
pub fn error_frame(job: Option<u64>, error: &ProtoError) -> Value {
    Value::Map(vec![
        ("type".into(), Value::Str("error".into())),
        ("job".into(), job.map_or(Value::Null, Value::UInt)),
        ("code".into(), Value::Str(error.code.as_str().into())),
        ("message".into(), Value::Str(error.message.clone())),
    ])
}

/// Builds the `pong` frame.
pub fn pong_frame() -> Value {
    Value::Map(vec![("type".into(), Value::Str("pong".into()))])
}

/// A parsed server frame, as seen by clients.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// The submission was accepted under `job`.
    Ack {
        /// Assigned job id.
        job: u64,
        /// The resolved triple's canonical name.
        triple: String,
        /// The resolved workload description.
        workload: String,
    },
    /// An in-flight progress snapshot.
    Metrics {
        /// The job this frame belongs to.
        job: u64,
        /// Raw engine events so far.
        events: u64,
        /// Jobs finished so far.
        finished: u64,
        /// Jobs submitted so far.
        submitted: u64,
        /// Incremental mean bounded slowdown.
        ave_bsld: f64,
        /// The whole frame, for consumers that want the utilization
        /// series and the remaining counters.
        raw: Value,
    },
    /// The final result.
    Result {
        /// The job this frame belongs to.
        job: u64,
        /// Which cache layer served it (`simulated`, `memory`, `disk`,
        /// `coalesced`).
        source: String,
        /// The `TripleResult` subtree, byte-identical to batch output
        /// when pretty-printed.
        result: Value,
    },
    /// A typed failure.
    Error {
        /// The job it belongs to, when past the ack.
        job: Option<u64>,
        /// The typed code (see [`ErrorCode`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness reply.
    Pong,
    /// Cache/queue counters.
    Stats(Value),
}

impl Frame {
    /// Parses one server line.
    pub fn parse(line: &str) -> Result<Self, ProtoError> {
        let v: Value =
            serde_json::from_str(line).map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?;
        let kind: String =
            serde::get_field(&v, "type").map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?;
        let field = |name: &str| -> Result<u64, ProtoError> {
            serde::get_field(&v, name).map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))
        };
        match kind.as_str() {
            "ack" => Ok(Frame::Ack {
                job: field("job")?,
                triple: serde::get_field(&v, "triple")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
                workload: serde::get_field(&v, "workload")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
            }),
            "metrics" => Ok(Frame::Metrics {
                job: field("job")?,
                events: field("events")?,
                finished: field("finished")?,
                submitted: field("submitted")?,
                ave_bsld: serde::get_field(&v, "ave_bsld")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
                raw: v.clone(),
            }),
            "result" => Ok(Frame::Result {
                job: field("job")?,
                source: serde::get_field(&v, "source")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
                result: serde::get_field(&v, "result")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
            }),
            "error" => Ok(Frame::Error {
                job: serde::get_field(&v, "job")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
                code: serde::get_field(&v, "code")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
                message: serde::get_field(&v, "message")
                    .map_err(|e| ProtoError::new(ErrorCode::Malformed, e.0))?,
            }),
            "pong" => Ok(Frame::Pong),
            "stats" => Ok(Frame::Stats(v)),
            other => Err(ProtoError::new(
                ErrorCode::Malformed,
                format!("unknown frame type `{other}`"),
            )),
        }
    }
}

/// What [`LineReader::next_line`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Line {
    /// A complete line (without the newline).
    Text(String),
    /// A line that exceeded the cap; it was consumed and discarded.
    Oversized,
}

/// A newline-delimited reader with a hard per-line byte cap, resumable
/// across read timeouts (a `WouldBlock`/`TimedOut` error from the
/// underlying stream preserves the partial line; call again).
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    overflowing: bool,
    max: usize,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps `inner`, capping lines at `max` bytes.
    pub fn new(inner: R, max: usize) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            overflowing: false,
            max,
        }
    }

    /// Reads the next line: `Ok(None)` on clean EOF, `Err` on transport
    /// errors (including timeouts — the partial line survives a retry).
    pub fn next_line(&mut self) -> std::io::Result<Option<Line>> {
        loop {
            // Fault site for the socket's read half: a transient fire
            // surfaces as `Interrupted` (the accumulated partial line
            // survives for the caller's retry), a hard fire as a
            // connection-fatal error.
            if let Some(injected) = predictsim_faultline::io_fault("serve.read") {
                return Err(injected);
            }
            let available = self.inner.fill_buf()?;
            if available.is_empty() {
                // EOF; a trailing partial line is dropped (the peer
                // never finished it).
                self.buf.clear();
                return Ok(None);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    let overflowed = self.overflowing || self.buf.len() + newline > self.max;
                    if !overflowed {
                        self.buf.extend_from_slice(&available[..newline]);
                    }
                    self.inner.consume(newline + 1);
                    self.overflowing = false;
                    if overflowed {
                        self.buf.clear();
                        return Ok(Some(Line::Oversized));
                    }
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(Some(Line::Text(line)));
                }
                None => {
                    let len = available.len();
                    if !self.overflowing {
                        self.buf.extend_from_slice(available);
                        if self.buf.len() > self.max {
                            self.buf.clear();
                            self.overflowing = true;
                        }
                    }
                    self.inner.consume(len);
                }
            }
        }
    }
}

/// `true` for the transient errors a read timeout produces — callers
/// loop on these.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one line from a plain blocking reader (helper for tests and
/// the reference client, where no timeout is set).
pub fn read_line_blocking<R: Read>(
    reader: &mut std::io::BufReader<R>,
) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_its_value() {
        let submission = Submission {
            workload: WorkloadRequest::Toy {
                name: "G1".into(),
                jobs: 260,
                duration: 259_200,
                utilization: 0.8,
                seed: 20_150_101,
            },
            scheduler: Some("easy-sjbf".into()),
            predictor: Some("ave2".into()),
            correction: Some("incremental".into()),
            cluster: Some("cluster:64x1".into()),
            timeout_ms: Some(5_000),
            metrics_every: Some(100),
        };
        let line = serde_json::to_string(&submission.to_value()).unwrap();
        match Request::parse(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(*parsed, submission),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn preset_and_swf_workloads_parse() {
        let req =
            Request::parse(r#"{"type":"submit","workload":{"log":"KTH","scale":0.05,"seed":7}}"#)
                .unwrap();
        match req {
            Request::Submit(s) => {
                assert_eq!(
                    s.workload,
                    WorkloadRequest::Preset {
                        log: "KTH".into(),
                        scale: 0.05,
                        seed: 7
                    }
                );
                assert_eq!(s.scheduler, None);
            }
            other => panic!("{other:?}"),
        }
        let req = Request::parse(r#"{"type":"submit","workload":{"swf":"/tmp/x.swf"}}"#).unwrap();
        match req {
            Request::Submit(s) => assert_eq!(
                s.workload,
                WorkloadRequest::Swf {
                    path: "/tmp/x.swf".into()
                }
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_not_fatal() {
        for line in [
            "{not json}",
            r#"{"type":"launch"}"#,
            r#"{"type":"submit"}"#,
            r#"{"type":"submit","workload":{}}"#,
            r#"[1,2,3]"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::Malformed, "line {line}: {err}");
        }
        assert_eq!(Request::parse(r#"{"type":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"type":"stats"}"#).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn frames_parse_back() {
        let ack = serde_json::to_string(&ack_frame(3, "ave2+easy", "toy g")).unwrap();
        assert_eq!(
            Frame::parse(&ack).unwrap(),
            Frame::Ack {
                job: 3,
                triple: "ave2+easy".into(),
                workload: "toy g".into()
            }
        );
        let err = serde_json::to_string(&error_frame(
            None,
            &ProtoError::new(ErrorCode::Busy, "queue full"),
        ))
        .unwrap();
        match Frame::parse(&err).unwrap() {
            Frame::Error { job, code, message } => {
                assert_eq!(job, None);
                assert_eq!(code, "busy");
                assert_eq!(message, "queue full");
            }
            other => panic!("{other:?}"),
        }
        let pong = serde_json::to_string(&pong_frame()).unwrap();
        assert_eq!(Frame::parse(&pong).unwrap(), Frame::Pong);
    }

    #[test]
    fn metrics_frame_carries_utilization_series() {
        use predictsim_sim::{ClusterSpec, MetricsObserver, UtilizationObserver};
        let metrics = MetricsObserver::new(4);
        let util = UtilizationObserver::new(ClusterSpec::single(4), 100);
        let frame = metrics_frame(9, 1_000, &metrics, Some(&util));
        let line = serde_json::to_string(&frame).unwrap();
        match Frame::parse(&line).unwrap() {
            Frame::Metrics {
                job, events, raw, ..
            } => {
                assert_eq!((job, events), (9, 1_000));
                let util: Vec<Value> = serde::get_field(&raw, "utilization").unwrap();
                assert_eq!(util.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn line_reader_caps_and_recovers() {
        let input = format!("short\n{}\nafter\n", "x".repeat(64));
        let mut reader =
            LineReader::new(std::io::BufReader::with_capacity(8, input.as_bytes()), 16);
        assert_eq!(
            reader.next_line().unwrap(),
            Some(Line::Text("short".into()))
        );
        assert_eq!(reader.next_line().unwrap(), Some(Line::Oversized));
        assert_eq!(
            reader.next_line().unwrap(),
            Some(Line::Text("after".into()))
        );
        assert_eq!(reader.next_line().unwrap(), None);
    }
}
