//! The daemon: accept loop, per-connection readers, a bounded
//! submission queue, and a worker pool running cells through the
//! process-wide [`SimCache`].
//!
//! Threading model (all `std`, no async runtime):
//!
//! - one **accept** thread polls a non-blocking `TcpListener` and
//!   spawns a reader thread per connection;
//! - **connection** threads parse request lines (with a read timeout so
//!   they notice shutdown), answer `ping`/`stats` inline, validate
//!   submissions, and enqueue them;
//! - **worker** threads drain the queue and run each job through
//!   [`SimCache::run_cell_observed_traced`] with a
//!   [`Heartbeat`](predictsim_experiments::progress::Heartbeat)
//!   observer that streams `metrics` frames back over the submitting
//!   connection and carries the cancellation hook (deadline, shutdown,
//!   client gone).
//!
//! Because every worker goes through the shared cache's single-flight
//! layer, two clients submitting the same cold cell coalesce: exactly
//! one simulation runs, the other client's `result` frame reports
//! `"source":"coalesced"` (and streams no metrics — only the leader
//! observes events).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use predictsim_experiments::progress::Heartbeat;
use predictsim_experiments::registry::parse_cluster;
use predictsim_experiments::{
    CellSource, ExperimentSetup, HeuristicTriple, LoadedWorkload, PredictionTechnique, Scenario,
    ScenarioError, SimCache, SwfSource, SyntheticSource, Variant, WorkloadSource,
};
use predictsim_sim::{ClusterSpec, SimError, UtilizationObserver};
use predictsim_workload::WorkloadSpec;
use serde::{Serialize, Value};

use crate::protocol::{
    ack_frame, error_frame, is_timeout, metrics_frame, pong_frame, result_frame, ErrorCode, Line,
    LineReader, ProtoError, Request, Submission, WorkloadRequest, DEFAULT_MAX_LINE_BYTES,
    DEFAULT_METRICS_EVERY,
};

/// Server tunables. `Default` suits interactive use; tests shrink the
/// queue and line cap to force the rejection paths.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) submissions;
    /// beyond it submissions are rejected with `busy`.
    pub queue_depth: usize,
    /// Per-request-line byte cap; longer lines are rejected with
    /// `oversized`.
    pub max_line_bytes: usize,
    /// Default `metrics` cadence (events) when a submission does not
    /// set `metrics_every`.
    pub metrics_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            metrics_every: DEFAULT_METRICS_EVERY,
        }
    }
}

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// The accept loop polls faster: its sleep is pure connection-setup
/// latency for every new client, and an idle poll is just one failed
/// `accept(2)`.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// One connection's write half, shared between its reader thread and
/// any worker streaming frames for its jobs. Writes are line-atomic
/// under the lock; a failed write marks the connection dead, which
/// cancels its in-flight jobs.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: Mutex::new(stream),
            alive: AtomicBool::new(true),
        }
    }

    fn alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    fn send(&self, frame: &Value) -> bool {
        let Ok(line) = serde_json::to_string(frame) else {
            return false;
        };
        // A thread that panicked mid-write poisons the lock, and the
        // stream position is then unknowable — a torn frame may already
        // be on the wire. Recover the guard (the data is fine, only the
        // panicking writer was interrupted) but mark the connection
        // dead instead of interleaving more bytes into a corrupt frame
        // stream; its in-flight jobs cancel through the alive flag.
        let mut stream = match self.stream.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.alive.store(false, Ordering::Relaxed);
                drop(poisoned.into_inner());
                return false;
            }
        };
        let ok = match predictsim_faultline::io_fault("serve.write") {
            // An injected socket fault of either kind models the frame
            // never reaching the peer: the connection is done.
            Some(_) => false,
            None => stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_ok(),
        };
        if !ok {
            self.alive.store(false, Ordering::Relaxed);
        }
        ok
    }
}

/// A validated submission waiting for a worker.
struct Pending {
    id: u64,
    submission: Submission,
    conn: Arc<ConnWriter>,
}

struct Shared {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Pending>>,
    wake: Condvar,
    next_job: AtomicU64,
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
    workloads: Mutex<HashMap<String, LoadedWorkload>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running daemon. [`Server::start`] binds and spawns the threads;
/// [`Server::shutdown`] drains gracefully; dropping without shutdown
/// also shuts down (so tests cannot leak threads).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and spawns the accept loop plus `cfg.workers`
    /// simulation workers.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            next_job: AtomicU64::new(1),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            workloads: Mutex::new(HashMap::new()),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs currently being simulated.
    pub fn active_jobs(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, reject everything still queued
    /// with `shutdown` errors, cancel in-flight simulations through
    /// their observers' cancel hooks, join every thread, and flush the
    /// persistent cache index.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.wake.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for conn in conns {
            let _ = conn.join();
        }
        SimCache::global().flush_persistent();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.shutting_down() {
            self.drain();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared_conn = shared.clone();
                let handle = std::thread::spawn(move || handle_conn(stream, shared_conn));
                shared.conns.lock().expect("conns lock").push(handle);
            }
            Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_conn(stream: TcpStream, shared: Arc<Shared>) {
    // A read timeout so this thread notices shutdown (and dead peers)
    // instead of blocking forever in `read`.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let mut reader = LineReader::new(BufReader::new(stream), shared.cfg.max_line_bytes);
    loop {
        if shared.shutting_down() {
            return;
        }
        match reader.next_line() {
            Ok(None) => return, // EOF: client closed its write half and everything was read
            Ok(Some(Line::Oversized)) => {
                let err = ProtoError::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
                );
                if !writer.send(&error_frame(None, &err)) {
                    return;
                }
            }
            Ok(Some(Line::Text(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                if !handle_request(&line, &writer, &shared) {
                    return;
                }
            }
            Err(e) if is_timeout(&e) => {
                // Keep waiting — but stop once the peer is provably gone
                // (a streamed frame failed to write).
                if !writer.alive() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                // A transient read hiccup (signal, injected fault): the
                // partial line survives inside the reader; just retry.
            }
            Err(_) => return,
        }
    }
}

/// Handles one request line; `false` ends the connection (write side
/// dead).
fn handle_request(line: &str, writer: &Arc<ConnWriter>, shared: &Arc<Shared>) -> bool {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(err) => return writer.send(&error_frame(None, &err)),
    };
    match request {
        Request::Ping => writer.send(&pong_frame()),
        Request::Stats => writer.send(&stats_frame(shared)),
        Request::Submit(submission) => {
            // Validate the policy names and cluster spec up front so a
            // bad request fails fast, before queueing.
            let (triple, _) = match validate(&submission) {
                Ok(resolved) => resolved,
                Err(err) => return writer.send(&error_frame(None, &err)),
            };
            if shared.shutting_down() {
                let err = ProtoError::new(ErrorCode::Shutdown, "server is draining");
                return writer.send(&error_frame(None, &err));
            }
            // Depth check, ack, and enqueue under one lock: the ack hits
            // the socket before any worker can stream this job's frames,
            // and concurrent submitters cannot overshoot the bound.
            let mut queue = shared.queue.lock().expect("queue lock");
            if queue.len() >= shared.cfg.queue_depth {
                drop(queue);
                let err = ProtoError::new(
                    ErrorCode::Busy,
                    format!(
                        "submission queue full ({} pending); resubmit later",
                        shared.cfg.queue_depth
                    ),
                );
                return writer.send(&error_frame(None, &err));
            }
            let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
            let ok = writer.send(&ack_frame(
                id,
                &triple.name(),
                &submission.workload.describe(),
            ));
            queue.push_back(Pending {
                id,
                submission: *submission,
                conn: writer.clone(),
            });
            drop(queue);
            shared.wake.notify_one();
            ok
        }
    }
}

fn stats_frame(shared: &Arc<Shared>) -> Value {
    let stats = SimCache::global().stats();
    let queued = shared.queue.lock().expect("queue lock").len();
    Value::Map(vec![
        ("type".into(), Value::Str("stats".into())),
        ("simulated".into(), Value::UInt(stats.simulated)),
        ("memory_hits".into(), Value::UInt(stats.memory_hits)),
        ("disk_hits".into(), Value::UInt(stats.disk_hits)),
        ("coalesced".into(), Value::UInt(stats.coalesced)),
        ("disk_rejects".into(), Value::UInt(stats.disk_rejects)),
        ("evicted".into(), Value::UInt(stats.disk_evictions)),
        ("disk_retries".into(), Value::UInt(stats.disk_retries)),
        ("degraded".into(), Value::UInt(u64::from(stats.degraded))),
        ("panicked_cells".into(), Value::UInt(stats.panicked_cells)),
        ("queued".into(), Value::UInt(queued as u64)),
        (
            "active".into(),
            Value::UInt(shared.active.load(Ordering::Relaxed) as u64),
        ),
    ])
}

/// Resolves the submission's policy strings against the registry
/// (without loading the workload).
fn validate(submission: &Submission) -> Result<(HeuristicTriple, Option<ClusterSpec>), ProtoError> {
    let registry = |e: predictsim_experiments::RegistryError| {
        ProtoError::new(ErrorCode::UnknownPolicy, e.to_string())
    };
    let variant: Variant = match &submission.scheduler {
        Some(name) => name.parse().map_err(registry)?,
        None => Variant::Easy,
    };
    let prediction: PredictionTechnique = match &submission.predictor {
        Some(name) => name.parse().map_err(registry)?,
        None => PredictionTechnique::RequestedTime,
    };
    let correction = match &submission.correction {
        Some(name) => Some(name.parse().map_err(registry)?),
        None => None,
    };
    let cluster = match &submission.cluster {
        Some(spec) => Some(parse_cluster(spec).map_err(registry)?),
        None => None,
    };
    Ok((
        HeuristicTriple {
            prediction,
            correction,
            variant,
        },
        cluster,
    ))
}

/// Loads (or recalls from the daemon's memo) the submission's workload.
fn load_workload(request: &WorkloadRequest, shared: &Shared) -> Result<LoadedWorkload, ProtoError> {
    let memo_key = request.describe();
    if let Some(hit) = shared
        .workloads
        .lock()
        .expect("workloads lock")
        .get(&memo_key)
    {
        return Ok(hit.clone());
    }
    let loaded = build_workload(request)?;
    shared
        .workloads
        .lock()
        .expect("workloads lock")
        .insert(memo_key, loaded.clone());
    Ok(loaded)
}

/// Resolves and loads a workload request (no memoization).
pub fn build_workload(request: &WorkloadRequest) -> Result<LoadedWorkload, ProtoError> {
    let bad = |m: String| ProtoError::new(ErrorCode::BadWorkload, m);
    let loaded = match request {
        WorkloadRequest::Preset { log, scale, seed } => {
            let setup = ExperimentSetup {
                scale: *scale,
                seed: *seed,
            };
            let spec = setup
                .spec(log)
                .ok_or_else(|| bad(format!("no Table 4 preset matches `{log}`")))?;
            SyntheticSource::new(spec, *seed)
                .load()
                .map_err(|e| bad(e.to_string()))?
        }
        WorkloadRequest::Swf { path } => SwfSource::new(path)
            .load()
            .map_err(|e| bad(e.to_string()))?,
        WorkloadRequest::Toy {
            name,
            jobs,
            duration,
            utilization,
            seed,
        } => {
            let mut spec = WorkloadSpec::toy();
            spec.name = name.clone();
            spec.jobs = *jobs;
            spec.duration = *duration;
            spec.utilization = *utilization;
            SyntheticSource::new(spec, *seed)
                .load()
                .map_err(|e| bad(e.to_string()))?
        }
    };
    Ok(loaded)
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let pending = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(pending) = queue.pop_front() {
                    break Some(pending);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (q, _) = shared
                    .wake
                    .wait_timeout(queue, POLL)
                    .expect("queue lock poisoned");
                queue = q;
            }
        };
        let Some(pending) = pending else { return };
        if shared.shutting_down() {
            // Drain semantics: work that never started is rejected, not
            // silently dropped.
            let err = ProtoError::new(ErrorCode::Shutdown, "server is draining");
            pending.conn.send(&error_frame(Some(pending.id), &err));
            continue;
        }
        shared.active.fetch_add(1, Ordering::Relaxed);
        // Panic isolation: the cache already catches panics inside the
        // cell simulation, so this guards the rest of the job path
        // (workload build, frame serialization, observer sinks). A
        // poisoned job becomes a typed `internal` frame; the worker —
        // and the daemon — keep serving.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(&pending, &shared)));
        shared.active.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            let err = ProtoError::new(
                ErrorCode::Internal,
                "internal error: worker panicked while running the job",
            );
            pending.conn.send(&error_frame(Some(pending.id), &err));
        }
    }
}

/// Runs one submission to its `result` (or job-tagged `error`) frame.
fn run_job(pending: &Pending, shared: &Arc<Shared>) {
    let id = pending.id;
    let submission = &pending.submission;
    let conn = &pending.conn;
    let fail = |err: ProtoError| {
        conn.send(&error_frame(Some(id), &err));
    };
    let (triple, cluster_override) = match validate(submission) {
        Ok(v) => v,
        Err(err) => return fail(err),
    };
    let workload = match load_workload(&submission.workload, shared) {
        Ok(w) => w,
        Err(err) => return fail(err),
    };
    let cluster = cluster_override.unwrap_or_else(|| ClusterSpec::single(workload.machine_size));

    // The heartbeat streams `metrics` frames and carries cancellation:
    // deadline, server drain, or the submitting client vanishing.
    let deadline = submission
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let every = submission.metrics_every.unwrap_or(shared.cfg.metrics_every);
    let sink_conn = conn.clone();
    let mut heartbeat = Heartbeat::new(
        cluster.total_procs(),
        every,
        Box::new(move |pulse| {
            sink_conn.send(&metrics_frame(
                id,
                pulse.events,
                pulse.metrics,
                pulse.utilization,
            ));
        }),
    )
    .with_utilization(UtilizationObserver::hourly(cluster));
    let cancel_conn = conn.clone();
    let cancel_shared = shared.clone();
    heartbeat = heartbeat.with_cancel(Box::new(move || {
        cancel_shared.shutting_down()
            || !cancel_conn.alive()
            || deadline.is_some_and(|d| Instant::now() >= d)
    }));

    let run = SimCache::global().run_cell_observed_traced(
        &workload.jobs,
        cluster,
        &triple,
        &mut heartbeat,
    );
    match run {
        Ok((cell, source)) => {
            let source = match source {
                CellSource::Simulated => "simulated",
                CellSource::Memory => "memory",
                CellSource::Disk => "disk",
                CellSource::Coalesced => "coalesced",
            };
            conn.send(&result_frame(id, source, cell.result.to_value()));
        }
        Err(ScenarioError::Sim(SimError::Aborted { .. })) => {
            let err = if shared.shutting_down() {
                ProtoError::new(ErrorCode::Shutdown, "cancelled: server draining")
            } else if deadline.is_some_and(|d| Instant::now() >= d) {
                ProtoError::new(
                    ErrorCode::Timeout,
                    format!(
                        "cancelled after {} ms",
                        submission.timeout_ms.unwrap_or_default()
                    ),
                )
            } else {
                ProtoError::new(ErrorCode::Internal, "cancelled: client disconnected")
            };
            fail(err);
        }
        Err(other) => fail(ProtoError::new(ErrorCode::Internal, other.to_string())),
    }
}

/// A convenience wrapper for tests: the batch-identical `TripleResult`
/// JSON for a submission, computed in-process without a socket (what
/// `repro scenario` writes as `scenario.json`).
pub fn batch_result_json(submission: &Submission) -> Result<String, ProtoError> {
    let (triple, cluster_override) = validate(submission)?;
    let workload = build_workload(&submission.workload)?;
    let cluster = cluster_override.unwrap_or_else(|| ClusterSpec::single(workload.machine_size));
    let result = Scenario::from_triple(&triple)
        .run_on(&workload.jobs, predictsim_sim::SimConfig { cluster })
        .map_err(|e| ProtoError::new(ErrorCode::Internal, e.to_string()))?;
    let summary = predictsim_experiments::TripleResult::from_sim(&triple, &result);
    serde_json::to_string_pretty(&summary).map_err(|e| ProtoError::new(ErrorCode::Internal, e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn conn_writer_survives_a_poisoned_stream_lock() {
        let (stream, _peer) = socket_pair();
        let writer = Arc::new(ConnWriter::new(stream));
        let poisoner = writer.clone();
        let outcome = std::thread::spawn(move || {
            let _guard = poisoner.stream.lock().expect("first lock is clean");
            panic!("writer thread dies mid-frame");
        })
        .join();
        assert!(outcome.is_err(), "the writer thread must have panicked");
        assert!(
            writer.alive(),
            "the panic alone does not kill the connection"
        );
        // The next send must recover the poisoned guard instead of
        // panicking, report failure, and mark the connection dead so
        // its in-flight jobs cancel.
        let frame = Value::Map(vec![("type".into(), Value::Str("pong".into()))]);
        assert!(
            !writer.send(&frame),
            "send on a poisoned writer reports failure"
        );
        assert!(!writer.alive(), "the connection is marked dead");
        assert!(!writer.send(&frame), "and stays dead");
    }
}
