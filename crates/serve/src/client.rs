//! A blocking reference client for the serve protocol.
//!
//! Wraps one connection: write request lines, read frames. Used by the
//! `serve_client` example, the protocol tests, and the CI smoke job —
//! anything scriptable that should not hand-roll JSON over `nc`.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

use crate::protocol::{Frame, ProtoError, Submission};

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Like [`Client::connect`], retrying for up to `patience` while the
    /// daemon comes up (the CI smoke job races daemon start).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> std::io::Result<Client> {
        let mut waited = Duration::ZERO;
        let step = Duration::from_millis(50);
        loop {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if waited >= patience => return Err(e),
                Err(_) => {
                    std::thread::sleep(step);
                    waited += step;
                }
            }
        }
    }

    /// Sends one raw request line (no newline).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Sends one request value.
    pub fn send_value(&mut self, value: &Value) -> std::io::Result<()> {
        let line = serde_json::to_string(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        self.send_line(&line)
    }

    /// Submits a scenario. Follow with [`Client::next_frame`] for the
    /// ack, metrics stream, and result.
    pub fn submit(&mut self, submission: &Submission) -> std::io::Result<()> {
        self.send_value(&submission.to_value())
    }

    /// Sends a `ping`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send_line(r#"{"type":"ping"}"#)
    }

    /// Sends a `stats` request.
    pub fn stats(&mut self) -> std::io::Result<()> {
        self.send_line(r#"{"type":"stats"}"#)
    }

    /// Half-closes the write side: the server keeps streaming frames
    /// for jobs already submitted, then sees EOF.
    pub fn finish_writing(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(Shutdown::Write)
    }

    /// Reads the next frame; `Ok(None)` when the server closed the
    /// connection.
    pub fn next_frame(&mut self) -> std::io::Result<Option<Result<Frame, ProtoError>>> {
        match crate::protocol::read_line_blocking(&mut self.reader)? {
            None => Ok(None),
            Some(line) => Ok(Some(Frame::parse(&line))),
        }
    }

    /// Reads frames until the final `result`/`error` for `job`,
    /// returning every frame seen (including other jobs' frames, for
    /// multi-submission connections).
    pub fn drain_job(&mut self, job: u64) -> std::io::Result<Vec<Frame>> {
        let mut frames = Vec::new();
        loop {
            match self.next_frame()? {
                None => return Ok(frames),
                Some(Ok(frame)) => {
                    let done = matches!(
                        &frame,
                        Frame::Result { job: j, .. } if *j == job
                    ) || matches!(
                        &frame,
                        Frame::Error { job: Some(j), .. } if *j == job
                    );
                    frames.push(frame);
                    if done {
                        return Ok(frames);
                    }
                }
                Some(Err(e)) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
        }
    }
}
