//! Simulation-as-a-service: a long-running daemon over the shared
//! [`SimCache`](predictsim_experiments::SimCache).
//!
//! Batch `repro` pays process startup, workload generation, and cache
//! attach on every invocation. `repro serve` starts this daemon once:
//! it listens on a local `127.0.0.1` TCP socket speaking
//! newline-delimited JSON (no network dependencies — framing is
//! hand-rolled over `std::net`), accepts scenario submissions in the
//! registry grammar, runs them on a bounded worker pool against the
//! process-wide sharded [`SimCache`](predictsim_experiments::SimCache),
//! and streams per-job frames back:
//!
//! 1. `ack` — job id, resolved triple, resolved workload;
//! 2. `metrics` — every N simulated events: incremental AVEbsld, jobs
//!    started/finished, and a per-partition utilization time series on
//!    simulated-time buckets
//!    ([`UtilizationObserver`](predictsim_sim::UtilizationObserver));
//! 3. `result` — the exact `TripleResult` JSON batch mode produces
//!    (byte-identical to `repro scenario`'s `scenario.json`).
//!
//! Robustness is part of the protocol: per-request timeouts cancel
//! cooperatively through `SimObserver::keep_running`, the submission
//! queue is bounded (`busy` rejection, not OOM), malformed requests get
//! typed `error` frames instead of disconnects, and shutdown drains —
//! queued jobs are rejected, in-flight simulations cancel, and the
//! persistent cache index is flushed.
//!
//! ```no_run
//! use predictsim_serve::{Client, Frame, ServeConfig, Server, Submission, WorkloadRequest};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! client
//!     .submit(&Submission::new(WorkloadRequest::Preset {
//!         log: "KTH".into(),
//!         scale: 0.05,
//!         seed: 20150101,
//!     }))
//!     .unwrap();
//! while let Some(Ok(frame)) = client.next_frame().unwrap() {
//!     if let Frame::Result { source, .. } = frame {
//!         println!("served from {source}");
//!         break;
//!     }
//! }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;

/// The deterministic fault-injection layer (`REPRO_FAULTS`, chaos
/// tests) — re-exported so daemon embedders and integration tests
/// reach it without a separate dependency edge.
pub use predictsim_faultline as faultline;
pub use protocol::{
    ErrorCode, Frame, Line, LineReader, ProtoError, Request, Submission, WorkloadRequest,
    DEFAULT_MAX_LINE_BYTES, DEFAULT_METRICS_EVERY,
};
pub use server::{batch_result_json, build_workload, ServeConfig, Server};
