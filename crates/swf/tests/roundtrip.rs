//! Property-based round-trip tests for the SWF toolkit.

use proptest::prelude::*;

use predictsim_swf::{clean, parse_log, write_log, CleaningRules, SwfRecord, MISSING};

/// Strategy producing an arbitrary but structurally valid SWF record.
fn arb_record() -> impl Strategy<Value = SwfRecord> {
    (
        0u64..1_000_000,
        0i64..10_000_000,
        prop_oneof![Just(MISSING), 0i64..1_000_000],
        prop_oneof![Just(MISSING), 0i64..1_000_000],
        prop_oneof![Just(MISSING), 1i64..100_000],
        prop_oneof![Just(MISSING), 1i64..100_000],
        prop_oneof![Just(MISSING), 1i64..2_000_000],
        prop_oneof![Just(MISSING), Just(0i64), Just(1i64), Just(5i64)],
        prop_oneof![Just(MISSING), 0i64..10_000],
    )
        .prop_map(
            |(job_id, submit, wait, run, alloc, req_procs, req_time, status, user)| SwfRecord {
                job_id,
                submit_time: submit,
                wait_time: wait,
                run_time: run,
                allocated_procs: alloc,
                avg_cpu_time: MISSING,
                used_memory: MISSING,
                requested_procs: req_procs,
                requested_time: req_time,
                requested_memory: MISSING,
                status,
                user_id: user,
                group_id: MISSING,
                executable: MISSING,
                queue: MISSING,
                partition: MISSING,
                preceding_job: MISSING,
                think_time: MISSING,
            },
        )
}

proptest! {
    /// write ∘ parse = identity on records.
    #[test]
    fn records_round_trip(records in prop::collection::vec(arb_record(), 0..50)) {
        let log = predictsim_swf::SwfLog { records: records.clone(), ..Default::default() };
        let text = write_log(&log);
        let reparsed = parse_log(&text).unwrap();
        prop_assert_eq!(reparsed.records, records);
    }

    /// Cleaning is idempotent: applying it twice changes nothing further.
    #[test]
    fn cleaning_is_idempotent(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut log = predictsim_swf::SwfLog { records, ..Default::default() };
        let rules = CleaningRules::default();
        clean(&mut log, 1024, rules);
        let after_first = log.records.clone();
        let second = clean(&mut log, 1024, rules);
        prop_assert_eq!(&log.records, &after_first);
        prop_assert_eq!(second.dropped_unrunnable, 0);
        prop_assert_eq!(second.dropped_oversize, 0);
        prop_assert_eq!(second.repaired_estimates, 0);
        prop_assert_eq!(second.repaired_inversions, 0);
        prop_assert!(!second.reordered);
    }

    /// After default cleaning every record is simulatable and consistent:
    /// positive run time, procs within machine, requested >= run.
    #[test]
    fn cleaned_records_are_simulatable(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut log = predictsim_swf::SwfLog { records, ..Default::default() };
        clean(&mut log, 1024, CleaningRules::default());
        for r in &log.records {
            prop_assert!(r.is_simulatable());
            let q = r.effective_procs().unwrap();
            prop_assert!((1..=1024).contains(&q));
            let run = r.run_time_opt().unwrap();
            let req = r.requested_time_opt().unwrap();
            prop_assert!(req >= run, "requested {req} < run {run}");
        }
        // Monotone submit order.
        for w in log.records.windows(2) {
            prop_assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    /// Parsing never panics on random whitespace-delimited numeric soup.
    #[test]
    fn parser_never_panics_on_numeric_lines(
        nums in prop::collection::vec(-1000i64..1_000_000, 0..25)
    ) {
        let line: Vec<String> = nums.iter().map(|n| n.to_string()).collect();
        let _ = predictsim_swf::reader::parse_record(1, &line.join(" "));
    }
}
