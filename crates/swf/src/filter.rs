//! Log cleaning conventions.
//!
//! Production SWF logs contain records that cannot be meaningfully
//! simulated: canceled jobs that never ran, records with missing run times
//! or processor counts, jobs larger than the machine, and occasional
//! submit-time inversions. The scheduling-evaluation literature (and the
//! pyss simulator the paper forked) filters these before simulation; this
//! module implements those conventions explicitly and reports what was
//! dropped, because silent cleaning is a classic source of
//! non-reproducibility (Frachtenberg & Feitelson, "Pitfalls in parallel job
//! scheduling evaluation" — reference \[6\] of the paper).

use crate::reader::SwfLog;

/// Which cleaning rules to apply. The default enables everything, which is
/// what the experiment pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningRules {
    /// Drop records with no positive run time (canceled before start,
    /// or truncated logging).
    pub drop_unrunnable: bool,
    /// Drop jobs requesting more processors than the machine has.
    pub drop_oversize: bool,
    /// Replace a missing requested time with the actual run time
    /// (making the record usable rather than dropping it).
    pub repair_missing_estimates: bool,
    /// Raise a requested time that is *below* the run time up to the run
    /// time. Production loggers record such inversions when jobs are
    /// allowed to overrun; the simulator's kill-at-estimate semantics
    /// (§2.1: "a job is killed if its actual running time is greater than
    /// its requested running time") needs `p ≤ p̃`.
    pub repair_estimate_inversions: bool,
    /// Sort records by submit time (stable), as the simulator requires
    /// monotone release dates.
    pub sort_by_submit: bool,
}

impl Default for CleaningRules {
    fn default() -> Self {
        Self {
            drop_unrunnable: true,
            drop_oversize: true,
            repair_missing_estimates: true,
            repair_estimate_inversions: true,
            sort_by_submit: true,
        }
    }
}

/// What [`clean`] did to a log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Records dropped because they had no positive run time.
    pub dropped_unrunnable: usize,
    /// Records dropped because they exceeded the machine size.
    pub dropped_oversize: usize,
    /// Records whose missing requested time was repaired from the run time.
    pub repaired_estimates: usize,
    /// Records whose requested time was raised to the run time.
    pub repaired_inversions: usize,
    /// Whether a submit-time sort actually changed the order.
    pub reordered: bool,
    /// Records remaining after cleaning.
    pub kept: usize,
}

/// Applies `rules` to `log` in place and reports the changes.
///
/// `machine_size` is the platform's processor count (used by the oversize
/// rule); pass the value from [`SwfLog::machine_size`].
pub fn clean(log: &mut SwfLog, machine_size: u64, rules: CleaningRules) -> CleaningReport {
    let mut report = CleaningReport::default();

    log.records.retain(|r| {
        if rules.drop_unrunnable && r.run_time_opt().is_none() {
            report.dropped_unrunnable += 1;
            return false;
        }
        if rules.drop_unrunnable && r.effective_procs().is_none() {
            report.dropped_unrunnable += 1;
            return false;
        }
        if rules.drop_oversize {
            if let Some(q) = r.effective_procs() {
                if q as u64 > machine_size {
                    report.dropped_oversize += 1;
                    return false;
                }
            }
        }
        true
    });

    for r in &mut log.records {
        if rules.repair_missing_estimates && r.requested_time_opt().is_none() {
            if let Some(p) = r.run_time_opt() {
                r.requested_time = p;
                report.repaired_estimates += 1;
            }
        }
        if rules.repair_estimate_inversions {
            if let (Some(p), Some(pt)) = (r.run_time_opt(), r.requested_time_opt()) {
                if pt < p {
                    r.requested_time = p;
                    report.repaired_inversions += 1;
                }
            }
        }
    }

    if rules.sort_by_submit {
        let sorted = log
            .records
            .windows(2)
            .all(|w| w[0].submit_time <= w[1].submit_time);
        if !sorted {
            report.reordered = true;
            log.records.sort_by_key(|r| (r.submit_time, r.job_id));
        }
    }

    report.kept = log.records.len();
    report
}

/// Convenience: cleans with default rules and the log's own machine size.
///
/// Returns the report; panics if the machine size cannot be determined
/// (headerless empty log).
pub fn clean_default(log: &mut SwfLog) -> CleaningReport {
    let m = log
        .machine_size()
        .expect("cannot clean a log with unknown machine size");
    clean(log, m, CleaningRules::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_log;
    use crate::record::{SwfRecord, MISSING};

    fn record(id: u64, submit: i64, run: i64, req_procs: i64, req_time: i64) -> SwfRecord {
        let mut r = SwfRecord::empty(id);
        r.submit_time = submit;
        r.run_time = run;
        r.requested_procs = req_procs;
        r.requested_time = req_time;
        r.status = 1;
        r.user_id = 1;
        r
    }

    #[test]
    fn drops_unrunnable_and_oversize() {
        let mut log = SwfLog::default();
        log.records.push(record(1, 0, 100, 4, 200));
        log.records.push(record(2, 1, MISSING, 4, 200)); // no run time
        log.records.push(record(3, 2, 100, 9999, 200)); // oversize
        log.records.push(record(4, 3, 100, MISSING, 200)); // no procs
        let report = clean(&mut log, 64, CleaningRules::default());
        assert_eq!(report.dropped_unrunnable, 2);
        assert_eq!(report.dropped_oversize, 1);
        assert_eq!(report.kept, 1);
        assert_eq!(log.records[0].job_id, 1);
    }

    #[test]
    fn repairs_missing_and_inverted_estimates() {
        let mut log = SwfLog::default();
        log.records.push(record(1, 0, 100, 4, MISSING)); // missing estimate
        log.records.push(record(2, 1, 100, 4, 50)); // inverted estimate
        let report = clean(&mut log, 64, CleaningRules::default());
        assert_eq!(report.repaired_estimates, 1);
        assert_eq!(report.repaired_inversions, 1);
        assert_eq!(log.records[0].requested_time, 100);
        assert_eq!(log.records[1].requested_time, 100);
    }

    #[test]
    fn sorts_by_submit_time() {
        let mut log = SwfLog::default();
        log.records.push(record(1, 50, 10, 1, 20));
        log.records.push(record(2, 10, 10, 1, 20));
        let report = clean(&mut log, 64, CleaningRules::default());
        assert!(report.reordered);
        assert_eq!(log.records[0].job_id, 2);
        // Already-sorted logs report no reorder.
        let report2 = clean(&mut log, 64, CleaningRules::default());
        assert!(!report2.reordered);
    }

    #[test]
    fn rules_can_be_disabled() {
        let mut log = SwfLog::default();
        log.records.push(record(2, 1, MISSING, 4, 200));
        let rules = CleaningRules {
            drop_unrunnable: false,
            drop_oversize: false,
            repair_missing_estimates: false,
            repair_estimate_inversions: false,
            sort_by_submit: false,
        };
        let report = clean(&mut log, 64, rules);
        assert_eq!(report.kept, 1);
        assert_eq!(report.dropped_unrunnable, 0);
    }

    #[test]
    fn clean_default_uses_header_size() {
        let text = "; MaxProcs: 8\n1 0 0 10 1 -1 -1 16 20 -1 1 0 0 0 0 0 -1 -1\n2 0 0 10 1 -1 -1 4 20 -1 1 0 0 0 0 0 -1 -1\n";
        let mut log = parse_log(text).unwrap();
        let report = clean_default(&mut log);
        assert_eq!(report.dropped_oversize, 1);
        assert_eq!(report.kept, 1);
    }
}
