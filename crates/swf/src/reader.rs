//! Parsing SWF text into [`SwfLog`]s.
//!
//! The reader is line-oriented and tolerant in the ways the PWA logs demand
//! (variable whitespace, blank lines, header comments interleaved at the
//! top) but strict about data lines: a malformed field aborts the parse
//! with a [`ParseError`] naming the line, since silently skipping jobs
//! would bias every downstream experiment.

use std::io::BufRead;

use crate::header::SwfHeader;
use crate::record::SwfRecord;

/// A fully parsed SWF log: header metadata plus job records in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfLog {
    /// Header metadata (machine size, time origin, …).
    pub header: SwfHeader,
    /// Job records in the order they appear in the file.
    pub records: Vec<SwfRecord>,
}

impl SwfLog {
    /// Machine size: the header's `MaxProcs`/`MaxNodes` when present,
    /// otherwise the largest processor request observed in the records
    /// (the standard fallback when simulating headerless fragments).
    pub fn machine_size(&self) -> Option<u64> {
        self.header.machine_size().or_else(|| {
            self.records
                .iter()
                .filter_map(|r| r.effective_procs())
                .max()
                .map(|m| m as u64)
        })
    }
}

/// Error produced when an SWF line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an in-memory SWF document.
pub fn parse_log(text: &str) -> Result<SwfLog, ParseError> {
    read_log(std::io::Cursor::new(text))
}

/// Reads an SWF document from any buffered reader (e.g. a file) into a
/// fully materialized [`SwfLog`].
///
/// I/O errors are converted into [`ParseError`]s carrying the line number
/// reached, so callers have a single error channel. Callers that do not
/// need the whole record vector at once should iterate a [`SwfStream`]
/// instead.
pub fn read_log<R: BufRead>(reader: R) -> Result<SwfLog, ParseError> {
    let mut stream = SwfStream::new(reader);
    let mut records = Vec::new();
    for record in &mut stream {
        records.push(record?);
    }
    Ok(SwfLog {
        header: stream.into_header(),
        records,
    })
}

/// Streaming SWF record source: an iterator of parsed [`SwfRecord`]s that
/// never materializes the whole log.
///
/// Header (`;`-prefixed) and blank lines are consumed transparently and
/// folded into [`SwfStream::header`]; every other line is parsed as an
/// 18-field data record and yielded. One line buffer is reused across the
/// whole file, so streaming a multi-million-job trace allocates O(1)
/// beyond what the caller keeps. A parse or I/O error ends the stream
/// (the erroring item is yielded, then the iterator fuses).
///
/// Note that SWF permits comment lines after data lines; the header is
/// only complete once the iterator has been driven to its end.
#[derive(Debug)]
pub struct SwfStream<R> {
    reader: R,
    header: SwfHeader,
    line: String,
    lineno: usize,
    done: bool,
}

impl<R: BufRead> SwfStream<R> {
    /// Starts streaming records from `reader`.
    pub fn new(reader: R) -> Self {
        SwfStream {
            reader,
            header: SwfHeader::default(),
            line: String::new(),
            lineno: 0,
            done: false,
        }
    }

    /// The header metadata accumulated so far (complete at end of input).
    pub fn header(&self) -> &SwfHeader {
        &self.header
    }

    /// Consumes the stream, returning the accumulated header.
    pub fn into_header(self) -> SwfHeader {
        self.header
    }

    /// 1-based number of the last line read (0 before the first read).
    pub fn line_number(&self) -> usize {
        self.lineno
    }
}

impl<R: BufRead> Iterator for SwfStream<R> {
    type Item = Result<SwfRecord, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            let read = loop {
                match self.reader.read_line(&mut self.line) {
                    // Transient interrupts (signals, injected faults)
                    // are retried, not fused: `BufReader` absorbs them
                    // itself, but an exotic `BufRead` may surface them,
                    // and a multi-GB ingest must not die to a hiccup.
                    // No clear before the retry — the implementation
                    // may already have appended part of the line.
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    other => break other,
                }
            };
            match read {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(ParseError {
                        line: self.lineno + 1,
                        message: format!("I/O error: {e}"),
                    }));
                }
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix(';') {
                self.header.ingest_line(rest);
                continue;
            }
            return match parse_record(self.lineno, trimmed) {
                Ok(record) => Some(Ok(record)),
                Err(e) => {
                    self.done = true;
                    Some(Err(e))
                }
            };
        }
    }
}

/// Parses a single 18-field SWF data line.
pub fn parse_record(lineno: usize, line: &str) -> Result<SwfRecord, ParseError> {
    let mut fields = [0i64; 18];
    let mut count = 0;
    for tok in line.split_ascii_whitespace() {
        if count == 18 {
            return Err(ParseError {
                line: lineno,
                message: format!("expected 18 fields, found extra token {tok:?}"),
            });
        }
        // Some logs write times with a fractional part (e.g. "12.0");
        // accept a float syntax but require an integral value.
        fields[count] = parse_int_field(tok).ok_or_else(|| ParseError {
            line: lineno,
            message: format!("field {} is not a number: {tok:?}", count + 1),
        })?;
        count += 1;
    }
    if count != 18 {
        return Err(ParseError {
            line: lineno,
            message: format!("expected 18 fields, found {count}"),
        });
    }
    if fields[0] < 0 {
        return Err(ParseError {
            line: lineno,
            message: format!("job id must be non-negative, got {}", fields[0]),
        });
    }
    Ok(SwfRecord {
        job_id: fields[0] as u64,
        submit_time: fields[1],
        wait_time: fields[2],
        run_time: fields[3],
        allocated_procs: fields[4],
        avg_cpu_time: fields[5],
        used_memory: fields[6],
        requested_procs: fields[7],
        requested_time: fields[8],
        requested_memory: fields[9],
        status: fields[10],
        user_id: fields[11],
        group_id: fields[12],
        executable: fields[13],
        queue: fields[14],
        partition: fields[15],
        preceding_job: fields[16],
        think_time: fields[17],
    })
}

fn parse_int_field(tok: &str) -> Option<i64> {
    if let Ok(v) = tok.parse::<i64>() {
        return Some(v);
    }
    // Fall back to float syntax with integral value ("3600.0").
    let f = tok.parse::<f64>().ok()?;
    if f.fract() == 0.0 && f.abs() < 9.2e18 {
        Some(f as i64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "3 120 30 600 8 -1 -1 8 900 -1 1 4 2 17 1 0 -1 -1";

    #[test]
    fn parses_data_line() {
        let r = parse_record(1, LINE).unwrap();
        assert_eq!(r.job_id, 3);
        assert_eq!(r.submit_time, 120);
        assert_eq!(r.wait_time, 30);
        assert_eq!(r.run_time, 600);
        assert_eq!(r.requested_procs, 8);
        assert_eq!(r.requested_time, 900);
        assert_eq!(r.user_id, 4);
        assert_eq!(r.think_time, -1);
    }

    /// A `BufRead` that surfaces `Interrupted` on every other
    /// `read_line` call — the shape of a signal-interrupted read that
    /// `BufReader` would normally absorb but a custom source may leak.
    struct InterruptingReader<'a> {
        inner: std::io::BufReader<&'a [u8]>,
        calls: usize,
    }

    impl std::io::Read for InterruptingReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::io::Read::read(&mut self.inner, buf)
        }
    }

    impl std::io::BufRead for InterruptingReader<'_> {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            self.inner.fill_buf()
        }
        fn consume(&mut self, amt: usize) {
            self.inner.consume(amt)
        }
        fn read_line(&mut self, line: &mut String) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "spurious interrupt",
                ));
            }
            self.inner.read_line(line)
        }
    }

    #[test]
    fn transient_interrupts_do_not_fuse_the_stream() {
        let text = format!(
            "; MaxProcs: 8\n{LINE}\n{}\n",
            LINE.replace("3 120", "4 180")
        );
        let reader = InterruptingReader {
            inner: std::io::BufReader::new(text.as_bytes()),
            calls: 0,
        };
        let mut stream = SwfStream::new(reader);
        let records: Vec<_> = stream
            .by_ref()
            .collect::<Result<_, _>>()
            .expect("clean parse");
        assert_eq!(records.len(), 2, "every record survives the interrupts");
        assert_eq!(records[0].job_id, 3);
        assert_eq!(records[1].job_id, 4);
        assert_eq!(stream.header().max_procs, Some(8));
    }

    #[test]
    fn accepts_tabs_and_multiple_spaces() {
        let line = LINE.replace(' ', "\t  ");
        let r = parse_record(1, &line).unwrap();
        assert_eq!(r.run_time, 600);
    }

    #[test]
    fn accepts_float_syntax_with_integral_value() {
        let line = LINE.replace("600", "600.0");
        let r = parse_record(1, &line).unwrap();
        assert_eq!(r.run_time, 600);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_record(7, "1 2 3").unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("expected 18 fields"));
        let err = parse_record(8, &format!("{LINE} 99")).unwrap_err();
        assert!(err.message.contains("extra token"));
    }

    #[test]
    fn rejects_garbage_field() {
        let line = LINE.replace("600", "six-hundred");
        let err = parse_record(3, &line).unwrap_err();
        assert!(err.message.contains("not a number"));
    }

    #[test]
    fn rejects_negative_job_id() {
        let line = LINE.replacen('3', "-3", 1);
        let err = parse_record(1, &line).unwrap_err();
        assert!(err.message.contains("job id"));
    }

    #[test]
    fn parse_log_splits_header_and_records() {
        let text = format!("; MaxProcs: 64\n\n{LINE}\n; trailing comment\n{LINE}\n");
        let log = parse_log(&text).unwrap();
        assert_eq!(log.header.max_procs, Some(64));
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.machine_size(), Some(64));
    }

    #[test]
    fn machine_size_inferred_without_header() {
        let log = parse_log(&format!("{LINE}\n")).unwrap();
        assert_eq!(log.machine_size(), Some(8));
    }

    #[test]
    fn read_log_from_bufread() {
        let text = format!("; MaxProcs: 16\n{LINE}\n");
        let log = read_log(std::io::Cursor::new(text)).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.header.max_procs, Some(16));
    }

    #[test]
    fn stream_yields_records_and_accumulates_header() {
        let text = format!("; MaxProcs: 64\n\n{LINE}\n; trailing comment\n{LINE}\n");
        let mut stream = SwfStream::new(std::io::Cursor::new(text));
        assert_eq!(stream.header().max_procs, None, "header not read yet");
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.run_time, 600);
        assert_eq!(stream.header().max_procs, Some(64));
        let second = stream.next().unwrap().unwrap();
        assert_eq!(second.job_id, 3);
        assert!(stream.next().is_none());
        assert!(stream.next().is_none(), "stream is fused");
        assert_eq!(stream.line_number(), 5);
    }

    #[test]
    fn stream_fuses_after_a_parse_error() {
        let text = format!("{LINE}\nbad line\n{LINE}\n");
        let mut stream = SwfStream::new(std::io::Cursor::new(text));
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            stream.next().is_none(),
            "no records are yielded past an error"
        );
    }

    #[test]
    fn error_reports_line_number() {
        let text = format!("{LINE}\nbad line here\n");
        let err = parse_log(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(format!("{err}").contains("line 2"));
    }
}
