//! Parsing SWF text into [`SwfLog`]s.
//!
//! The reader is line-oriented and tolerant in the ways the PWA logs demand
//! (variable whitespace, blank lines, header comments interleaved at the
//! top) but strict about data lines: a malformed field aborts the parse
//! with a [`ParseError`] naming the line, since silently skipping jobs
//! would bias every downstream experiment.

use std::io::BufRead;

use crate::header::SwfHeader;
use crate::record::SwfRecord;

/// A fully parsed SWF log: header metadata plus job records in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfLog {
    /// Header metadata (machine size, time origin, …).
    pub header: SwfHeader,
    /// Job records in the order they appear in the file.
    pub records: Vec<SwfRecord>,
}

impl SwfLog {
    /// Machine size: the header's `MaxProcs`/`MaxNodes` when present,
    /// otherwise the largest processor request observed in the records
    /// (the standard fallback when simulating headerless fragments).
    pub fn machine_size(&self) -> Option<u64> {
        self.header.machine_size().or_else(|| {
            self.records
                .iter()
                .filter_map(|r| r.effective_procs())
                .max()
                .map(|m| m as u64)
        })
    }
}

/// Error produced when an SWF line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an in-memory SWF document.
pub fn parse_log(text: &str) -> Result<SwfLog, ParseError> {
    let mut log = SwfLog::default();
    for (idx, line) in text.lines().enumerate() {
        ingest_line(&mut log, idx + 1, line)?;
    }
    Ok(log)
}

/// Streams an SWF document from any buffered reader (e.g. a file).
///
/// I/O errors are converted into [`ParseError`]s carrying the line number
/// reached, so callers have a single error channel.
pub fn read_log<R: BufRead>(reader: R) -> Result<SwfLog, ParseError> {
    let mut log = SwfLog::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: idx + 1,
            message: format!("I/O error: {e}"),
        })?;
        ingest_line(&mut log, idx + 1, &line)?;
    }
    Ok(log)
}

fn ingest_line(log: &mut SwfLog, lineno: usize, line: &str) -> Result<(), ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(());
    }
    if let Some(rest) = trimmed.strip_prefix(';') {
        log.header.ingest_line(rest);
        return Ok(());
    }
    log.records.push(parse_record(lineno, trimmed)?);
    Ok(())
}

/// Parses a single 18-field SWF data line.
pub fn parse_record(lineno: usize, line: &str) -> Result<SwfRecord, ParseError> {
    let mut fields = [0i64; 18];
    let mut count = 0;
    for tok in line.split_ascii_whitespace() {
        if count == 18 {
            return Err(ParseError {
                line: lineno,
                message: format!("expected 18 fields, found extra token {tok:?}"),
            });
        }
        // Some logs write times with a fractional part (e.g. "12.0");
        // accept a float syntax but require an integral value.
        fields[count] = parse_int_field(tok).ok_or_else(|| ParseError {
            line: lineno,
            message: format!("field {} is not a number: {tok:?}", count + 1),
        })?;
        count += 1;
    }
    if count != 18 {
        return Err(ParseError {
            line: lineno,
            message: format!("expected 18 fields, found {count}"),
        });
    }
    if fields[0] < 0 {
        return Err(ParseError {
            line: lineno,
            message: format!("job id must be non-negative, got {}", fields[0]),
        });
    }
    Ok(SwfRecord {
        job_id: fields[0] as u64,
        submit_time: fields[1],
        wait_time: fields[2],
        run_time: fields[3],
        allocated_procs: fields[4],
        avg_cpu_time: fields[5],
        used_memory: fields[6],
        requested_procs: fields[7],
        requested_time: fields[8],
        requested_memory: fields[9],
        status: fields[10],
        user_id: fields[11],
        group_id: fields[12],
        executable: fields[13],
        queue: fields[14],
        partition: fields[15],
        preceding_job: fields[16],
        think_time: fields[17],
    })
}

fn parse_int_field(tok: &str) -> Option<i64> {
    if let Ok(v) = tok.parse::<i64>() {
        return Some(v);
    }
    // Fall back to float syntax with integral value ("3600.0").
    let f = tok.parse::<f64>().ok()?;
    if f.fract() == 0.0 && f.abs() < 9.2e18 {
        Some(f as i64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "3 120 30 600 8 -1 -1 8 900 -1 1 4 2 17 1 0 -1 -1";

    #[test]
    fn parses_data_line() {
        let r = parse_record(1, LINE).unwrap();
        assert_eq!(r.job_id, 3);
        assert_eq!(r.submit_time, 120);
        assert_eq!(r.wait_time, 30);
        assert_eq!(r.run_time, 600);
        assert_eq!(r.requested_procs, 8);
        assert_eq!(r.requested_time, 900);
        assert_eq!(r.user_id, 4);
        assert_eq!(r.think_time, -1);
    }

    #[test]
    fn accepts_tabs_and_multiple_spaces() {
        let line = LINE.replace(' ', "\t  ");
        let r = parse_record(1, &line).unwrap();
        assert_eq!(r.run_time, 600);
    }

    #[test]
    fn accepts_float_syntax_with_integral_value() {
        let line = LINE.replace("600", "600.0");
        let r = parse_record(1, &line).unwrap();
        assert_eq!(r.run_time, 600);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_record(7, "1 2 3").unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("expected 18 fields"));
        let err = parse_record(8, &format!("{LINE} 99")).unwrap_err();
        assert!(err.message.contains("extra token"));
    }

    #[test]
    fn rejects_garbage_field() {
        let line = LINE.replace("600", "six-hundred");
        let err = parse_record(3, &line).unwrap_err();
        assert!(err.message.contains("not a number"));
    }

    #[test]
    fn rejects_negative_job_id() {
        let line = LINE.replacen('3', "-3", 1);
        let err = parse_record(1, &line).unwrap_err();
        assert!(err.message.contains("job id"));
    }

    #[test]
    fn parse_log_splits_header_and_records() {
        let text = format!("; MaxProcs: 64\n\n{LINE}\n; trailing comment\n{LINE}\n");
        let log = parse_log(&text).unwrap();
        assert_eq!(log.header.max_procs, Some(64));
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.machine_size(), Some(64));
    }

    #[test]
    fn machine_size_inferred_without_header() {
        let log = parse_log(&format!("{LINE}\n")).unwrap();
        assert_eq!(log.machine_size(), Some(8));
    }

    #[test]
    fn read_log_from_bufread() {
        let text = format!("; MaxProcs: 16\n{LINE}\n");
        let log = read_log(std::io::Cursor::new(text)).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.header.max_procs, Some(16));
    }

    #[test]
    fn error_reports_line_number() {
        let text = format!("{LINE}\nbad line here\n");
        let err = parse_log(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(format!("{err}").contains("line 2"));
    }
}
