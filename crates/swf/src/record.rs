//! The 18-field SWF job record.
//!
//! Field order and semantics follow the Standard Workload Format
//! specification of the Parallel Workloads Archive. Missing values are
//! encoded as `-1` in the on-disk format; this module keeps the sentinel
//! (as [`MISSING`]) in integer fields so that round-tripping a log is exact,
//! and offers accessor helpers that translate sentinels into `Option`s.

/// The SWF sentinel for "value not available" (`-1`).
pub const MISSING: i64 = -1;

/// Completion status of a job (SWF field 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Job failed (status 0).
    Failed,
    /// Job completed successfully (status 1).
    Completed,
    /// Partial execution — used by logs that checkpoint (status 2, 3).
    Partial(u8),
    /// Job was canceled before or during execution (status 5).
    Canceled,
    /// Unknown / missing status (`-1` or unrecognized code).
    Unknown,
}

impl JobStatus {
    /// Decodes the SWF integer status code.
    pub fn from_code(code: i64) -> Self {
        match code {
            0 => JobStatus::Failed,
            1 => JobStatus::Completed,
            2 | 3 => JobStatus::Partial(code as u8),
            5 => JobStatus::Canceled,
            _ => JobStatus::Unknown,
        }
    }

    /// Encodes back to the SWF integer status code.
    pub fn to_code(self) -> i64 {
        match self {
            JobStatus::Failed => 0,
            JobStatus::Completed => 1,
            JobStatus::Partial(c) => c as i64,
            JobStatus::Canceled => 5,
            JobStatus::Unknown => MISSING,
        }
    }
}

/// One SWF job record (one line of an SWF file).
///
/// All times are in seconds. `-1` ([`MISSING`]) denotes a missing value,
/// following the SWF convention; the `*_opt` accessors decode the sentinel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwfRecord {
    /// Field 1: job number, a unique identifier (1-based in PWA logs).
    pub job_id: u64,
    /// Field 2: submit time in seconds relative to the log start.
    pub submit_time: i64,
    /// Field 3: wait time in seconds (as recorded by the original
    /// scheduler; the simulator recomputes its own waits and ignores this).
    pub wait_time: i64,
    /// Field 4: actual run time in seconds (`p_j` in the paper).
    pub run_time: i64,
    /// Field 5: number of allocated processors.
    pub allocated_procs: i64,
    /// Field 6: average CPU time used per processor.
    pub avg_cpu_time: i64,
    /// Field 7: used memory (KB per processor).
    pub used_memory: i64,
    /// Field 8: requested number of processors (`q_j` in the paper).
    pub requested_procs: i64,
    /// Field 9: requested (user-estimated) run time in seconds
    /// (`p̃_j` in the paper — the upper bound after which the job is killed).
    pub requested_time: i64,
    /// Field 10: requested memory (KB per processor).
    pub requested_memory: i64,
    /// Field 11: completion status code.
    pub status: i64,
    /// Field 12: user id (`k` in the paper's per-user features).
    pub user_id: i64,
    /// Field 13: group id.
    pub group_id: i64,
    /// Field 14: executable (application) number.
    pub executable: i64,
    /// Field 15: queue number.
    pub queue: i64,
    /// Field 16: partition number.
    pub partition: i64,
    /// Field 17: preceding job number (dependency), or -1.
    pub preceding_job: i64,
    /// Field 18: think time from preceding job, in seconds, or -1.
    pub think_time: i64,
}

impl SwfRecord {
    /// A record with every optional field missing, useful as a builder base.
    pub fn empty(job_id: u64) -> Self {
        Self {
            job_id,
            submit_time: 0,
            wait_time: MISSING,
            run_time: MISSING,
            allocated_procs: MISSING,
            avg_cpu_time: MISSING,
            used_memory: MISSING,
            requested_procs: MISSING,
            requested_time: MISSING,
            requested_memory: MISSING,
            status: MISSING,
            user_id: MISSING,
            group_id: MISSING,
            executable: MISSING,
            queue: MISSING,
            partition: MISSING,
            preceding_job: MISSING,
            think_time: MISSING,
        }
    }

    /// Decoded completion status.
    pub fn job_status(&self) -> JobStatus {
        JobStatus::from_code(self.status)
    }

    /// Actual run time, if recorded.
    pub fn run_time_opt(&self) -> Option<i64> {
        positive_opt(self.run_time)
    }

    /// Requested run time, if recorded.
    pub fn requested_time_opt(&self) -> Option<i64> {
        positive_opt(self.requested_time)
    }

    /// Processor count the simulator should use: the requested count when
    /// present, otherwise the allocated count (the PWA convention — some
    /// logs only record one of the two).
    pub fn effective_procs(&self) -> Option<i64> {
        positive_opt(self.requested_procs).or_else(|| positive_opt(self.allocated_procs))
    }

    /// Requested time the simulator should use: the user estimate when
    /// present, otherwise the actual run time (clairvoyant fallback used by
    /// the literature when a log lacks estimates).
    pub fn effective_requested_time(&self) -> Option<i64> {
        self.requested_time_opt().or_else(|| self.run_time_opt())
    }

    /// User id, if recorded.
    pub fn user_id_opt(&self) -> Option<i64> {
        non_negative_opt(self.user_id)
    }

    /// True if the record carries enough information to be simulated:
    /// a positive run time and a positive processor count.
    pub fn is_simulatable(&self) -> bool {
        self.run_time_opt().is_some() && self.effective_procs().is_some()
    }
}

fn positive_opt(v: i64) -> Option<i64> {
    (v > 0).then_some(v)
}

fn non_negative_opt(v: i64) -> Option<i64> {
    (v >= 0).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SwfRecord {
        SwfRecord {
            job_id: 42,
            submit_time: 1000,
            wait_time: 5,
            run_time: 3600,
            allocated_procs: 16,
            avg_cpu_time: MISSING,
            used_memory: MISSING,
            requested_procs: 32,
            requested_time: 7200,
            requested_memory: MISSING,
            status: 1,
            user_id: 7,
            group_id: 1,
            executable: 12,
            queue: 0,
            partition: 0,
            preceding_job: MISSING,
            think_time: MISSING,
        }
    }

    #[test]
    fn status_round_trip() {
        for code in [-1, 0, 1, 2, 3, 5] {
            let st = JobStatus::from_code(code);
            assert_eq!(st.to_code(), code, "status {code}");
        }
        assert_eq!(JobStatus::from_code(99), JobStatus::Unknown);
    }

    #[test]
    fn accessors_decode_sentinels() {
        let r = sample();
        assert_eq!(r.run_time_opt(), Some(3600));
        assert_eq!(r.requested_time_opt(), Some(7200));
        assert_eq!(r.user_id_opt(), Some(7));

        let mut r = sample();
        r.run_time = MISSING;
        r.requested_time = MISSING;
        r.user_id = MISSING;
        assert_eq!(r.run_time_opt(), None);
        assert_eq!(r.requested_time_opt(), None);
        assert_eq!(r.user_id_opt(), None);
    }

    #[test]
    fn effective_procs_prefers_requested() {
        let r = sample();
        assert_eq!(r.effective_procs(), Some(32));
        let mut r = sample();
        r.requested_procs = MISSING;
        assert_eq!(r.effective_procs(), Some(16));
        r.allocated_procs = 0; // zero procs is not usable
        assert_eq!(r.effective_procs(), None);
    }

    #[test]
    fn effective_requested_time_falls_back_to_actual() {
        let mut r = sample();
        r.requested_time = MISSING;
        assert_eq!(r.effective_requested_time(), Some(3600));
    }

    #[test]
    fn simulatable_requires_run_and_procs() {
        assert!(sample().is_simulatable());
        let mut r = sample();
        r.run_time = 0;
        assert!(!r.is_simulatable());
        let mut r = sample();
        r.requested_procs = MISSING;
        r.allocated_procs = MISSING;
        assert!(!r.is_simulatable());
    }

    #[test]
    fn empty_record_is_not_simulatable() {
        assert!(!SwfRecord::empty(1).is_simulatable());
        assert_eq!(SwfRecord::empty(1).job_status(), JobStatus::Unknown);
    }

    #[test]
    fn user_id_zero_is_valid() {
        let mut r = sample();
        r.user_id = 0;
        assert_eq!(r.user_id_opt(), Some(0));
    }
}
