//! # predictsim-swf
//!
//! A toolkit for the **Standard Workload Format** (SWF) of the Parallel
//! Workloads Archive (Feitelson, Tsafrir & Krakov, *"Experience with using
//! the parallel workloads archive"*, JPDC 2014 — reference \[5\] of the
//! reproduced paper).
//!
//! The SC '15 paper evaluates its prediction-augmented backfilling on six
//! production logs distributed in SWF (Table 4). This crate provides
//! everything needed to consume such logs — or the synthetic equivalents
//! produced by `predictsim-workload` — and feed them to the simulator:
//!
//! * [`SwfRecord`] — the 18-field SWF job record ([`record`]);
//! * [`SwfHeader`] — the `;`-prefixed header metadata (`MaxProcs`,
//!   `UnixStartTime`, …) ([`header`]);
//! * [`reader`] / [`writer`] — streaming parse and serialization;
//! * [`filter`] — the cleaning conventions applied by the scheduling
//!   literature before simulation (drop canceled jobs, repair missing
//!   requested times, enforce submit-time ordering, …).
//!
//! ## Quick example
//!
//! ```
//! use predictsim_swf::{parse_log, write_log};
//!
//! let text = "\
//! ; MaxProcs: 4
//! 1 0 10 100 2 -1 -1 2 200 -1 1 7 1 3 1 -1 -1 -1
//! 2 5 -1 50 1 -1 -1 1 100 -1 1 8 1 3 1 -1 -1 -1
//! ";
//! let log = parse_log(text).unwrap();
//! assert_eq!(log.header.max_procs, Some(4));
//! assert_eq!(log.records.len(), 2);
//! assert_eq!(log.records[0].run_time, 100);
//! let round_trip = parse_log(&write_log(&log)).unwrap();
//! assert_eq!(round_trip.records, log.records);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
pub mod header;
pub mod reader;
pub mod record;
pub mod writer;

pub use filter::{clean, CleaningReport, CleaningRules};
pub use header::SwfHeader;
pub use reader::{parse_log, read_log, ParseError, SwfLog, SwfStream};
pub use record::{JobStatus, SwfRecord, MISSING};
pub use writer::{write_log, write_records};
