//! Serializing [`SwfLog`]s back to SWF text.
//!
//! The writer produces canonical single-space-separated records; parsing
//! the output reproduces the same records and header values (round-trip
//! property, tested with proptest in `tests/roundtrip.rs`).

use std::fmt::Write as _;

use crate::reader::SwfLog;
use crate::record::SwfRecord;

/// Serializes one record as a canonical SWF data line (no newline).
pub fn format_record(r: &SwfRecord) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        r.job_id,
        r.submit_time,
        r.wait_time,
        r.run_time,
        r.allocated_procs,
        r.avg_cpu_time,
        r.used_memory,
        r.requested_procs,
        r.requested_time,
        r.requested_memory,
        r.status,
        r.user_id,
        r.group_id,
        r.executable,
        r.queue,
        r.partition,
        r.preceding_job,
        r.think_time
    )
}

/// Serializes records only (no header).
pub fn write_records(records: &[SwfRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for r in records {
        out.push_str(&format_record(r));
        out.push('\n');
    }
    out
}

/// Serializes a full log: header comment lines first, then records.
pub fn write_log(log: &SwfLog) -> String {
    let mut out = String::new();
    for line in &log.header.raw_lines {
        writeln!(out, "; {line}").expect("string write cannot fail");
    }
    out.push_str(&write_records(&log.records));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_log;
    use crate::record::MISSING;

    fn sample() -> SwfRecord {
        SwfRecord {
            job_id: 9,
            submit_time: 100,
            wait_time: 3,
            run_time: 42,
            allocated_procs: 4,
            avg_cpu_time: MISSING,
            used_memory: MISSING,
            requested_procs: 4,
            requested_time: 60,
            requested_memory: MISSING,
            status: 1,
            user_id: 2,
            group_id: 1,
            executable: 5,
            queue: 0,
            partition: 0,
            preceding_job: MISSING,
            think_time: MISSING,
        }
    }

    #[test]
    fn format_has_18_fields() {
        let line = format_record(&sample());
        assert_eq!(line.split_ascii_whitespace().count(), 18);
    }

    #[test]
    fn record_round_trip() {
        let original = sample();
        let text = write_records(std::slice::from_ref(&original));
        let log = parse_log(&text).unwrap();
        assert_eq!(log.records, vec![original]);
    }

    #[test]
    fn log_round_trip_keeps_header() {
        let text =
            "; MaxProcs: 128\n; Computer: Test\n1 0 0 10 1 -1 -1 1 20 -1 1 0 0 0 0 0 -1 -1\n";
        let log = parse_log(text).unwrap();
        let rewritten = write_log(&log);
        let reparsed = parse_log(&rewritten).unwrap();
        assert_eq!(reparsed.header.max_procs, Some(128));
        assert_eq!(reparsed.header.computer.as_deref(), Some("Test"));
        assert_eq!(reparsed.records, log.records);
    }

    #[test]
    fn empty_log_writes_empty_string() {
        assert_eq!(write_records(&[]), "");
    }
}
