//! The single-flight contract of the sharded [`SimCache`]: one cold
//! cell requested from many workers at once simulates exactly once,
//! every requester gets a byte-identical payload, and the prediction
//! budget is charged exactly once. Also pins the failure-safety of the
//! in-flight marker (an abandoned lookup must not poison the cell).

use std::sync::Barrier;

use predictsim_experiments::cache::{CellSource, SimCache};
use predictsim_experiments::source::{JobArena, LoadedWorkload};
use predictsim_experiments::triple::HeuristicTriple;
use predictsim_sim::ClusterSpec;
use predictsim_workload::{generate, WorkloadSpec};

/// A workload big enough that one simulation spans many scheduler
/// timeslices — so with a start barrier, the non-leading workers
/// reliably find the in-flight marker instead of a finished cell.
fn hammer_workload(seed: u64) -> (JobArena, ClusterSpec) {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 2_000;
    spec.duration = 20 * 86_400;
    let w = generate(&spec, seed);
    (JobArena::new(w.jobs), ClusterSpec::single(w.machine_size))
}

const WORKERS: usize = 8;

/// N workers, one cold cell: `simulated == 1` (a true work count, not a
/// lookup count), every payload byte-identical to a serial run, budget
/// charged once.
#[test]
fn same_cold_cell_from_eight_workers_simulates_once() {
    let (arena, cluster) = hammer_workload(71);
    let triple = HeuristicTriple::paper_winner();

    // The reference payload, from an independent serial cache.
    let serial = SimCache::new();
    let reference = serial.run_cell(&arena, cluster, &triple).unwrap();
    let reference_bytes = serde_json::to_string(&reference.result).unwrap();
    let reference_predictions = reference.predictions.clone().unwrap();

    let cache = SimCache::new();
    let budget_before = cache.prediction_budget_remaining();
    let barrier = Barrier::new(WORKERS);
    let cells: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    cache.run_cell_traced(&arena, cluster, &triple).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = cache.stats();
    assert_eq!(stats.simulated, 1, "single-flight: one simulation total");
    assert_eq!(stats.memory_hits as usize, WORKERS - 1);
    assert_eq!(
        stats.coalesced as usize,
        WORKERS - 1,
        "every non-leader must have waited on the in-flight simulation"
    );
    assert_eq!(stats.lookups() as usize, WORKERS);

    let leaders = cells
        .iter()
        .filter(|(_, src)| *src == CellSource::Simulated)
        .count();
    assert_eq!(leaders, 1, "exactly one worker led the miss");

    for (cell, _) in &cells {
        assert_eq!(
            serde_json::to_string(&cell.result).unwrap(),
            reference_bytes,
            "every worker's payload must match the serial run byte for byte"
        );
        assert_eq!(
            cell.predictions.as_deref(),
            Some(reference_predictions.as_ref()),
            "every worker must see the full prediction vector"
        );
    }

    assert_eq!(
        cache.prediction_budget_remaining(),
        budget_before - reference_predictions.len(),
        "the budget must be charged exactly once for the one insert"
    );
}

/// Distinct cells hammered concurrently stay distinct: each simulates
/// once, none alias, and the shard layout serves them in parallel.
#[test]
fn distinct_cells_under_concurrency_each_simulate_once() {
    let (arena, cluster) = hammer_workload(72);
    let triples = [
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(predictsim_experiments::Variant::EasySjbf),
    ];

    let cache = SimCache::new();
    let barrier = Barrier::new(triples.len() * 2);
    std::thread::scope(|scope| {
        for triple in &triples {
            for _ in 0..2 {
                scope.spawn(|| {
                    barrier.wait();
                    cache.run_cell(&arena, cluster, triple).unwrap();
                });
            }
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.simulated as usize,
        triples.len(),
        "each distinct cell simulates exactly once"
    );
    assert_eq!(stats.lookups() as usize, triples.len() * 2);
}

/// A `peek` miss abandons its in-flight marker: the next `run_cell`
/// must lead a fresh simulation, not hang on (or get poisoned by) the
/// abandoned lookup.
#[test]
fn abandoned_peek_does_not_poison_the_cell() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 200;
    spec.duration = 2 * 86_400;
    let loaded: LoadedWorkload = generate(&spec, 73).into();
    let cluster = ClusterSpec::single(loaded.machine_size);
    let triple = HeuristicTriple::standard_easy();

    let cache = SimCache::new();
    assert!(
        cache.peek(&loaded.jobs, cluster, &triple).is_none(),
        "peek must not simulate"
    );
    let (_, source) = cache
        .run_cell_traced(&loaded.jobs, cluster, &triple)
        .unwrap();
    assert_eq!(
        source,
        CellSource::Simulated,
        "run_cell after a peek miss leads a fresh simulation"
    );
    // And the cell is now a plain hit for both entry points.
    assert!(cache.peek(&loaded.jobs, cluster, &triple).is_some());
    let stats = cache.stats();
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.memory_hits, 1);
}
