//! Cross-experiment deduplication through the process-wide
//! [`SimCache`]: cells first simulated by the campaign must be *recalled*
//! — not re-simulated — when Table 1, Table 8 or Figures 4/5 ask for
//! them later.
//!
//! This file deliberately contains a single test and no other
//! simulations: integration-test files are separate processes, so the
//! global cache counters read here can only have been advanced by the
//! calls below.

use predictsim_experiments::cache::SimCache;
use predictsim_experiments::campaign::run_campaign_loaded;
use predictsim_experiments::figures::fig4_fig5;
use predictsim_experiments::source::LoadedWorkload;
use predictsim_experiments::tables::{table1, table8};
use predictsim_experiments::triple::{campaign_triples, reference_triples};
use predictsim_workload::{generate, WorkloadSpec};

#[test]
fn later_experiments_hit_the_campaigns_cells() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 150;
    spec.duration = 2 * 86_400;
    let workload: LoadedWorkload = generate(&spec, 31).into();
    let cache = SimCache::global();

    // The full §6.2 grid plus the clairvoyant references — everything a
    // repro campaign simulates.
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaign = run_campaign_loaded(&workload, &triples);
    assert_eq!(campaign.results.len(), 130);
    let after_campaign = cache.stats();
    assert_eq!(after_campaign.simulated, 130, "cold campaign simulates all");

    // Table 1 reads two of the campaign's cells (standard EASY and the
    // clairvoyant EASY reference): zero new simulations.
    let rows = table1(std::slice::from_ref(&workload));
    assert_eq!(rows.len(), 1);
    let after_t1 = cache.stats();
    assert_eq!(
        after_t1.since(after_campaign).simulated,
        0,
        "table 1 must be served from the campaign's cells"
    );
    assert_eq!(after_t1.since(after_campaign).memory_hits, 2);

    // Table 8's two cells (AVE2 and the paper winner, both under
    // Incremental + EASY-SJBF) are campaign cells too.
    let t8 = table8(&workload);
    assert_eq!(t8.len(), 2);
    let after_t8 = cache.stats();
    assert_eq!(
        after_t8.since(after_t1).simulated,
        0,
        "table 8 must be served from the campaign's cells"
    );

    // Figures 4/5 run four techniques; three are campaign cells
    // (E-Loss, squared-loss and AVE2 under Incremental + EASY-SJBF) and
    // exactly one is not (Requested Time + Incremental — the campaign
    // pairs Requested Time with no correction).
    let fig = fig4_fig5(&workload, 25);
    assert_eq!(fig.error_series.len(), 4);
    let after_fig = cache.stats();
    assert_eq!(
        after_fig.since(after_t8).simulated,
        1,
        "figures 4/5 simulate only their one non-campaign cell"
    );
    assert_eq!(after_fig.since(after_t8).memory_hits, 3);

    // Re-running the whole campaign is a pure cache read.
    let again = run_campaign_loaded(&workload, &triples);
    assert_eq!(again, campaign);
    let after_rerun = cache.stats();
    assert_eq!(after_rerun.since(after_fig).simulated, 0);
    assert_eq!(after_rerun.since(after_fig).memory_hits, 130);
}
