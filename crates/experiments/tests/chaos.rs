//! Deterministic chaos suite: campaigns under seeded fault plans must
//! produce artifacts **byte-identical** to fault-free runs, with
//! `simulated` still a true work count — the paper's reproduction
//! guarantee holds *under fault*.
//!
//! Fault plans are process-global, so this suite lives in its own test
//! binary and every test body runs inside [`faultline::with_plan`],
//! which serializes plan-holding sections on a process-wide lock and
//! uninstalls the plan afterwards. Baseline (fault-free) phases use an
//! empty plan so they hold the same lock — a concurrently scheduled
//! faulted test can never leak injections into them.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use predictsim_experiments::campaign::run_campaign_loaded;
use predictsim_experiments::faultline::{self, FaultKind, FaultPlan, FaultSpec};
use predictsim_experiments::scenario::ScenarioError;
use predictsim_experiments::source::LoadedWorkload;
use predictsim_experiments::triple::HeuristicTriple;
use predictsim_experiments::SimCache;
use predictsim_sim::ClusterSpec;
use predictsim_workload::{generate, WorkloadSpec};

fn toy_workload(jobs: usize, seed: u64) -> LoadedWorkload {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = jobs;
    spec.duration = 3 * 86_400;
    spec.utilization = 0.9;
    generate(&spec, seed).into()
}

fn sweep_triples() -> Vec<HeuristicTriple> {
    vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("predictsim-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn transient(p: f64) -> FaultSpec {
    FaultSpec {
        p,
        ..FaultSpec::default()
    }
}

/// The tentpole acceptance pin: a campaign under a seeded plan
/// injecting **four** site types (disk read, disk write, index flush,
/// and a poisoned cell) completes with artifacts byte-identical to the
/// fault-free run, `simulated` equal to true work done, and the
/// absorbed faults visible in the counters. A third, fault-free pass
/// over the surviving cache directory then proves resumability.
#[test]
fn campaign_under_mixed_faults_is_byte_identical() {
    let w = toy_workload(300, 91);
    let triples = sweep_triples();
    let cache = SimCache::global();

    // Fault-free baseline (empty plan: passthrough, but serialized
    // against every other chaos test in this binary).
    let clean_dir = temp_dir("clean");
    let baseline = faultline::with_plan(FaultPlan::builder().build(), || {
        cache.clear_memory();
        cache.set_persist_dir(Some(clean_dir.clone()));
        let result = run_campaign_loaded(&w, &triples);
        cache.flush_persistent();
        cache.set_persist_dir(None);
        serde_json::to_string(&result).expect("serialize")
    });

    // The same campaign under fire.
    let chaos_dir = temp_dir("mixed");
    let plan = FaultPlan::builder()
        .seed(42)
        .site("cache.read", transient(0.3))
        .site("cache.write", transient(0.3))
        .site("index.flush", transient(0.3))
        .site(
            "cell.panic",
            FaultSpec {
                p: 1.0,
                max: Some(1),
                ..FaultSpec::default()
            },
        )
        .build();
    let (chaos_json, delta) = faultline::with_plan(plan, || {
        cache.clear_memory();
        cache.set_persist_dir(Some(chaos_dir.clone()));
        let before = cache.stats();
        let result = run_campaign_loaded(&w, &triples);
        cache.flush_persistent();
        cache.set_persist_dir(None);
        (
            serde_json::to_string(&result).expect("serialize"),
            cache.stats().since(before),
        )
    });
    assert_eq!(
        chaos_json, baseline,
        "artifacts under fault must be byte-identical to the clean run"
    );
    assert_eq!(
        delta.simulated,
        triples.len() as u64,
        "simulated is a true work count: one per cell, panic retries and all"
    );
    assert_eq!(delta.panicked_cells, 1, "exactly the injected poison fired");
    assert!(
        delta.disk_retries > 0,
        "transient disk faults must show up as absorbed retries, got {delta:?}"
    );

    // Resumability: a fault-free attach over the chaos run's directory
    // serves every fully persisted cell from disk and re-simulates only
    // what a lost write left behind — artifacts still byte-identical.
    let resumed = faultline::with_plan(FaultPlan::builder().build(), || {
        cache.clear_memory();
        cache.set_persist_dir(Some(chaos_dir.clone()));
        let before = cache.stats();
        let result = run_campaign_loaded(&w, &triples);
        let delta = cache.stats().since(before);
        cache.set_persist_dir(None);
        assert_eq!(
            delta.simulated + delta.disk_hits,
            triples.len() as u64,
            "every cell is either resumed from disk or re-simulated: {delta:?}"
        );
        serde_json::to_string(&result).expect("serialize")
    });
    assert_eq!(resumed, baseline, "resume under a clean plan matches too");

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// Satellite pin: a failed `index.json` flush (torn rename) leaves the
/// *previous* index intact on disk, leaves no temp litter behind, and
/// the next attach reconciles the directory so no cell is lost.
#[test]
fn torn_index_flush_leaves_previous_index_intact() {
    let w = toy_workload(200, 92);
    let arena = &w.jobs;
    let cluster = ClusterSpec::single(w.machine_size);
    let dir = temp_dir("torn-index");
    let easy = HeuristicTriple::standard_easy();
    let winner = HeuristicTriple::paper_winner();

    // Healthy start: one cell on disk, index flushed.
    let cache = SimCache::new();
    cache.set_persist_dir(Some(dir.clone()));
    faultline::with_plan(FaultPlan::builder().build(), || {
        cache.run_cell(arena, cluster, &easy).expect("clean run");
        cache.flush_persistent();
    });
    let index_path = dir.join(SimCache::INDEX_NAME);
    let before = std::fs::read_to_string(&index_path).expect("index exists after clean flush");

    // Every index flush now dies at the write/rename step.
    let plan = FaultPlan::builder()
        .site(
            "index.flush",
            FaultSpec {
                p: 1.0,
                kind: FaultKind::Hard,
                ..FaultSpec::default()
            },
        )
        .build();
    faultline::with_plan(plan, || {
        cache
            .run_cell(arena, cluster, &winner)
            .expect("cell itself succeeds");
        cache.flush_persistent();
    });
    let after = std::fs::read_to_string(&index_path).expect("index still present");
    assert_eq!(
        after, before,
        "a torn flush must leave the previous index intact"
    );
    let tmp_litter: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir readable")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(
        tmp_litter.is_empty(),
        "failed flushes must clean their temp files: {tmp_litter:?}"
    );

    // The stale index costs recency only: a fresh attach reconciles the
    // directory and serves *both* cells from disk.
    let reader = SimCache::new();
    reader.set_persist_dir(Some(dir.clone()));
    faultline::with_plan(FaultPlan::builder().build(), || {
        reader.run_cell(arena, cluster, &easy).expect("clean");
        reader.run_cell(arena, cluster, &winner).expect("clean");
    });
    let stats = reader.stats();
    assert_eq!(
        stats.disk_hits, 2,
        "no cell lost to the torn index: {stats:?}"
    );
    assert_eq!(stats.simulated, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Degradation ladder: persistent hard write failures flip the disk
/// layer to memory-only after [`SimCache::HARD_FAILURE_LIMIT`]
/// consecutive strikes — the campaign continues and the results stay
/// byte-identical — and the next (healthy) attach restores persistence.
#[test]
fn hard_disk_failures_degrade_to_memory_only_and_recover_on_reattach() {
    // Two workloads x three triples = six cells: enough consecutive
    // hard write failures to cross `HARD_FAILURE_LIMIT`.
    let workloads = [toy_workload(200, 93), toy_workload(200, 931)];
    let cells: Vec<(usize, HeuristicTriple)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(i, _)| sweep_triples().into_iter().map(move |t| (i, t)))
        .collect();
    assert!(cells.len() as u64 > SimCache::HARD_FAILURE_LIMIT);
    let dir = temp_dir("degrade");

    // Reference values, fault-free, memory-only.
    let reference: Vec<String> = faultline::with_plan(FaultPlan::builder().build(), || {
        let clean = SimCache::new();
        cells
            .iter()
            .map(|(i, t)| {
                let w = &workloads[*i];
                let cell = clean
                    .run_cell(&w.jobs, ClusterSpec::single(w.machine_size), t)
                    .expect("clean run");
                serde_json::to_string(&cell.result).expect("serialize")
            })
            .collect()
    });

    let cache = SimCache::new();
    cache.set_persist_dir(Some(dir.clone()));
    let plan = FaultPlan::builder()
        .site(
            "cache.write",
            FaultSpec {
                p: 1.0,
                kind: FaultKind::Hard,
                ..FaultSpec::default()
            },
        )
        .build();
    let under_fault: Vec<String> = faultline::with_plan(plan, || {
        cells
            .iter()
            .map(|(i, t)| {
                let w = &workloads[*i];
                let cell = cache
                    .run_cell(&w.jobs, ClusterSpec::single(w.machine_size), t)
                    .expect("campaign must continue");
                serde_json::to_string(&cell.result).expect("serialize")
            })
            .collect()
    });
    assert_eq!(
        under_fault, reference,
        "results are unaffected by the dying disk"
    );
    assert!(
        cache.stats().degraded,
        "every write failing hard must trip the degradation ladder: {:?}",
        cache.stats()
    );

    // Healthy re-attach: degradation clears, persistence (and with it
    // resumability) is back.
    cache.set_persist_dir(Some(dir.clone()));
    assert!(
        !cache.stats().degraded,
        "re-attach clears the degraded flag"
    );
    faultline::with_plan(FaultPlan::builder().build(), || {
        cache.clear_memory();
        let (i, t) = &cells[0];
        let w = &workloads[*i];
        let cell = cache
            .run_cell(&w.jobs, ClusterSpec::single(w.machine_size), t)
            .expect("clean");
        assert_eq!(
            serde_json::to_string(&cell.result).expect("serialize"),
            reference[0]
        );
        cache.flush_persistent();
    });
    assert!(
        dir.join(SimCache::INDEX_NAME).exists(),
        "a healthy attach persists again"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Panic isolation end to end: a cell that panics on **every** retry
/// surfaces as the typed [`ScenarioError::CellPanicked`] — the cache is
/// not poisoned (no stuck in-flight marker, no poisoned lock), and the
/// same cell simulates cleanly once the faults stop.
#[test]
fn poisoned_cell_surfaces_typed_error_and_cache_recovers() {
    let w = toy_workload(150, 94);
    let arena = &w.jobs;
    let cluster = ClusterSpec::single(w.machine_size);
    let triple = HeuristicTriple::standard_easy();
    let cache = SimCache::new();

    let plan = FaultPlan::builder().transient("cell.panic", 1.0).build();
    faultline::with_plan(plan, || {
        let err = cache
            .run_cell(arena, cluster, &triple)
            .expect_err("every attempt panics");
        assert!(
            matches!(err, ScenarioError::CellPanicked(_)),
            "typed panic error, got: {err}"
        );
    });
    let stats = cache.stats();
    assert_eq!(
        stats.panicked_cells,
        u64::from(SimCache::PANIC_RETRIES),
        "every bounded attempt was caught: {stats:?}"
    );
    assert_eq!(
        stats.simulated, 1,
        "one miss claimed, however many attempts"
    );

    // The marker was withdrawn with the lease: the next (clean) lookup
    // leads a fresh simulation instead of deadlocking on the failure.
    faultline::with_plan(FaultPlan::builder().build(), || {
        let cell = cache
            .run_cell(arena, cluster, &triple)
            .expect("clean after faults");
        assert!(cell.predictions.is_some());
    });
    assert_eq!(cache.stats().simulated, 2);
}

/// Coalesced waiters must re-elect a leader when the first leader's
/// cell panics its retries away: with two workers racing the same
/// poisoned-then-healed cell, exactly one error surfaces (or none, if
/// the second leader wins after the faults are spent) and the final
/// value is served to everyone.
#[test]
fn waiters_re_elect_a_leader_after_a_poisoned_leader() {
    let w = toy_workload(150, 95);
    let arena = Arc::new(w.jobs);
    let cluster = ClusterSpec::single(w.machine_size);
    let triple = HeuristicTriple::standard_easy();
    let cache: Arc<SimCache> = Arc::new(SimCache::new());

    // Exactly one cell's worth of panics: the first leader burns all
    // its attempts, the re-elected leader runs clean.
    let plan = FaultPlan::builder()
        .site(
            "cell.panic",
            FaultSpec {
                p: 1.0,
                max: Some(u64::from(SimCache::PANIC_RETRIES)),
                ..FaultSpec::default()
            },
        )
        .build();
    let outcomes = faultline::with_plan(plan, || {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let arena = arena.clone();
                    let triple = triple.clone();
                    scope.spawn(move || cache.run_cell(&arena, cluster, &triple).is_ok())
                })
                .collect();
            workers
                .into_iter()
                .map(|h| h.join().expect("worker thread must not die"))
                .collect::<Vec<bool>>()
        })
    });
    let successes = outcomes.iter().filter(|ok| **ok).count();
    assert!(
        successes >= 3,
        "at most the first leader fails; everyone else gets the re-elected leader's cell: {outcomes:?}"
    );
    // And the cache still works.
    faultline::with_plan(FaultPlan::builder().build(), || {
        cache.run_cell(&arena, cluster, &triple).expect("clean");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The satellite chaos property: a small campaign under a *random*
    /// fault plan (random seed, random transient disk fault rates, one
    /// injected cell panic) is byte-identical to the fault-free run,
    /// with `simulated` equal to the true work done.
    #[test]
    fn random_fault_plans_preserve_artifacts(plan_seed in 0u64..10_000, p in 0.05f64..0.45) {
        let w = toy_workload(150, 96);
        let arena = &w.jobs;
        let cluster = ClusterSpec::single(w.machine_size);
        let triples = [
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
        ];

        let reference: Vec<String> = faultline::with_plan(FaultPlan::builder().build(), || {
            let clean = SimCache::new();
            triples
                .iter()
                .map(|t| {
                    let cell = clean.run_cell(arena, cluster, t).expect("clean run");
                    serde_json::to_string(&cell.result).expect("serialize")
                })
                .collect()
        });

        let dir = temp_dir(&format!("prop-{plan_seed}"));
        let plan = FaultPlan::builder()
            .seed(plan_seed)
            .site("cache.read", transient(p))
            .site("cache.write", transient(p))
            .site("index.flush", transient(p))
            .site("cache.remove", transient(p))
            .site("cell.panic", FaultSpec { p: 1.0, max: Some(1), ..FaultSpec::default() })
            .build();
        let chaotic = SimCache::new();
        chaotic.set_persist_dir(Some(dir.clone()));
        let under_fault: Vec<String> = faultline::with_plan(plan, || {
            triples
                .iter()
                .map(|t| {
                    let cell = chaotic.run_cell(arena, cluster, t).expect("campaign continues");
                    serde_json::to_string(&cell.result).expect("serialize")
                })
                .collect()
        });
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(under_fault, reference);
        let stats = chaotic.stats();
        prop_assert_eq!(stats.simulated, triples.len() as u64);
        prop_assert_eq!(stats.panicked_cells, 1);
    }
}
