//! Property tests of the policy registry: every registered name parses,
//! builds, and `Display`s back to itself; arbitrary unknown names produce
//! typed [`RegistryError`]s — never panics.

use proptest::prelude::*;

use predictsim_experiments::registry::{
    parse_cluster, parse_ml, registered_corrections, registered_predictors, registered_schedulers,
    RegistryError,
};
use predictsim_experiments::triple::{
    campaign_triples, CorrectionKind, HeuristicTriple, PredictionTechnique, Variant,
};
use predictsim_sim::{ClusterSpec, Partition};

/// A strategy over arbitrary short names drawn from the characters policy
/// names use (so collisions with real names are possible and filtered).
fn name_chars() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..40, 1..24).prop_map(|indices| {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789()=,+/-";
        indices
            .into_iter()
            .map(|i| ALPHABET[i % ALPHABET.len()] as char)
            .collect()
    })
}

proptest! {
    /// Any registered scheduler name parses, builds a scheduler whose
    /// display name matches, and round-trips through `Display`.
    #[test]
    fn registered_schedulers_round_trip(index in 0usize..4) {
        let entry = &registered_schedulers()[index];
        let variant: Variant = entry.name.parse().expect("registered scheduler parses");
        prop_assert_eq!(variant.to_string(), entry.name.clone());
        prop_assert_eq!(variant.build().name(), entry.name.clone());
    }

    /// Any registered predictor name parses, builds a predictor whose
    /// display name matches, and round-trips through `Display`.
    #[test]
    fn registered_predictors_round_trip(index in 0usize..23) {
        let entry = &registered_predictors()[index];
        let prediction: PredictionTechnique =
            entry.name.parse().expect("registered predictor parses");
        prop_assert_eq!(prediction.to_string(), entry.name.clone());
        prop_assert_eq!(prediction.build().name(), entry.name.clone());
    }

    /// Any registered correction name parses, builds, and round-trips.
    #[test]
    fn registered_corrections_round_trip(index in 0usize..3) {
        let entry = &registered_corrections()[index];
        let kind: CorrectionKind = entry.name.parse().expect("registered correction parses");
        prop_assert_eq!(kind.to_string(), entry.name.clone());
        // Building must succeed; the built policy has its own long-form
        // display name, so only existence is asserted here.
        let _policy = kind.build();
    }

    /// Every name in the §6.2 campaign grid (picked at random) parses
    /// back to the exact triple that produced it.
    #[test]
    fn campaign_triple_names_round_trip(index in 0usize..128) {
        let triples = campaign_triples();
        let triple = &triples[index];
        let parsed: HeuristicTriple = triple.name().parse().expect("campaign triple parses");
        prop_assert_eq!(&parsed, triple);
        prop_assert_eq!(parsed.to_string(), triple.name());
    }

    /// Arbitrary names never panic the parsers: they either resolve to a
    /// registered policy (and then round-trip) or return the matching
    /// typed error.
    #[test]
    fn arbitrary_names_parse_or_fail_typed(name in name_chars()) {
        match name.parse::<Variant>() {
            Ok(v) => prop_assert_eq!(v.to_string(), name.clone()),
            Err(RegistryError::UnknownScheduler(n)) => prop_assert_eq!(n, name.clone()),
            Err(other) => return Err(TestCaseError::fail(format!("wrong error {other:?}"))),
        }
        match name.parse::<CorrectionKind>() {
            // Aliases (`requested-time`, `recursive-doubling`) canonicalize.
            Ok(c) => prop_assert!(
                c.to_string() == name || matches!(name.as_str(), "requested-time" | "recursive-doubling")
            ),
            Err(RegistryError::UnknownCorrection(n)) => prop_assert_eq!(n, name.clone()),
            Err(other) => return Err(TestCaseError::fail(format!("wrong error {other:?}"))),
        }
        match name.parse::<PredictionTechnique>() {
            Ok(p) => {
                // The colon form canonicalizes to the display form; both
                // parse back to the same technique.
                let display = p.to_string();
                let reparsed: PredictionTechnique =
                    display.parse().expect("display form parses");
                prop_assert_eq!(reparsed, p);
            }
            Err(RegistryError::UnknownPredictor(n)) => prop_assert_eq!(n, name.clone()),
            Err(RegistryError::MalformedMl { spec, .. }) => {
                prop_assert_eq!(spec, name.clone());
                prop_assert!(name.starts_with("ml(") || name.starts_with("ml:"));
            }
            Err(other) => return Err(TestCaseError::fail(format!("wrong error {other:?}"))),
        }
        // Triple parsing composes the three parsers; same guarantee.
        match name.parse::<HeuristicTriple>() {
            Ok(t) => {
                let reparsed: HeuristicTriple = t.name().parse().expect("round trip");
                prop_assert_eq!(reparsed, t);
            }
            Err(_typed) => {} // any RegistryError variant is acceptable
        }
    }

    /// Any valid cluster — 1 to 8 partitions, assorted sizes and speeds
    /// (speed 1.0 included, so the legacy single-homogeneous display form
    /// `cluster:<n>` is exercised) — round-trips through its canonical
    /// `Display` form via the registry parser.
    #[test]
    fn cluster_specs_round_trip(
        parts in prop::collection::vec((1u32..=512, 0usize..5), 1..9)
    ) {
        const SPEEDS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];
        let partitions: Vec<Partition> = parts
            .into_iter()
            .map(|(size, speed)| Partition {
                size,
                speed: SPEEDS[speed],
            })
            .collect();
        let spec = ClusterSpec::from_partitions(&partitions).expect("valid partitions");
        let display = spec.to_string();
        let reparsed = parse_cluster(&display).expect("canonical form parses");
        prop_assert_eq!(reparsed, spec);
        prop_assert_eq!(reparsed.to_string(), display);
    }

    /// The legacy shorthand — a bare processor count — always parses to
    /// the single homogeneous machine.
    #[test]
    fn legacy_machine_size_shorthand_parses(procs in 1u32..1_000_000) {
        let spec = parse_cluster(&procs.to_string()).expect("bare count parses");
        prop_assert_eq!(spec, ClusterSpec::single(procs));
        prop_assert!(spec.is_single_homogeneous());
        prop_assert_eq!(parse_cluster(&spec.to_string()).expect("round trip"), spec);
    }

    /// Arbitrary strings never panic the cluster parser: they resolve to
    /// a spec that round-trips, or fail with `MalformedCluster`.
    #[test]
    fn arbitrary_cluster_specs_parse_or_fail_typed(name in name_chars()) {
        match parse_cluster(&name) {
            Ok(spec) => {
                prop_assert_eq!(parse_cluster(&spec.to_string()).expect("canonical"), spec);
            }
            Err(RegistryError::MalformedCluster { spec, .. }) => {
                prop_assert_eq!(spec, name.clone());
            }
            Err(other) => return Err(TestCaseError::fail(format!("wrong error {other:?}"))),
        }
    }

    /// Fuzzed `ml(...)` bodies never panic: they parse to a config that
    /// round-trips, or fail with `MalformedMl`.
    #[test]
    fn fuzzed_ml_specs_parse_or_fail_typed(body in name_chars(), colon in 0u8..2) {
        let spec = if colon == 0 {
            format!("ml({body})")
        } else {
            format!("ml:{body}")
        };
        match parse_ml(&spec) {
            Ok(cfg) => prop_assert_eq!(parse_ml(&cfg.name()).expect("canonical form"), cfg),
            Err(RegistryError::MalformedMl { spec: s, .. }) => prop_assert_eq!(s, spec),
            Err(other) => return Err(TestCaseError::fail(format!("wrong error {other:?}"))),
        }
    }
}
