//! Correctness of the simulation cache and the `--prune` sweep mode:
//! cached campaigns serialize byte-identically to fresh ones, pruning
//! preserves the winner, and warm cross-simulation runs allocate
//! nothing (the [`ArenaStats`] pin at the experiment layer).

use predictsim_core::loss::AsymmetricLoss;
use predictsim_core::predictor::MlConfig;
use predictsim_core::weighting::WeightingScheme;
use predictsim_experiments::cache::SimCache;
use predictsim_experiments::campaign::{prune_exempt, run_campaign_loaded, run_campaign_pruned};
use predictsim_experiments::scenario::{reset_thread_arena_stats, thread_arena_stats};
use predictsim_experiments::source::LoadedWorkload;
use predictsim_experiments::triple::{
    reference_triples, CorrectionKind, HeuristicTriple, PredictionTechnique, Variant,
};
use predictsim_workload::{generate, WorkloadSpec};

fn golden_workload(seed: u64) -> LoadedWorkload {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 300;
    spec.duration = 3 * 86_400;
    spec.utilization = 0.9;
    generate(&spec, seed).into()
}

/// The golden-trace triple slice: baselines, a spread of learners, and
/// the clairvoyant references.
fn sweep_triples() -> Vec<HeuristicTriple> {
    let mut triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ];
    for (loss, weighting) in [
        (AsymmetricLoss::SQUARED, WeightingScheme::Constant),
        (AsymmetricLoss::SQUARED, WeightingScheme::LargeArea),
        (AsymmetricLoss::E_LOSS, WeightingScheme::Constant),
    ] {
        for correction in CorrectionKind::ALL {
            triples.push(HeuristicTriple {
                prediction: PredictionTechnique::Ml(MlConfig::new(loss, weighting)),
                correction: Some(correction),
                variant: Variant::EasySjbf,
            });
        }
    }
    triples.extend(reference_triples());
    triples
}

/// A cached campaign must serialize byte-for-byte like a fresh one: the
/// memoized payload is the very `TripleResult` a fresh simulation
/// aggregates.
#[test]
fn cached_campaign_serializes_byte_identically_to_fresh() {
    let w = golden_workload(51);
    let triples = sweep_triples();
    SimCache::global().clear_memory();
    let fresh = run_campaign_loaded(&w, &triples);
    let fresh_json = serde_json::to_string(&fresh).expect("serialize");
    // Second run: all cells come from the cache.
    let cached = run_campaign_loaded(&w, &triples);
    let cached_json = serde_json::to_string(&cached).expect("serialize");
    assert_eq!(fresh_json, cached_json, "cache must be invisible in bytes");
    // And a fully fresh re-simulation agrees too (determinism + cache
    // transparency at once).
    SimCache::global().clear_memory();
    let refreshed = run_campaign_loaded(&w, &triples);
    assert_eq!(
        serde_json::to_string(&refreshed).expect("serialize"),
        fresh_json
    );
}

/// `--prune` keeps the same winner as the exhaustive sweep: every
/// pruned cell records a certain lower bound that exceeds the
/// threshold, so the best (and best-per-variant) triples are unchanged.
#[test]
fn pruned_sweep_keeps_the_same_winner() {
    let w = golden_workload(52);
    let triples = sweep_triples();

    SimCache::global().clear_memory();
    let full = run_campaign_loaded(&w, &triples);

    // Fresh cache so pruning actually engages instead of reading the
    // full run's memoized cells.
    SimCache::global().clear_memory();
    let pruned = run_campaign_pruned(&w, &triples);

    let full_winner = full.best_where(|r| r.predictor != "clairvoyant").unwrap();
    let sweep_winner = pruned
        .campaign
        .best_where(|r| r.predictor != "clairvoyant")
        .unwrap();
    assert_eq!(
        full_winner.triple, sweep_winner.triple,
        "pruning must preserve the winner"
    );
    assert_eq!(
        full_winner.ave_bsld, sweep_winner.ave_bsld,
        "the winner's value must be exact, not a bound"
    );

    // Every exempt triple is exact; every pruned cell's recorded bound
    // exceeds the threshold and lower-bounds the true value.
    for (t, r) in triples.iter().zip(&pruned.campaign.results) {
        assert_eq!(t.name(), r.triple);
        let exact = full.get(&r.triple).expect("full campaign has every cell");
        if pruned.pruned.contains(&r.triple) {
            assert!(
                !prune_exempt(t),
                "{}: exempt triples must never be pruned",
                r.triple
            );
            assert!(
                r.ave_bsld > pruned.threshold,
                "{}: pruned bound {} must exceed threshold {}",
                r.triple,
                r.ave_bsld,
                pruned.threshold
            );
            assert!(
                r.ave_bsld <= exact.ave_bsld + 1e-9,
                "{}: recorded bound {} must lower-bound the true {}",
                r.triple,
                r.ave_bsld,
                exact.ave_bsld
            );
        } else {
            assert_eq!(r, exact, "{}: unpruned cells must be exact", r.triple);
        }
    }
    // The sweep actually pruned something (otherwise this test pins
    // nothing) — the sweep set contains learners far worse than the
    // baselines.
    assert!(
        !pruned.pruned.is_empty(),
        "expected at least one dominated triple to be pruned"
    );
}

/// The experiment-layer half of the cross-simulation scratch-reuse pin:
/// once a worker's arena has seen the workload shape, further campaign
/// simulations on that worker allocate nothing (`reallocating_runs`
/// stays 0). Runs single-threaded so the only worker is this thread.
#[test]
fn warm_cross_simulation_runs_allocate_nothing() {
    let w = golden_workload(53);
    let triples = sweep_triples();
    rayon::pool::with_num_threads(1, || {
        SimCache::global().clear_memory();
        run_campaign_loaded(&w, &triples); // warm-up
        SimCache::global().clear_memory();
        reset_thread_arena_stats();
        run_campaign_loaded(&w, &triples);
        let stats = thread_arena_stats();
        assert_eq!(
            stats.runs,
            triples.len() as u64,
            "every cell must run through the thread's arena"
        );
        assert_eq!(
            stats.reallocating_runs, 0,
            "warm cross-simulation runs must not grow any engine buffer"
        );
    });
}
