//! Heuristic triples (§6.2): prediction technique × correction mechanism
//! × backfilling variant.
//!
//! "For each workload log, the experimental campaign runs 128
//! simulations": 20 learning configurations (Table 5) plus AVE₂, each
//! crossed with 3 corrections and 2 backfilling variants (126), plus the
//! Requested Time prediction (no correction applicable) under both
//! variants (2). [`campaign_triples`] enumerates exactly that set;
//! [`reference_triples`] adds the clairvoyant upper bounds of Table 6.

use serde::{Deserialize, Serialize};

use predictsim_core::correction::{
    IncrementalCorrection, RecursiveDoublingCorrection, RequestedTimeCorrection,
};
use predictsim_core::predictor::{ml_grid, Ave2Predictor, MlConfig, MlPredictor};
use predictsim_sim::predict::{
    ClairvoyantPredictor, CorrectionPolicy, RequestedTimePredictor, RuntimePredictor,
};
use predictsim_sim::scheduler::{ConservativeScheduler, EasyScheduler, FcfsScheduler, Scheduler};
use predictsim_sim::{Job, SimConfig, SimError, SimResult};

use crate::scenario::{Scenario, ScenarioError};

/// A prediction technique of §6.2.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictionTechnique {
    /// Exact running times (upper-bound reference).
    Clairvoyant,
    /// The user-requested time — standard EASY's information.
    RequestedTime,
    /// AVE₂(k) of Tsafrir et al. \[24\].
    Ave2,
    /// A learning configuration from the Table 5 grid.
    Ml(MlConfig),
}

impl PredictionTechnique {
    /// Instantiates a fresh predictor (with empty learning state).
    pub fn build(&self) -> Box<dyn RuntimePredictor + Send> {
        match self {
            PredictionTechnique::Clairvoyant => Box::new(ClairvoyantPredictor),
            PredictionTechnique::RequestedTime => Box::new(RequestedTimePredictor),
            PredictionTechnique::Ave2 => Box::new(Ave2Predictor::new()),
            PredictionTechnique::Ml(cfg) => Box::new(MlPredictor::new(*cfg)),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            PredictionTechnique::Clairvoyant => "clairvoyant".into(),
            PredictionTechnique::RequestedTime => "requested".into(),
            PredictionTechnique::Ave2 => "ave2".into(),
            PredictionTechnique::Ml(cfg) => cfg.name(),
        }
    }
}

/// A correction mechanism of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrectionKind {
    /// Fall back to the requested time.
    RequestedTime,
    /// Tsafrir's fixed-increment list.
    Incremental,
    /// Double the elapsed running time.
    RecursiveDoubling,
}

impl CorrectionKind {
    /// The three §5.2 mechanisms.
    pub const ALL: [CorrectionKind; 3] = [
        CorrectionKind::RequestedTime,
        CorrectionKind::Incremental,
        CorrectionKind::RecursiveDoubling,
    ];

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn CorrectionPolicy + Send + Sync> {
        match self {
            CorrectionKind::RequestedTime => Box::new(RequestedTimeCorrection),
            CorrectionKind::Incremental => Box::new(IncrementalCorrection::new()),
            CorrectionKind::RecursiveDoubling => Box::new(RecursiveDoublingCorrection),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CorrectionKind::RequestedTime => "req-time",
            CorrectionKind::Incremental => "incremental",
            CorrectionKind::RecursiveDoubling => "rec-doubling",
        }
    }
}

/// A backfilling variant of §5.1 (plus FCFS for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// EASY backfilling, FCFS backfill order.
    Easy,
    /// EASY with Shortest-Job-Backfilled-First order \[24\].
    EasySjbf,
    /// No backfilling (ablation only; not part of the 128).
    Fcfs,
    /// Conservative backfilling \[14\] (ablation only; not part of the
    /// 128).
    Conservative,
}

impl Variant {
    /// The paper's two evaluated variants.
    pub const PAPER: [Variant; 2] = [Variant::Easy, Variant::EasySjbf];

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler + Send> {
        match self {
            Variant::Easy => Box::new(EasyScheduler::new()),
            Variant::EasySjbf => Box::new(EasyScheduler::sjbf()),
            Variant::Fcfs => Box::new(FcfsScheduler),
            Variant::Conservative => Box::new(ConservativeScheduler::new()),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Easy => "easy",
            Variant::EasySjbf => "easy-sjbf",
            Variant::Fcfs => "fcfs",
            Variant::Conservative => "conservative",
        }
    }
}

/// One heuristic triple: prediction × correction × variant.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicTriple {
    /// Prediction technique.
    pub prediction: PredictionTechnique,
    /// Correction mechanism; `None` for techniques that never
    /// under-predict (Requested Time, Clairvoyant).
    pub correction: Option<CorrectionKind>,
    /// Backfilling variant.
    pub variant: Variant,
}

impl HeuristicTriple {
    /// Standard EASY backfilling: `(Requested Time, –, EASY)` (§6.2).
    pub fn standard_easy() -> Self {
        Self {
            prediction: PredictionTechnique::RequestedTime,
            correction: None,
            variant: Variant::Easy,
        }
    }

    /// EASY++ of Tsafrir et al.: `(AVE₂, Incremental, EASY-SJBF)` (§6.2).
    pub fn easy_plus_plus() -> Self {
        Self {
            prediction: PredictionTechnique::Ave2,
            correction: Some(CorrectionKind::Incremental),
            variant: Variant::EasySjbf,
        }
    }

    /// The paper's cross-validation winner (§6.3.3): E-Loss learning +
    /// Incremental correction + EASY-SJBF.
    pub fn paper_winner() -> Self {
        Self {
            prediction: PredictionTechnique::Ml(MlConfig::e_loss()),
            correction: Some(CorrectionKind::Incremental),
            variant: Variant::EasySjbf,
        }
    }

    /// Clairvoyant reference under the given variant (Table 6's first two
    /// columns).
    pub fn clairvoyant(variant: Variant) -> Self {
        Self {
            prediction: PredictionTechnique::Clairvoyant,
            correction: None,
            variant,
        }
    }

    /// Display name, e.g. `"ml(u=lin,o=sq,g=area)+incremental+easy-sjbf"`.
    pub fn name(&self) -> String {
        let mut s = self.prediction.name();
        if let Some(c) = &self.correction {
            s.push('+');
            s.push_str(c.name());
        }
        s.push('+');
        s.push_str(self.variant.name());
        s
    }

    /// Runs this triple on a workload (a veneer over the
    /// [`Scenario`] API — the single simulation entry point).
    pub fn run(&self, jobs: &[Job], config: SimConfig) -> Result<SimResult, SimError> {
        Scenario::from_triple(self)
            .run_on(jobs, config)
            .map_err(|e| match e {
                ScenarioError::Sim(sim) => sim,
                // A typed triple needs no registry or workload
                // resolution, so no other error can occur.
                other => unreachable!("typed triple cannot fail resolution: {other}"),
            })
    }
}

/// The §6.2 campaign: exactly 128 triples per log.
pub fn campaign_triples() -> Vec<HeuristicTriple> {
    let mut triples = Vec::with_capacity(128);
    // 20 ML configurations × 3 corrections × 2 variants = 120.
    for cfg in ml_grid() {
        for correction in CorrectionKind::ALL {
            for variant in Variant::PAPER {
                triples.push(HeuristicTriple {
                    prediction: PredictionTechnique::Ml(cfg),
                    correction: Some(correction),
                    variant,
                });
            }
        }
    }
    // AVE₂ × 3 × 2 = 6.
    for correction in CorrectionKind::ALL {
        for variant in Variant::PAPER {
            triples.push(HeuristicTriple {
                prediction: PredictionTechnique::Ave2,
                correction: Some(correction),
                variant,
            });
        }
    }
    // Requested Time × 2 (no correction can fire: p ≤ p̃ after cleaning).
    for variant in Variant::PAPER {
        triples.push(HeuristicTriple {
            prediction: PredictionTechnique::RequestedTime,
            correction: None,
            variant,
        });
    }
    triples
}

/// The clairvoyant references of Table 6 (not counted in the 128).
pub fn reference_triples() -> Vec<HeuristicTriple> {
    Variant::PAPER
        .iter()
        .map(|&v| HeuristicTriple::clairvoyant(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_has_exactly_128_triples() {
        let triples = campaign_triples();
        assert_eq!(triples.len(), 128, "§6.2: 128 simulations per log");
        // All names unique.
        let names: std::collections::HashSet<String> = triples.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 128);
    }

    #[test]
    fn named_triples() {
        assert_eq!(HeuristicTriple::standard_easy().name(), "requested+easy");
        assert_eq!(
            HeuristicTriple::easy_plus_plus().name(),
            "ave2+incremental+easy-sjbf"
        );
        assert_eq!(
            HeuristicTriple::paper_winner().name(),
            "ml(u=lin,o=sq,g=area)+incremental+easy-sjbf"
        );
    }

    #[test]
    fn standard_easy_and_easypp_are_in_the_campaign() {
        let names: Vec<String> = campaign_triples().iter().map(|t| t.name()).collect();
        assert!(names.contains(&HeuristicTriple::standard_easy().name()));
        assert!(names.contains(&HeuristicTriple::easy_plus_plus().name()));
        assert!(names.contains(&HeuristicTriple::paper_winner().name()));
    }

    #[test]
    fn triples_run() {
        use predictsim_sim::job::JobId;
        use predictsim_sim::time::Time;
        let jobs: Vec<Job> = (0..30)
            .map(|i| Job {
                id: JobId(i),
                submit: Time(i as i64 * 50),
                run: 100 + (i as i64 % 5) * 60,
                requested: 2000,
                procs: 1 + i % 4,
                user: i % 3,
                user_ix: i % 3,
                swf_id: i as u64,
            })
            .collect();
        let cfg = SimConfig::single(8);
        for triple in [
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
            HeuristicTriple::paper_winner(),
            HeuristicTriple::clairvoyant(Variant::EasySjbf),
        ] {
            let res = triple.run(&jobs, cfg).unwrap();
            assert_eq!(res.outcomes.len(), 30, "{}", triple.name());
        }
    }
}
