//! # predictsim-experiments
//!
//! The experiment campaign of §6 of Gaussier et al. (SC '15), end to end:
//!
//! * [`scenario`] — the `Scenario` builder: the single public entry
//!   point for running simulations (workload × policies × observer);
//! * [`registry`] — the string-keyed policy registry (`"easy-sjbf"`,
//!   `"ave2"`, `"ml(u=lin,o=sq,g=area)"`, …) with parse/display
//!   round-tripping and typed errors;
//! * [`source`] — the unified `WorkloadSource`: synthetic generation and
//!   real SWF logs behind one trait;
//! * [`triple`] — the heuristic-triple space (prediction × correction ×
//!   backfilling variant), exactly 128 per log as in §6.2;
//! * [`campaign`] — the parallel campaign runner;
//! * [`cv`] — leave-one-out cross-validated triple selection (§6.3.3);
//! * [`tables`] — regenerators for Tables 1, 6, 7 and 8;
//! * [`figures`] — regenerators for Figures 3, 4 and 5;
//! * [`ablation`] — additional ablations (scheduler, correction,
//!   optimizer, basis, loss shape);
//! * [`context`] — workload setup shared by the `repro` binary, tests
//!   and benches;
//! * [`timing`] — per-phase wall-clock accounting for `repro --timing`;
//! * [`progress`] — opt-in per-cell progress lines for long runs
//!   (`repro --progress`, implied by `--full`).
//!
//! Every fan-out site (campaign triples, CV folds, ablation grids,
//! per-log table loops, figure simulations) runs on the `vendor/rayon`
//! thread pool; `RAYON_NUM_THREADS` (or `repro --threads N`) pins the
//! width, and results are bit-identical at any width.
//!
//! The `repro` binary regenerates any table or figure:
//!
//! ```text
//! cargo run --release -p predictsim --bin repro -- all
//! cargo run --release -p predictsim --bin repro -- table6 --scale 0.1
//! cargo run --release -p predictsim --bin repro -- fig4 --full
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cache;
pub mod campaign;
pub mod context;
pub mod cv;
pub mod figures;
pub mod progress;
pub mod registry;
pub mod scenario;
pub mod source;
pub mod tables;
pub mod timing;
pub mod trace;
pub mod triple;

pub use cache::{CacheStats, CachedCell, CellSource, SimCache};

pub use campaign::{
    run_campaign, run_campaign_cluster, run_campaign_loaded, CampaignResult, TripleResult,
};
pub use context::{ExperimentSetup, DEFAULT_SEED, QUICK_SCALE};
pub use cv::{cross_validate, CvOutcome, CvRow};
/// The deterministic fault-injection layer (`REPRO_FAULTS`, chaos
/// tests) — re-exported so experiment consumers and integration tests
/// reach it without a separate dependency edge.
pub use predictsim_faultline as faultline;
pub use registry::{
    registered_corrections, registered_predictors, registered_schedulers, render_registry,
    PolicyEntry, RegistryError,
};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioError};
pub use source::{
    JobArena, LoadStats, LoadedWorkload, SourceError, SwfSource, SyntheticSource, WorkloadSource,
};
pub use trace::{AlibabaSource, GoogleSource};
pub use triple::{
    campaign_triples, reference_triples, CorrectionKind, HeuristicTriple, PredictionTechnique,
    Variant,
};
