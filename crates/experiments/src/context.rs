//! Experiment setup: which workloads, at what scale, from which seed.

use predictsim_workload::{all_six, generate, GeneratedWorkload, WorkloadSpec};

/// Default scale factor for the quick (CI-sized) experiment runs.
pub const QUICK_SCALE: f64 = 0.05;

/// Seed used by default throughout the repro harness: results in the
/// committed EXPERIMENTS.md were produced with this seed.
pub const DEFAULT_SEED: u64 = 20150101;

/// How the repro harness generates its workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSetup {
    /// Scale factor applied to the Table 4 presets (1.0 = full size).
    pub scale: f64,
    /// Workload generation seed.
    pub seed: u64,
}

impl ExperimentSetup {
    /// Quick setup (5% of the full log sizes): the default for `repro`,
    /// test suites and benches; a full campaign finishes in seconds.
    pub fn quick() -> Self {
        Self {
            scale: QUICK_SCALE,
            seed: DEFAULT_SEED,
        }
    }

    /// Full Table 4 sizes (28k–495k jobs per log).
    pub fn full() -> Self {
        Self {
            scale: 1.0,
            seed: DEFAULT_SEED,
        }
    }

    /// The six log specs at this setup's scale.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            all_six()
        } else {
            all_six()
                .into_iter()
                .map(|s| s.scaled(self.scale))
                .collect()
        }
    }

    /// Generates all six workloads.
    pub fn workloads(&self) -> Vec<GeneratedWorkload> {
        self.specs()
            .iter()
            .map(|s| generate(s, self.seed))
            .collect()
    }

    /// Finds one Table 4 spec at this setup's scale by name prefix
    /// (case-insensitive) — the lookup rule `--log` and
    /// [`ExperimentSetup::workload`] share. Names outside Table 4 fall
    /// back to the full preset registry (`toy`, the cloud-scale
    /// `millions-of-users` stressor), scaled the same way.
    pub fn spec(&self, name: &str) -> Option<WorkloadSpec> {
        self.specs()
            .into_iter()
            .find(|s| {
                s.name
                    .to_ascii_lowercase()
                    .starts_with(&name.to_ascii_lowercase())
            })
            .or_else(|| {
                let s = predictsim_workload::by_name(name)?;
                Some(if (self.scale - 1.0).abs() < f64::EPSILON {
                    s
                } else {
                    s.scaled(self.scale)
                })
            })
    }

    /// Generates one workload by Table 4 name (case-insensitive).
    pub fn workload(&self, name: &str) -> Option<GeneratedWorkload> {
        self.spec(name).map(|s| generate(&s, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_scales_all_six() {
        let setup = ExperimentSetup::quick();
        let specs = setup.specs();
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().all(|s| s.name.contains('@')));
        // 5% of KTH's 28k jobs.
        assert_eq!(specs[0].jobs, 1400);
    }

    #[test]
    fn full_setup_uses_table4_sizes() {
        let specs = ExperimentSetup::full().specs();
        assert_eq!(specs[0].jobs, 28_000);
        assert_eq!(specs[4].jobs, 312_000);
        assert!(!specs[0].name.contains('@'));
    }

    #[test]
    fn workload_lookup_by_prefix() {
        let setup = ExperimentSetup {
            scale: 0.01,
            seed: 1,
        };
        let w = setup.workload("curie").expect("curie exists");
        assert_eq!(w.machine_size, 80_640);
        assert!(setup.workload("nope").is_none());
    }

    #[test]
    fn non_table4_presets_resolve_scaled() {
        let setup = ExperimentSetup {
            scale: 0.001,
            seed: 1,
        };
        let s = setup.spec("millions-of-users").expect("registry fallback");
        assert_eq!(s.jobs, 1_000, "scaled to 0.1%");
        assert_eq!(s.users, 400_000, "population is not scaled");
        let full = ExperimentSetup::full()
            .spec("millions-of-users")
            .expect("full scale");
        assert_eq!(full.jobs, 1_000_000);
    }
}
