//! Experiment setup: which workloads, at what scale, from which seed.

use predictsim_workload::{all_six, generate, GeneratedWorkload, WorkloadSpec};

/// Default scale factor for the quick (CI-sized) experiment runs.
pub const QUICK_SCALE: f64 = 0.05;

/// Seed used by default throughout the repro harness: results in the
/// committed EXPERIMENTS.md were produced with this seed.
pub const DEFAULT_SEED: u64 = 20150101;

/// How the repro harness generates its workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSetup {
    /// Scale factor applied to the Table 4 presets (1.0 = full size).
    pub scale: f64,
    /// Workload generation seed.
    pub seed: u64,
}

impl ExperimentSetup {
    /// Quick setup (5% of the full log sizes): the default for `repro`,
    /// test suites and benches; a full campaign finishes in seconds.
    pub fn quick() -> Self {
        Self {
            scale: QUICK_SCALE,
            seed: DEFAULT_SEED,
        }
    }

    /// Full Table 4 sizes (28k–495k jobs per log).
    pub fn full() -> Self {
        Self {
            scale: 1.0,
            seed: DEFAULT_SEED,
        }
    }

    /// The six log specs at this setup's scale.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            all_six()
        } else {
            all_six()
                .into_iter()
                .map(|s| s.scaled(self.scale))
                .collect()
        }
    }

    /// Generates all six workloads.
    pub fn workloads(&self) -> Vec<GeneratedWorkload> {
        self.specs()
            .iter()
            .map(|s| generate(s, self.seed))
            .collect()
    }

    /// Finds one Table 4 spec at this setup's scale by name prefix
    /// (case-insensitive) — the lookup rule `--log` and
    /// [`ExperimentSetup::workload`] share.
    pub fn spec(&self, name: &str) -> Option<WorkloadSpec> {
        self.specs().into_iter().find(|s| {
            s.name
                .to_ascii_lowercase()
                .starts_with(&name.to_ascii_lowercase())
        })
    }

    /// Generates one workload by Table 4 name (case-insensitive).
    pub fn workload(&self, name: &str) -> Option<GeneratedWorkload> {
        self.spec(name).map(|s| generate(&s, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_scales_all_six() {
        let setup = ExperimentSetup::quick();
        let specs = setup.specs();
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().all(|s| s.name.contains('@')));
        // 5% of KTH's 28k jobs.
        assert_eq!(specs[0].jobs, 1400);
    }

    #[test]
    fn full_setup_uses_table4_sizes() {
        let specs = ExperimentSetup::full().specs();
        assert_eq!(specs[0].jobs, 28_000);
        assert_eq!(specs[4].jobs, 312_000);
        assert!(!specs[0].name.contains('@'));
    }

    #[test]
    fn workload_lookup_by_prefix() {
        let setup = ExperimentSetup {
            scale: 0.01,
            seed: 1,
        };
        let w = setup.workload("curie").expect("curie exists");
        assert_eq!(w.machine_size, 80_640);
        assert!(setup.workload("nope").is_none());
    }
}
