//! Process-wide simulation memoization — sharded, single-flight, with an
//! opt-in persistent layer under a size-budgeted LRU.
//!
//! The repro pipeline re-simulates the same (workload × policy triple)
//! cells from several experiments: the campaign grid is re-read by
//! cross-validation, Table 1 runs two of the campaign's cells per log,
//! Table 8 and Figures 4/5 re-run campaign cells on Curie, and the
//! ablations overlap the grid on the first log. [`SimCache`] keys each
//! simulated cell by (workload [fingerprint](JobArena::fingerprint) ×
//! canonical triple name × canonical [`ClusterSpec`] string) and
//! memoizes the cell's
//! aggregate [`TripleResult`] plus its per-job initial predictions —
//! everything any consumer reads — so every distinct cell simulates
//! **once per process**, whichever experiment asks first.
//!
//! # Sharding
//!
//! The in-memory layer is split into [`SHARD_COUNT`] shards selected by
//! the cell key's FNV-1a hash (the same hash that names persistent
//! files), each with its own lock and its own slice of the prediction
//! budget. Parallel campaign workers therefore contend only when they
//! touch the *same* shard, not on one global lock.
//!
//! # Single-flight
//!
//! A miss installs an in-flight marker in its shard before simulating;
//! concurrent requesters for the same cell block on that marker and are
//! handed the first simulation's result instead of duplicating the
//! work. [`CacheStats::simulated`] is therefore a true work count: one
//! cold cell requested from N workers simulates exactly once. Waiters
//! are counted as memory hits, with [`CacheStats::coalesced`] recording
//! how many of those hits were de-duplicated in-flight requests. If a
//! leader fails (simulation error), its marker is withdrawn and waiters
//! retry — one of them becomes the next leader and surfaces the error
//! itself.
//!
//! # Persistent layer
//!
//! The optional persistent layer (`repro --cache DIR`) writes each cell
//! to `DIR` as JSON and reads it back in later invocations: a repeated
//! `repro` run over unchanged workloads simulates nothing, and a run
//! killed mid-campaign resumes from the cells it already wrote. Entries
//! are verified against the full key on load — a corrupt or
//! key-mismatched file is *rejected*: counted in
//! [`CacheStats::disk_rejects`], deleted, and re-simulated (once, not
//! silently re-written every run). The fingerprint is a fixed,
//! platform-independent encoding, so a cache directory is portable.
//! Cached cells reproduce fresh runs *byte-identically*: the stored
//! [`TripleResult`] is the same value a fresh simulation aggregates,
//! and prediction vectors round-trip losslessly through JSON (they are
//! `i64`s).
//!
//! The directory carries a size budget ([`SimCache::set_disk_budget`],
//! `repro --cache-budget BYTES`, default [`SimCache::DISK_BUDGET`])
//! tracked by an `index.json` of per-cell file size and logical
//! last-use time. When a write pushes the directory past its budget,
//! least-recently-used cells are evicted — but never cells touched by
//! the current run, so an in-progress campaign cannot evict its own
//! working set. The clock is a logical counter (no wall time), so the
//! index is deterministic for a given access sequence.
//!
//! # Fault tolerance
//!
//! Every disk operation sits behind a named fault-injection site
//! (`cache.read` / `cache.write` / `cache.rename` / `cache.remove` /
//! `index.flush` — see `predictsim_faultline`) and a bounded
//! retry-with-backoff that absorbs transient
//! [`std::io::ErrorKind::Interrupted`] errors
//! ([`CacheStats::disk_retries`]). After
//! [`SimCache::HARD_FAILURE_LIMIT`] *consecutive* hard failures the
//! layer degrades to memory-only — warned once, campaign unaffected
//! ([`CacheStats::degraded`]); the next healthy
//! [`SimCache::set_persist_dir`] restores persistence. Cell and index
//! writes are crash-consistent (temp file → fsync → atomic rename →
//! best-effort directory sync), so a torn write never shadows good
//! data. The miss path catches panics out of the simulation
//! (`catch_unwind` + bounded retry, [`CacheStats::panicked_cells`]),
//! surfacing a genuinely poisoned cell as
//! [`ScenarioError::CellPanicked`] after the lease has withdrawn its
//! marker and released coalesced waiters.
//!
//! # Memory discipline
//!
//! Aggregates are tiny and kept for every cell; prediction vectors are
//! kept only while the shard's slice of the prediction budget
//! ([`SimCache::PREDICTION_BUDGET`]) lasts — past it, new entries drop
//! them (consumers that need predictions then re-simulate that cell;
//! aggregates stay served from the cache). Re-inserting a key refunds
//! the replaced cell's vector before charging the new one, so repeated
//! inserts are budget-neutral.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use predictsim_sim::{ClusterSpec, NullObserver, SimObserver};
use serde::{Deserialize, Serialize};

use crate::campaign::TripleResult;
use crate::scenario::{Scenario, ScenarioError};
use crate::source::JobArena;
use crate::triple::HeuristicTriple;

/// Number of independently locked shards (power of two; the shard is
/// the key hash's low bits).
pub const SHARD_COUNT: usize = 16;

/// One memoized simulation cell.
#[derive(Debug, Clone)]
pub struct CachedCell {
    /// The cell's aggregate metrics (bit-identical to a fresh
    /// [`TripleResult::from_sim`]).
    pub result: TripleResult,
    /// The clamped initial prediction of every job, by dense job id —
    /// `None` when the prediction budget was exhausted when this cell
    /// was inserted (aggregates are still cached).
    pub predictions: Option<Arc<Vec<i64>>>,
}

/// Where a [`SimCache::run_cell_traced`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// This call ran the simulation (a true cache miss).
    Simulated,
    /// Served from the in-memory layer.
    Memory,
    /// Served from the persistent directory.
    Disk,
    /// Waited on another worker's in-flight simulation of the same cell.
    Coalesced,
}

/// Cache identity of one cell. The cluster is keyed by its canonical
/// [`ClusterSpec`] string, so two specs with equal total processors but
/// different partitioning (or speeds) can never alias each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    fingerprint: u64,
    cluster: String,
    triple: String,
}

impl CellKey {
    fn new(arena: &JobArena, cluster: ClusterSpec, triple: &HeuristicTriple) -> Self {
        CellKey {
            fingerprint: arena.fingerprint(),
            cluster: cluster.to_string(),
            triple: triple.name(),
        }
    }

    /// FNV-1a over the key's fields — names the persistent file *and*
    /// selects the shard, so disk layout and lock layout agree.
    fn fnv(&self) -> u64 {
        crate::source::fnv1a64(
            self.fingerprint
                .to_le_bytes()
                .into_iter()
                .chain(self.cluster.bytes())
                .chain(self.triple.bytes()),
        )
    }

    /// Stable persistent file name for this key.
    fn file_name(&self) -> String {
        format!("cell-{:016x}.json", self.fnv())
    }
}

/// Cumulative cache accounting (process-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells actually simulated (cache misses — a true work count under
    /// single-flight).
    pub simulated: u64,
    /// Cells served from process memory (including coalesced waits).
    pub memory_hits: u64,
    /// Cells served from the persistent directory.
    pub disk_hits: u64,
    /// The subset of `memory_hits` that waited on another worker's
    /// in-flight simulation instead of duplicating it.
    pub coalesced: u64,
    /// Corrupt or key-mismatched persistent files rejected (and
    /// deleted) on load.
    pub disk_rejects: u64,
    /// Persistent cells evicted by the disk-layer LRU budget.
    pub disk_evictions: u64,
    /// Transient disk-IO errors absorbed by the bounded retry (each
    /// retry attempt counts once).
    pub disk_retries: u64,
    /// Simulation attempts that panicked and were caught — the cell
    /// either succeeded on a retry or surfaced
    /// [`ScenarioError::CellPanicked`].
    pub panicked_cells: u64,
    /// True once the disk layer degraded to memory-only after
    /// [`SimCache::HARD_FAILURE_LIMIT`] consecutive hard IO failures
    /// (cleared by the next [`SimCache::set_persist_dir`]).
    pub degraded: bool,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.simulated + self.memory_hits + self.disk_hits
    }

    /// Hits from either layer.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Difference since `earlier` (for per-phase attribution).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            simulated: self.simulated - earlier.simulated,
            memory_hits: self.memory_hits - earlier.memory_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            coalesced: self.coalesced - earlier.coalesced,
            disk_rejects: self.disk_rejects - earlier.disk_rejects,
            disk_evictions: self.disk_evictions - earlier.disk_evictions,
            disk_retries: self.disk_retries - earlier.disk_retries,
            panicked_cells: self.panicked_cells - earlier.panicked_cells,
            // A state flag, not a counter: report the current state.
            degraded: self.degraded,
        }
    }

    /// The canonical one-line rendering used by `repro` and pinned by a
    /// format test: new fields are **append-only** (tooling anchors on
    /// the `simulated=` prefix and on ` field=value ` substrings, so
    /// existing fields must never move or change spelling).
    pub fn summary_line(&self) -> String {
        format!(
            "cache summary: simulated={} memory_hits={} disk_hits={} coalesced={} \
             disk_rejects={} evicted={} disk_retries={} degraded={} panicked_cells={}",
            self.simulated,
            self.memory_hits,
            self.disk_hits,
            self.coalesced,
            self.disk_rejects,
            self.disk_evictions,
            self.disk_retries,
            u8::from(self.degraded),
            self.panicked_cells,
        )
    }
}

/// The on-disk form of a cell: the full key (verified on load) plus the
/// payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DiskCell {
    fingerprint: u64,
    cluster: String,
    triple: String,
    result: TripleResult,
    predictions: Vec<i64>,
}

/// A slot in a shard's map: either a finished cell or a marker for the
/// worker currently simulating it.
enum Slot {
    Ready(CachedCell),
    InFlight(Arc<Flight>),
}

/// The rendezvous for one in-flight simulation.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    Ready(CachedCell),
    /// The leader failed (simulation error or panic); waiters retry the
    /// lookup and one of them becomes the next leader.
    Failed,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader finishes; `None` means it failed.
    fn wait(&self) -> Option<CachedCell> {
        let mut state = self.state.lock().expect("flight lock");
        while matches!(*state, FlightState::Pending) {
            state = self.done.wait(state).expect("flight lock");
        }
        match &*state {
            FlightState::Ready(cell) => Some(cell.clone()),
            FlightState::Failed => None,
            FlightState::Pending => unreachable!("waited past Pending"),
        }
    }

    /// Resolves the flight (first resolution wins) and wakes waiters.
    fn finish(&self, outcome: Option<CachedCell>) {
        let mut state = self.state.lock().expect("flight lock");
        if matches!(*state, FlightState::Pending) {
            *state = match outcome {
                Some(cell) => FlightState::Ready(cell),
                None => FlightState::Failed,
            };
        }
        drop(state);
        self.done.notify_all();
    }
}

/// One independently locked slice of the in-memory layer.
struct Shard {
    cells: HashMap<CellKey, Slot>,
    /// Prediction elements still storable in this shard before its
    /// budget slice is exhausted.
    prediction_budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            cells: HashMap::new(),
            prediction_budget: budget,
        }
    }
}

/// Per-cell bookkeeping of the persistent directory.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct DiskEntry {
    /// File size in bytes (the serialized cell).
    bytes: u64,
    /// Logical last-use time ([`DiskIndex::clock`] at the last touch).
    last_use: u64,
}

/// The persisted `index.json`: a logical clock plus one entry per cell
/// file, used for LRU eviction decisions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DiskIndex {
    clock: u64,
    entries: HashMap<String, DiskEntry>,
}

/// State of the opt-in persistent layer, under one lock (file I/O
/// happens *outside* it where possible; index mutations inside).
struct PersistLayer {
    dir: Option<PathBuf>,
    /// Directory size budget in bytes (cell files only; the index is
    /// exempt).
    budget: u64,
    index: DiskIndex,
    /// Sum of `index.entries[*].bytes` (maintained incrementally).
    total_bytes: u64,
    /// Entries with `last_use >= run_floor` were touched by the current
    /// run and are never evicted.
    run_floor: u64,
}

impl PersistLayer {
    fn new() -> Self {
        PersistLayer {
            dir: None,
            budget: SimCache::DISK_BUDGET,
            index: DiskIndex::default(),
            total_bytes: 0,
            run_floor: 0,
        }
    }

    fn touch(&mut self, file_name: &str, bytes_hint: u64) {
        self.index.clock += 1;
        let clock = self.index.clock;
        match self.index.entries.get_mut(file_name) {
            Some(entry) => entry.last_use = clock,
            None => {
                // A file another process wrote: adopt it.
                self.index.entries.insert(
                    file_name.to_string(),
                    DiskEntry {
                        bytes: bytes_hint,
                        last_use: clock,
                    },
                );
                self.total_bytes += bytes_hint;
            }
        }
    }

    fn forget(&mut self, file_name: &str) {
        if let Some(entry) = self.index.entries.remove(file_name) {
            self.total_bytes -= entry.bytes;
        }
    }
}

/// The process-wide simulation cache — see the module docs.
pub struct SimCache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    persist: Mutex<PersistLayer>,
    simulated: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    coalesced: AtomicU64,
    disk_rejects: AtomicU64,
    disk_evictions: AtomicU64,
    disk_retries: AtomicU64,
    panicked_cells: AtomicU64,
    /// Consecutive hard (non-retryable, non-NotFound) disk failures; a
    /// healthy disk operation resets it. At
    /// [`SimCache::HARD_FAILURE_LIMIT`] the layer degrades.
    hard_fail_streak: AtomicU64,
    /// Disk layer degraded to memory-only (warned once; cleared by the
    /// next [`SimCache::set_persist_dir`]).
    degraded: AtomicBool,
    /// Per-process sequence for unique temp-file names (two threads —
    /// or two processes, via the pid component — sharing one cache
    /// directory must never interleave writes into one temp file).
    tmp_seq: AtomicU64,
}

static GLOBAL: OnceLock<SimCache> = OnceLock::new();

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers everything this codebase — and
/// the fault injector — can throw).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What a shard lookup produced: a finished cell, a flight to wait on,
/// or leadership of the miss (the `Lease` below).
enum Claim<'a> {
    Hit(CachedCell),
    Wait(Arc<Flight>),
    Lead(Lease<'a>),
}

/// Leadership of one in-flight cell. Dropping it without
/// [`Lease::fulfill`] withdraws the marker and signals waiters to retry
/// — so a simulation error (or panic) can never strand them.
struct Lease<'a> {
    cache: &'a SimCache,
    key: CellKey,
    flight: Arc<Flight>,
    fulfilled: bool,
}

impl Lease<'_> {
    /// Installs the finished cell in its shard and hands it to every
    /// waiter.
    fn fulfill(mut self, cell: CachedCell) {
        let replaced = self.cache.install(self.key.clone(), cell.clone());
        if let Some(other) = replaced {
            // `record_simulated` (or a racing leader) left a different
            // flight in the slot; resolve it too so its waiters wake.
            if !Arc::ptr_eq(&other, &self.flight) {
                other.finish(Some(cell.clone()));
            }
        }
        self.flight.finish(Some(cell));
        self.fulfilled = true;
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Abandon: withdraw our marker (only if it is still ours) and
        // wake waiters so one of them can lead the retry.
        let mut shard = self
            .cache
            .shard(&self.key)
            .lock()
            .expect("cache shard lock");
        if let Some(Slot::InFlight(flight)) = shard.cells.get(&self.key) {
            if Arc::ptr_eq(flight, &self.flight) {
                shard.cells.remove(&self.key);
            }
        }
        drop(shard);
        self.flight.finish(None);
    }
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimCache {
    /// Prediction elements (8 bytes each) the in-memory layer may hold
    /// across all shards: 64M ≈ 512 MB, far above any quick-scale run
    /// and a sane ceiling for full-scale ones. Each shard owns a
    /// `1/SHARD_COUNT` slice.
    pub const PREDICTION_BUDGET: usize = 64_000_000;

    /// Default persistent-layer size budget: 8 GiB of cell files —
    /// generous (a full-scale repro writes well under 1 GiB) but a hard
    /// ceiling against unbounded growth of a long-lived `--cache DIR`.
    pub const DISK_BUDGET: u64 = 8 * 1024 * 1024 * 1024;

    /// Bounded retries absorbed per disk operation before its error is
    /// surfaced (transient [`std::io::ErrorKind::Interrupted`] only;
    /// each absorbed retry counts in [`CacheStats::disk_retries`]).
    pub const IO_RETRIES: u32 = 3;

    /// Consecutive hard disk failures after which the persistent layer
    /// degrades to memory-only for the rest of the attach (warned once;
    /// the campaign continues, and the next healthy
    /// [`SimCache::set_persist_dir`] restores persistence and with it
    /// resumability).
    pub const HARD_FAILURE_LIMIT: u64 = 5;

    /// Simulation attempts per cell before a caught panic stops being
    /// retried and surfaces as [`ScenarioError::CellPanicked`].
    pub const PANIC_RETRIES: u32 = 3;

    /// An independent cache instance (tests, benches, embedding several
    /// cache domains). Experiments route through [`SimCache::global`].
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| {
                Mutex::new(Shard::new(Self::PREDICTION_BUDGET / SHARD_COUNT))
            }),
            persist: Mutex::new(PersistLayer::new()),
            simulated: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            disk_rejects: AtomicU64::new(0),
            disk_evictions: AtomicU64::new(0),
            disk_retries: AtomicU64::new(0),
            panicked_cells: AtomicU64::new(0),
            hard_fail_streak: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The process-wide instance every experiment routes through.
    pub fn global() -> &'static SimCache {
        GLOBAL.get_or_init(SimCache::new)
    }

    fn shard(&self, key: &CellKey) -> &Mutex<Shard> {
        &self.shards[(key.fnv() as usize) & (SHARD_COUNT - 1)]
    }

    /// Enables (or disables, with `None`) the persistent layer. Created
    /// lazily on first write; existing entries are picked up on misses.
    /// Loads (or initializes) the directory's LRU index and reconciles
    /// it with the files actually present; entries touched from here on
    /// belong to the current run and are exempt from eviction.
    pub fn set_persist_dir(&self, dir: Option<PathBuf>) {
        let mut persist = self.persist.lock().expect("cache persist lock");
        persist.index = DiskIndex::default();
        persist.total_bytes = 0;
        persist.run_floor = 0;
        persist.dir = dir;
        // A fresh attach is a declaration that the disk is healthy
        // again: clear any degradation so resumability survives the
        // next run even if this one limped home memory-only.
        self.hard_fail_streak.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        let Some(dir) = persist.dir.clone() else {
            return;
        };
        // Load the index (a corrupt index just starts empty — it is
        // bookkeeping, not data) and reconcile it with the directory:
        // drop entries whose file vanished, adopt files it never saw
        // (another process, an older layout) as least-recently used,
        // and sweep stale temp files from crashed writers.
        if let Ok(text) = std::fs::read_to_string(dir.join(Self::INDEX_NAME)) {
            if let Ok(index) = serde_json::from_str::<DiskIndex>(&text) {
                persist.index = index;
            }
        }
        let mut present: HashMap<String, u64> = HashMap::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                    continue;
                }
                if name.starts_with("cell-") && name.ends_with(".json") {
                    let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                    present.insert(name, bytes);
                }
            }
        }
        persist
            .index
            .entries
            .retain(|name, _| present.contains_key(name));
        for (name, bytes) in present {
            persist
                .index
                .entries
                .entry(name)
                .or_insert(DiskEntry { bytes, last_use: 0 });
        }
        persist.total_bytes = persist.index.entries.values().map(|e| e.bytes).sum();
        persist.run_floor = persist.index.clock + 1;
    }

    /// Sets the persistent layer's size budget in bytes (`repro
    /// --cache-budget`). Takes effect on the next write — eviction only
    /// ever runs after a store, and never touches cells used by the
    /// current run.
    pub fn set_disk_budget(&self, bytes: u64) {
        self.persist.lock().expect("cache persist lock").budget = bytes;
    }

    /// Persists the LRU index *now* and sweeps this process's leftover
    /// `*.tmp` files. The graceful-shutdown path: `index.json` is
    /// normally only rewritten after a store, so a run that was serving
    /// disk hits (which touch entries' last-use clocks in memory) and
    /// then gets interrupted would otherwise lose that recency — and a
    /// writer killed between temp write and rename would leave its temp
    /// file for the *next* attach to sweep. No-op without a persistent
    /// directory.
    pub fn flush_persistent(&self) {
        if self.disk_degraded() {
            // The layer already gave up on this disk; the previous
            // index.json (if any) stays intact for the next attach.
            return;
        }
        let (dir, index) = {
            let persist = self.persist.lock().expect("cache persist lock");
            let Some(dir) = persist.dir.clone() else {
                return;
            };
            (dir, persist.index.clone())
        };
        // An interrupt can land before any cell was stored; the flushed
        // (possibly empty) index must still appear on disk.
        let _ = std::fs::create_dir_all(&dir);
        self.save_index(&dir, &index);
        let own_tmp = format!(".{}-", std::process::id());
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".tmp") && name.contains(&own_tmp) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Drops every in-memory cell and restores the prediction budget
    /// (the persistent directory, if any, is untouched). Intended for
    /// tests that must observe *fresh* simulations — e.g. the pool-width
    /// determinism suites, which would otherwise compare a simulation
    /// against its own memoized result.
    pub fn clear_memory(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock");
            shard.cells.clear();
            shard.prediction_budget = Self::PREDICTION_BUDGET / SHARD_COUNT;
        }
    }

    /// Overrides the total in-memory prediction budget, splitting it
    /// evenly across shards (remainder to the first). Test/bench
    /// instrumentation — experiments use the default.
    pub fn set_prediction_budget(&self, total: usize) {
        let slice = total / SHARD_COUNT;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("cache shard lock");
            shard.prediction_budget = if i == 0 {
                slice + total % SHARD_COUNT
            } else {
                slice
            };
        }
    }

    /// Prediction-budget elements still unspent, summed over shards.
    /// With [`SimCache::set_prediction_budget`], pins budget accounting
    /// in tests (e.g. exactly-once accounting under single-flight).
    pub fn prediction_budget_remaining(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").prediction_budget)
            .sum()
    }

    /// Cumulative accounting since process start.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            disk_rejects: self.disk_rejects.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            disk_retries: self.disk_retries.load(Ordering::Relaxed),
            panicked_cells: self.panicked_cells.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    /// Runs one disk operation with bounded retry of transient
    /// ([`std::io::ErrorKind::Interrupted`]) errors, consulting the
    /// fault-injection `site` ahead of each real attempt. Absorbed
    /// retries count in [`CacheStats::disk_retries`]; the final error —
    /// transient or not — is returned for the caller to classify.
    fn with_disk_retry<T>(
        &self,
        site: &str,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let mut attempt = 0;
        loop {
            let outcome = match predictsim_faultline::io_fault(site) {
                Some(injected) => Err(injected),
                None => op(),
            };
            match outcome {
                Err(err)
                    if err.kind() == std::io::ErrorKind::Interrupted
                        && attempt < Self::IO_RETRIES =>
                {
                    attempt += 1;
                    self.disk_retries.fetch_add(1, Ordering::Relaxed);
                    // A whisper of backoff: enough to step over a
                    // transient hiccup, far too small to show up in
                    // campaign wall-clock.
                    std::thread::sleep(std::time::Duration::from_micros(50 << attempt));
                }
                other => return other,
            }
        }
    }

    /// A disk operation completed: the failure streak resets.
    fn disk_ok(&self) {
        self.hard_fail_streak.store(0, Ordering::Relaxed);
    }

    /// A disk operation failed for keeps (retries exhausted or a hard
    /// error). At [`SimCache::HARD_FAILURE_LIMIT`] consecutive failures
    /// the persistent layer degrades to memory-only — warned exactly
    /// once — so a campaign on a dying disk finishes instead of
    /// grinding through error paths on every cell.
    fn disk_hard_failure(&self, what: &str, err: &std::io::Error) {
        let streak = self.hard_fail_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= Self::HARD_FAILURE_LIMIT && !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: disk cache degraded to memory-only after {streak} consecutive \
                 hard failures (last: {what}: {err}); the run continues uncached on disk — \
                 re-attach a healthy --cache dir to restore persistence"
            );
        }
    }

    /// True once the disk layer has been disabled for this attach.
    fn disk_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Runs the cell simulation with panic isolation: a caught panic
    /// (a poisoned cell) is retried up to [`SimCache::PANIC_RETRIES`]
    /// attempts — safe because the engine re-initializes every scratch
    /// buffer at run start — before surfacing as
    /// [`ScenarioError::CellPanicked`]. Each caught panic counts in
    /// [`CacheStats::panicked_cells`].
    fn simulate_isolated(
        &self,
        triple: &HeuristicTriple,
        arena: &JobArena,
        cluster: ClusterSpec,
        observer: &mut dyn SimObserver,
    ) -> Result<predictsim_sim::SimResult, ScenarioError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::scenario::run_triple_with_scratch(
                    triple,
                    arena,
                    predictsim_sim::SimConfig { cluster },
                    observer,
                )
            }));
            match outcome {
                Ok(result) => return result.map_err(ScenarioError::from),
                Err(payload) => {
                    self.panicked_cells.fetch_add(1, Ordering::Relaxed);
                    if attempt >= Self::PANIC_RETRIES {
                        return Err(ScenarioError::CellPanicked(panic_message(&payload)));
                    }
                }
            }
        }
    }

    /// One shard lookup: a ready cell, a flight to join, or leadership
    /// of the miss.
    fn claim(&self, key: &CellKey) -> Claim<'_> {
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        match shard.cells.get(key) {
            Some(Slot::Ready(cell)) => Claim::Hit(cell.clone()),
            Some(Slot::InFlight(flight)) => Claim::Wait(flight.clone()),
            None => {
                let flight = Arc::new(Flight::new());
                shard
                    .cells
                    .insert(key.clone(), Slot::InFlight(flight.clone()));
                Claim::Lead(Lease {
                    cache: self,
                    key: key.clone(),
                    flight,
                    fulfilled: false,
                })
            }
        }
    }

    /// A non-simulating lookup: the memoized cell if either layer holds
    /// it, else `None` (counted as a hit only when found). Joins an
    /// in-flight simulation of the cell rather than returning `None` —
    /// the exact value another worker is already computing beats
    /// anything the caller would do on a miss. The `--prune` sweep uses
    /// this to prefer an exact memoized value over an early-abort bound.
    pub fn peek(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Option<CachedCell> {
        let key = CellKey::new(arena, cluster, triple);
        loop {
            match self.claim(&key) {
                Claim::Hit(cell) => {
                    self.memory_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(cell);
                }
                Claim::Wait(flight) => {
                    if let Some(cell) = flight.wait() {
                        self.memory_hits.fetch_add(1, Ordering::Relaxed);
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Some(cell);
                    }
                    // Leader failed; re-examine the shard.
                }
                Claim::Lead(lease) => {
                    return match self.load_disk(&key) {
                        Some(cell) => {
                            self.disk_hits.fetch_add(1, Ordering::Relaxed);
                            lease.fulfill(cell.clone());
                            Some(cell)
                        }
                        None => None, // lease drop withdraws the marker
                    };
                }
            }
        }
    }

    /// Runs (or recalls) one cell: `triple` on the `arena` workload on
    /// `cluster`. The returned aggregates are byte-identical to a
    /// fresh simulation's whichever layer serves them.
    pub fn run_cell(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<CachedCell, ScenarioError> {
        self.run_cell_traced(arena, cluster, triple)
            .map(|(cell, _)| cell)
    }

    /// [`SimCache::run_cell`], also reporting which layer served the
    /// cell (progress lines and tests).
    pub fn run_cell_traced(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<(CachedCell, CellSource), ScenarioError> {
        let mut null = NullObserver;
        self.run_cell_observed_traced(arena, cluster, triple, &mut null)
    }

    /// [`SimCache::run_cell_traced`] with a caller-supplied
    /// [`SimObserver`] on the miss path. The observer sees events only
    /// when *this call* runs the simulation ([`CellSource::Simulated`]);
    /// cached and coalesced cells return without replaying events. It is
    /// also the cancellation seam: an observer whose
    /// [`SimObserver::keep_running`] turns `false` aborts the in-flight
    /// simulation with [`predictsim_sim::SimError::Aborted`], the lease
    /// is withdrawn, and any coalesced waiters retry (one becomes the
    /// next leader). Progress heartbeats (`--progress`) and the serve
    /// daemon's streamed `metrics` frames both ride this path.
    pub fn run_cell_observed_traced(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
        observer: &mut dyn SimObserver,
    ) -> Result<(CachedCell, CellSource), ScenarioError> {
        let key = CellKey::new(arena, cluster, triple);
        loop {
            match self.claim(&key) {
                Claim::Hit(cell) => {
                    self.memory_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((cell, CellSource::Memory));
                }
                Claim::Wait(flight) => {
                    if let Some(cell) = flight.wait() {
                        self.memory_hits.fetch_add(1, Ordering::Relaxed);
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Ok((cell, CellSource::Coalesced));
                    }
                    // Leader failed; retry — this thread may become the
                    // next leader and surface the error itself.
                }
                Claim::Lead(lease) => {
                    // Disk probe and simulation both run outside every
                    // shard lock; only same-cell requesters wait.
                    if let Some(cell) = self.load_disk(&key) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        lease.fulfill(cell.clone());
                        return Ok((cell, CellSource::Disk));
                    }
                    self.simulated.fetch_add(1, Ordering::Relaxed);
                    // On error the lease drop withdraws the marker and
                    // releases the waiters before `?` propagates. A
                    // panicking cell is caught and retried inside
                    // `simulate_isolated`; `simulated` still counts the
                    // miss once — it is a true-work count of cells, not
                    // of attempts.
                    let sim = self.simulate_isolated(triple, arena, cluster, observer)?;
                    let result = TripleResult::from_sim(triple, &sim);
                    let predictions: Vec<i64> =
                        sim.outcomes.iter().map(|o| o.initial_prediction).collect();
                    let cell = CachedCell {
                        result,
                        predictions: Some(Arc::new(predictions)),
                    };
                    // Persist first: the disk layer's budget is far
                    // larger, and dropping the predictions before
                    // writing would silently break the "repeated
                    // --cache run simulates zero cells" contract once
                    // the in-memory budget is exhausted.
                    self.store_disk(&key, &cell);
                    lease.fulfill(cell.clone());
                    return Ok((cell, CellSource::Simulated));
                }
            }
        }
    }

    /// Like [`SimCache::run_cell`], but guarantees the predictions are
    /// present (re-simulating without caching when the budget dropped
    /// them).
    pub fn run_cell_full(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<(TripleResult, Arc<Vec<i64>>), ScenarioError> {
        self.run_cell_full_traced(arena, cluster, triple)
            .map(|(result, predictions, _)| (result, predictions))
    }

    /// [`SimCache::run_cell_full`], also reporting the serving layer.
    pub fn run_cell_full_traced(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<(TripleResult, Arc<Vec<i64>>, CellSource), ScenarioError> {
        let (cell, source) = self.run_cell_traced(arena, cluster, triple)?;
        if let Some(predictions) = cell.predictions {
            return Ok((cell.result, predictions, source));
        }
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let sim =
            Scenario::from_triple(triple).run_on(arena, predictsim_sim::SimConfig { cluster })?;
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();
        Ok((cell.result, Arc::new(predictions), CellSource::Simulated))
    }

    /// Records a cell that was simulated outside [`SimCache::run_cell`]
    /// (the prune sweep's fully completed, non-aborted phase-2 runs):
    /// counts it as simulated, memoizes it, and persists it like any
    /// run_cell miss. If another worker has the same cell in flight,
    /// its waiters are handed this value. Never call this with
    /// early-abort bounds — only exact results belong in the cache.
    pub(crate) fn record_simulated(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
        result: TripleResult,
        predictions: Vec<i64>,
    ) {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let key = CellKey::new(arena, cluster, triple);
        let cell = CachedCell {
            result,
            predictions: Some(Arc::new(predictions)),
        };
        self.store_disk(&key, &cell);
        if let Some(flight) = self.install(key, cell.clone()) {
            flight.finish(Some(cell));
        }
    }

    /// Installs a finished cell into its shard, enforcing the shard's
    /// prediction-budget slice. Replacing an existing cell refunds its
    /// vector first (budget-neutral re-insert). Returns the in-flight
    /// marker this install displaced, if any — the caller must resolve
    /// it so its waiters wake.
    fn install(&self, key: CellKey, mut cell: CachedCell) -> Option<Arc<Flight>> {
        let mut shard = self.shard(&key).lock().expect("cache shard lock");
        if let Some(Slot::Ready(old)) = shard.cells.get(&key) {
            if let Some(old_predictions) = &old.predictions {
                shard.prediction_budget += old_predictions.len();
            }
        }
        if let Some(predictions) = &cell.predictions {
            if shard.prediction_budget >= predictions.len() {
                shard.prediction_budget -= predictions.len();
            } else {
                cell.predictions = None;
            }
        }
        match shard.cells.insert(key, Slot::Ready(cell)) {
            Some(Slot::InFlight(flight)) => Some(flight),
            _ => None,
        }
    }

    /// Name of the LRU index file inside a persistent cache directory.
    pub const INDEX_NAME: &'static str = "index.json";

    /// A collision-free temp path next to `path`: pid + per-process
    /// sequence, so concurrent threads *and* concurrent processes
    /// sharing one cache directory each write their own temp file and
    /// the final rename stays atomic-or-nothing.
    fn unique_tmp(&self, path: &Path) -> PathBuf {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let mut name = path.as_os_str().to_owned();
        name.push(format!(".{}-{}.tmp", std::process::id(), seq));
        PathBuf::from(name)
    }

    /// Crash-consistent atomic write: serialize to a unique temp file,
    /// sync it to the platter, rename into place, then best-effort sync
    /// the directory so the rename itself survives a crash. A failure
    /// at any step removes the temp file and leaves whatever `path`
    /// held before — a torn write can never shadow good data. Transient
    /// errors are absorbed by the bounded retry at both fault sites.
    fn write_atomic(
        &self,
        path: &Path,
        contents: &str,
        write_site: &str,
        rename_site: &str,
    ) -> std::io::Result<()> {
        let tmp = self.unique_tmp(path);
        let written = self.with_disk_retry(write_site, || {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(contents.as_bytes())?;
            // The data must be durable *before* the rename publishes
            // the name, or a crash can expose an empty/torn file under
            // the final path.
            file.sync_all()
        });
        if let Err(err) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        if let Err(err) = self.with_disk_retry(rename_site, || std::fs::rename(&tmp, path)) {
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        if let Some(parent) = path.parent() {
            // Not every filesystem lets a directory be opened/synced;
            // the rename is already atomic, this only tightens crash
            // durability where supported.
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Persists the LRU index (call with fresh index state; takes the
    /// persist lock only long enough to snapshot it). A failed flush
    /// leaves the previous `index.json` intact — the index is
    /// bookkeeping and the next attach reconciles it with the
    /// directory, so losing one flush costs recency, never cells.
    fn save_index(&self, dir: &Path, index: &DiskIndex) {
        if self.disk_degraded() {
            return;
        }
        if let Ok(json) = serde_json::to_string(index) {
            match self.write_atomic(
                &dir.join(Self::INDEX_NAME),
                &json,
                "index.flush",
                "index.flush",
            ) {
                Ok(()) => self.disk_ok(),
                Err(err) => self.disk_hard_failure("index flush", &err),
            }
        }
    }

    fn load_disk(&self, key: &CellKey) -> Option<CachedCell> {
        if self.disk_degraded() {
            return None;
        }
        let dir = self
            .persist
            .lock()
            .expect("cache persist lock")
            .dir
            .clone()?;
        let file_name = key.file_name();
        let path = dir.join(&file_name);
        let text = match self.with_disk_retry("cache.read", || std::fs::read_to_string(&path)) {
            Ok(text) => {
                self.disk_ok();
                text
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                // No file: a plain miss. Deliberately *not* a streak
                // reset — a NotFound probe completes without moving any
                // data, so it proves nothing about a disk whose writes
                // are failing (read-only mounts and full disks answer
                // probes just fine). Drop any stale index entry so the
                // LRU accounting stays honest after an external
                // deletion.
                let mut persist = self.persist.lock().expect("cache persist lock");
                persist.forget(&file_name);
                return None;
            }
            Err(err) => {
                // Unreadable beyond retry: miss (the cell re-simulates)
                // and one step down the degradation ladder. The index
                // entry stays — the file is probably still there.
                self.disk_hard_failure("cell read", &err);
                return None;
            }
        };
        // Verify both the encoding and the full key: a truncated write,
        // a file-name hash collision or a stale entry must never serve
        // the wrong cell — and must not be silently re-read (and
        // re-missed) every run. Reject: count, delete, re-simulate.
        let verified = serde_json::from_str::<DiskCell>(&text).ok().filter(|disk| {
            disk.fingerprint == key.fingerprint
                && disk.cluster == key.cluster
                && disk.triple == key.triple
        });
        let Some(disk) = verified else {
            self.disk_rejects.fetch_add(1, Ordering::Relaxed);
            // Best-effort delete: if it fails the file is simply
            // rejected again next run.
            let _ = self.with_disk_retry("cache.remove", || std::fs::remove_file(&path));
            let mut persist = self.persist.lock().expect("cache persist lock");
            persist.forget(&file_name);
            let index = persist.index.clone();
            drop(persist);
            self.save_index(&dir, &index);
            return None;
        };
        let mut persist = self.persist.lock().expect("cache persist lock");
        persist.touch(&file_name, text.len() as u64);
        Some(CachedCell {
            result: disk.result,
            predictions: Some(Arc::new(disk.predictions)),
        })
    }

    fn store_disk(&self, key: &CellKey, cell: &CachedCell) {
        if self.disk_degraded() {
            return;
        }
        let Some(dir) = self.persist.lock().expect("cache persist lock").dir.clone() else {
            return;
        };
        let Some(predictions) = &cell.predictions else {
            return; // only complete cells are persisted
        };
        let disk = DiskCell {
            fingerprint: key.fingerprint,
            cluster: key.cluster.clone(),
            triple: key.triple.clone(),
            result: cell.result.clone(),
            predictions: predictions.as_ref().clone(),
        };
        let file_name = key.file_name();
        let path = dir.join(&file_name);
        // Persistence is best-effort: a read-only or full disk must not
        // fail the experiment, only forgo the cache.
        let _ = std::fs::create_dir_all(&dir);
        let Ok(json) = serde_json::to_string(&disk) else {
            return;
        };
        match self.write_atomic(&path, &json, "cache.write", "cache.rename") {
            Ok(()) => self.disk_ok(),
            Err(err) => {
                self.disk_hard_failure("cell write", &err);
                return;
            }
        }
        // Account the write in the LRU index, then evict past-budget
        // cells — least-recently-used first, never cells this run
        // touched.
        let mut persist = self.persist.lock().expect("cache persist lock");
        persist.forget(&file_name);
        persist.touch(&file_name, json.len() as u64);
        let mut evicted: Vec<PathBuf> = Vec::new();
        while persist.total_bytes > persist.budget {
            let run_floor = persist.run_floor;
            let victim = persist
                .index
                .entries
                .iter()
                .filter(|(_, e)| e.last_use < run_floor)
                .min_by_key(|(name, e)| (e.last_use, (*name).clone()))
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                break; // only mid-run entries remain: never evict those
            };
            persist.forget(&victim);
            evicted.push(dir.join(&victim));
        }
        let index = persist.index.clone();
        drop(persist);
        for path in &evicted {
            let _ = self.with_disk_retry("cache.remove", || std::fs::remove_file(path));
        }
        self.disk_evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        self.save_index(&dir, &index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Variant;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny_arena(seed: u64) -> (JobArena, ClusterSpec) {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 200;
        spec.duration = 2 * 86_400;
        let w = generate(&spec, seed);
        (JobArena::new(w.jobs), ClusterSpec::single(w.machine_size))
    }

    /// A private cache instance (the global one is shared across tests).
    fn private() -> SimCache {
        SimCache::new()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("predictsim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn summary_line_format_is_append_only() {
        // The CI smokes anchor on the `simulated=` prefix and on
        // ` field=value ` substrings: existing fields must never move,
        // new fields only ever append. This pin is the contract.
        let stats = CacheStats {
            simulated: 1,
            memory_hits: 2,
            disk_hits: 3,
            coalesced: 4,
            disk_rejects: 5,
            disk_evictions: 6,
            disk_retries: 7,
            panicked_cells: 8,
            degraded: true,
        };
        assert_eq!(
            stats.summary_line(),
            "cache summary: simulated=1 memory_hits=2 disk_hits=3 coalesced=4 \
             disk_rejects=5 evicted=6 disk_retries=7 degraded=1 panicked_cells=8"
        );
        let quiet = CacheStats::default().summary_line();
        assert!(
            quiet.ends_with("disk_retries=0 degraded=0 panicked_cells=0"),
            "{quiet}"
        );
    }

    #[test]
    fn second_lookup_is_a_memory_hit_with_identical_payload() {
        let cache = private();
        let (arena, m) = tiny_arena(3);
        let triple = HeuristicTriple::easy_plus_plus();
        let (fresh, src) = cache.run_cell_traced(&arena, m, &triple).unwrap();
        assert_eq!(src, CellSource::Simulated);
        let (again, src) = cache.run_cell_traced(&arena, m, &triple).unwrap();
        assert_eq!(src, CellSource::Memory);
        assert_eq!(fresh.result, again.result);
        assert_eq!(fresh.predictions.as_deref(), again.predictions.as_deref());
        let stats = cache.stats();
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn cached_aggregates_match_a_direct_simulation() {
        let cache = private();
        let (arena, m) = tiny_arena(4);
        let triple = HeuristicTriple::standard_easy();
        let cell = cache.run_cell(&arena, m, &triple).unwrap();
        let sim = Scenario::from_triple(&triple)
            .run_on(&arena, predictsim_sim::SimConfig { cluster: m })
            .unwrap();
        assert_eq!(cell.result, TripleResult::from_sim(&triple, &sim));
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();
        assert_eq!(
            cell.predictions.as_deref().map(|p| p.as_slice()),
            Some(predictions.as_slice())
        );
    }

    #[test]
    fn distinct_workloads_and_triples_do_not_collide() {
        let cache = private();
        let (a, ma) = tiny_arena(5);
        let (b, mb) = tiny_arena(6);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let easy = HeuristicTriple::standard_easy();
        let clair = HeuristicTriple::clairvoyant(Variant::Easy);
        let cells = [
            cache.run_cell(&a, ma, &easy).unwrap(),
            cache.run_cell(&b, mb, &easy).unwrap(),
            cache.run_cell(&a, ma, &clair).unwrap(),
        ];
        assert_eq!(cache.stats().simulated, 3, "three distinct cells");
        assert_ne!(cells[0].result.ave_bsld, cells[2].result.ave_bsld);
    }

    #[test]
    fn equal_total_clusters_are_distinct_cells() {
        // Two cluster specs with the same total processor count — the
        // legacy single machine and a half-speed single partition — must
        // never alias: each gets its own simulation, in memory and on
        // disk (the key is the canonical cluster string, not the total).
        let cache = private();
        let (arena, legacy) = tiny_arena(14);
        let slow: ClusterSpec = format!("cluster:{}x0.5", legacy.total_procs())
            .parse()
            .unwrap();
        assert_eq!(legacy.total_procs(), slow.total_procs());
        assert_ne!(legacy.fingerprint(), slow.fingerprint());
        // Equal totals with different partitioning also fingerprint apart.
        let split: ClusterSpec = "cluster:32x1+32x1".parse().unwrap();
        assert_eq!(split.total_procs(), ClusterSpec::single(64).total_procs());
        assert_ne!(split.fingerprint(), ClusterSpec::single(64).fingerprint());

        let triple = HeuristicTriple::standard_easy();
        cache.run_cell(&arena, legacy, &triple).unwrap();
        cache.run_cell(&arena, slow, &triple).unwrap();
        assert_eq!(
            cache.stats().simulated,
            2,
            "equal-total specs must not share a cell"
        );
        assert_eq!(cache.stats().hits(), 0);
        // And each spec is a hit against itself.
        cache.run_cell(&arena, slow, &triple).unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn persistent_layer_round_trips_and_verifies_keys() {
        let dir = temp_dir("roundtrip");
        let (arena, m) = tiny_arena(7);
        let triple = HeuristicTriple::easy_plus_plus();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        let fresh = writer.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(writer.stats().simulated, 1);

        // A new process (modeled by a new cache instance) reads it back.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0, "disk must serve the cell");
        assert_eq!(reader.stats().disk_hits, 1);
        assert_eq!(recalled.result, fresh.result);
        assert_eq!(
            recalled.predictions.as_deref(),
            fresh.predictions.as_deref()
        );

        // A different workload misses (and must not be served the file).
        let (other, mo) = tiny_arena(8);
        reader.run_cell(&other, mo, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_budget_still_persists_full_cells_to_disk() {
        let dir = temp_dir("budget-disk");
        let (arena, m) = tiny_arena(11);
        let triple = HeuristicTriple::standard_easy();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        writer.set_prediction_budget(0); // memory budget gone
        let fresh = writer.run_cell(&arena, m, &triple).unwrap();

        // The disk layer has no prediction budget: a fresh process must
        // still be served the complete cell without simulating.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0);
        assert_eq!(reader.stats().disk_hits, 1);
        assert_eq!(recalled.result, fresh.result);
        assert_eq!(
            recalled.predictions.as_deref(),
            fresh.predictions.as_deref()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_simulated_memoizes_persists_and_counts() {
        let dir = temp_dir("record");
        let (arena, m) = tiny_arena(12);
        let triple = HeuristicTriple::easy_plus_plus();

        // The value an external driver (the prune sweep) simulated.
        let sim = Scenario::from_triple(&triple)
            .run_on(&arena, predictsim_sim::SimConfig { cluster: m })
            .unwrap();
        let result = TripleResult::from_sim(&triple, &sim);
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();

        let cache = private();
        cache.set_persist_dir(Some(dir.clone()));
        cache.record_simulated(&arena, m, &triple, result.clone(), predictions.clone());
        assert_eq!(cache.stats().simulated, 1, "recorded runs count as work");

        // Memoized for this process...
        let peeked = cache.peek(&arena, m, &triple).expect("cell memoized");
        assert_eq!(peeked.result, result);
        // ...and persisted for the next one.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0);
        assert_eq!(recalled.result, result);
        assert_eq!(
            recalled.predictions.as_deref().map(|p| p.as_slice()),
            Some(predictions.as_slice())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_budget_drops_predictions_but_keeps_aggregates() {
        let cache = private();
        cache.set_prediction_budget(10); // tiny budget
        let (arena, m) = tiny_arena(9);
        let triple = HeuristicTriple::standard_easy();
        let cell = cache.run_cell(&arena, m, &triple).unwrap();
        assert!(cell.predictions.is_some(), "caller still gets them");
        let again = cache.run_cell(&arena, m, &triple).unwrap();
        assert!(again.predictions.is_none(), "budget dropped the vector");
        assert_eq!(again.result, cell.result);
        // run_cell_full re-simulates to recover them.
        let (result, predictions) = cache.run_cell_full(&arena, m, &triple).unwrap();
        assert_eq!(result, cell.result);
        assert_eq!(
            Some(predictions.as_slice()),
            cell.predictions.as_deref().map(|p| p.as_slice())
        );
    }

    /// Re-inserting a key must refund the replaced cell's prediction
    /// vector before charging the new one: the budget is neutral across
    /// double-inserts (the pre-sharding cache leaked it until
    /// `clear_memory`).
    #[test]
    fn reinsert_is_prediction_budget_neutral() {
        let (arena, m) = tiny_arena(16);
        let triple = HeuristicTriple::easy_plus_plus();
        let sim = Scenario::from_triple(&triple)
            .run_on(&arena, predictsim_sim::SimConfig { cluster: m })
            .unwrap();
        let result = TripleResult::from_sim(&triple, &sim);
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();

        let cache = private();
        let full = cache.prediction_budget_remaining();
        cache.record_simulated(&arena, m, &triple, result.clone(), predictions.clone());
        let after_first = cache.prediction_budget_remaining();
        assert_eq!(after_first, full - predictions.len());
        // Same key again (racing miss / disk-hit promotion / repeated
        // prune record): spend must not double.
        cache.record_simulated(&arena, m, &triple, result.clone(), predictions.clone());
        assert_eq!(
            cache.prediction_budget_remaining(),
            after_first,
            "double insert must be budget-neutral"
        );
        // And clearing restores the full budget exactly.
        cache.clear_memory();
        assert_eq!(
            cache.prediction_budget_remaining(),
            SimCache::PREDICTION_BUDGET
        );
    }

    /// A truncated (or otherwise unparseable) cache file is rejected:
    /// counted, deleted, and the cell re-simulated exactly once — after
    /// which the rewritten file serves future runs again.
    #[test]
    fn corrupt_cache_file_is_rejected_deleted_and_resimulated() {
        let dir = temp_dir("corrupt");
        let (arena, m) = tiny_arena(21);
        let triple = HeuristicTriple::standard_easy();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        let fresh = writer.run_cell(&arena, m, &triple).unwrap();

        // Truncate the cell file mid-JSON.
        let key = CellKey::new(&arena, m, &triple);
        let path = dir.join(key.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recovered = reader.run_cell(&arena, m, &triple).unwrap();
        let stats = reader.stats();
        assert_eq!(stats.disk_rejects, 1, "corrupt file must be counted");
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.simulated, 1, "the cell re-simulates once");
        assert_eq!(recovered.result, fresh.result);

        // The rewritten file is valid again for a third process.
        let third = private();
        third.set_persist_dir(Some(dir.clone()));
        third.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(third.stats().disk_hits, 1);
        assert_eq!(third.stats().disk_rejects, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A parseable file whose embedded key disagrees with its name
    /// (hash collision or a stale/foreign entry) is rejected the same
    /// way, not served and not left to be re-read every run.
    #[test]
    fn key_mismatched_cache_file_is_rejected() {
        let dir = temp_dir("mismatch");
        let (arena, m) = tiny_arena(22);
        let (other, mo) = tiny_arena(23);
        let triple = HeuristicTriple::standard_easy();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        writer.run_cell(&other, mo, &triple).unwrap();

        // Masquerade the other workload's cell as this workload's file.
        let theirs = dir.join(CellKey::new(&other, mo, &triple).file_name());
        let ours = dir.join(CellKey::new(&arena, m, &triple).file_name());
        std::fs::copy(&theirs, &ours).unwrap();

        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().disk_rejects, 1);
        assert_eq!(reader.stats().simulated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The disk layer's LRU: past the size budget, the least recently
    /// used cells of *previous* runs are evicted; cells touched by the
    /// current run never are.
    #[test]
    fn disk_layer_evicts_lru_past_budget_but_never_current_run_cells() {
        let dir = temp_dir("lru");
        let (a, ma) = tiny_arena(24);
        let (b, mb) = tiny_arena(25);
        let (c, mc) = tiny_arena(26);
        let triple = HeuristicTriple::standard_easy();

        // Run 1: store A then B (B more recently used), generous budget.
        let run1 = private();
        run1.set_persist_dir(Some(dir.clone()));
        run1.run_cell(&a, ma, &triple).unwrap();
        run1.run_cell(&b, mb, &triple).unwrap();
        let file_a = dir.join(CellKey::new(&a, ma, &triple).file_name());
        let file_b = dir.join(CellKey::new(&b, mb, &triple).file_name());
        assert!(file_a.exists() && file_b.exists());

        // Run 2: a budget that fits roughly one cell. Touch B (making
        // it a current-run cell), then store C: A — the LRU entry from
        // a previous run — must be evicted; B and C must survive.
        let cell_bytes = std::fs::metadata(&file_a).unwrap().len();
        let run2 = private();
        run2.set_persist_dir(Some(dir.clone()));
        run2.set_disk_budget(2 * cell_bytes);
        run2.run_cell(&b, mb, &triple).unwrap(); // disk hit: touches B
        run2.run_cell(&c, mc, &triple).unwrap(); // store pushes past budget
        let file_c = dir.join(CellKey::new(&c, mc, &triple).file_name());
        assert!(!file_a.exists(), "LRU cell from a previous run evicted");
        assert!(file_b.exists(), "cell touched by the current run kept");
        assert!(file_c.exists(), "the fresh cell is kept");
        assert_eq!(run2.stats().disk_evictions, 1);

        // Even a zero budget never evicts current-run cells.
        let run3 = private();
        run3.set_persist_dir(Some(dir.clone()));
        run3.set_disk_budget(0);
        run3.run_cell(&a, ma, &triple).unwrap(); // re-simulates, stores A
        assert!(file_a.exists(), "the cell this run wrote is protected");
        assert!(
            !file_b.exists() && !file_c.exists(),
            "previous-run cells go"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Temp files are unique and never left behind: after any mix of
    /// stores, the directory holds only final `cell-*.json` files and
    /// the index.
    #[test]
    fn stores_leave_no_temp_files() {
        let dir = temp_dir("tmpfiles");
        let (a, ma) = tiny_arena(27);
        let (b, mb) = tiny_arena(28);
        let cache = private();
        cache.set_persist_dir(Some(dir.clone()));
        cache
            .run_cell(&a, ma, &HeuristicTriple::standard_easy())
            .unwrap();
        cache
            .run_cell(&b, mb, &HeuristicTriple::easy_plus_plus())
            .unwrap();
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "temp file {name} must not survive a store"
            );
        }
        // And stale temp litter from a crashed writer is swept when the
        // directory is (re)opened.
        std::fs::write(dir.join("cell-dead.json.999-0.tmp"), "torn").unwrap();
        let reopened = private();
        reopened.set_persist_dir(Some(dir.clone()));
        assert!(!dir.join("cell-dead.json.999-0.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The observed miss path sees the simulation's events and produces
    /// the same cell as the unobserved path; hits replay nothing.
    #[test]
    fn observed_path_streams_events_only_on_misses() {
        let cache = private();
        let (arena, m) = tiny_arena(31);
        let triple = HeuristicTriple::standard_easy();
        let mut metrics = predictsim_sim::MetricsObserver::new(m.total_procs());
        let (cell, src) = cache
            .run_cell_observed_traced(&arena, m, &triple, &mut metrics)
            .unwrap();
        assert_eq!(src, CellSource::Simulated);
        assert_eq!(metrics.finished(), arena.len());
        assert!((metrics.ave_bsld() - cell.result.ave_bsld).abs() < 1e-9);
        // Second call hits memory: the observer stays silent.
        let mut silent = predictsim_sim::MetricsObserver::new(m.total_procs());
        let (again, src) = cache
            .run_cell_observed_traced(&arena, m, &triple, &mut silent)
            .unwrap();
        assert_eq!(src, CellSource::Memory);
        assert_eq!(silent.finished(), 0);
        assert_eq!(again.result, cell.result);
    }

    /// A cancelling observer aborts the leader, withdraws the lease, and
    /// leaves the cell re-runnable.
    #[test]
    fn observed_cancellation_aborts_and_releases_the_cell() {
        struct CancelAfter {
            left: u32,
        }
        impl SimObserver for CancelAfter {
            fn on_event(&mut self, _event: &predictsim_sim::SimEvent<'_>) {
                self.left = self.left.saturating_sub(1);
            }
            fn keep_running(&self) -> bool {
                self.left > 0
            }
        }
        let cache = private();
        let (arena, m) = tiny_arena(32);
        let triple = HeuristicTriple::standard_easy();
        let mut cancel = CancelAfter { left: 5 };
        let err = cache
            .run_cell_observed_traced(&arena, m, &triple, &mut cancel)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::Sim(predictsim_sim::SimError::Aborted { .. })
            ),
            "got {err:?}"
        );
        // The withdrawn lease does not wedge the cell: a fresh request
        // simulates it to completion.
        let (_, src) = cache.run_cell_traced(&arena, m, &triple).unwrap();
        assert_eq!(src, CellSource::Simulated);
        assert_eq!(cache.stats().simulated, 2, "abort still counted as work");
    }

    /// `flush_persistent` writes the index immediately — the SIGINT path
    /// for runs that would otherwise lose in-memory recency updates.
    #[test]
    fn flush_persistent_saves_index_and_sweeps_own_tmp() {
        let dir = temp_dir("flush");
        let (arena, m) = tiny_arena(33);
        let cache = private();
        cache.set_persist_dir(Some(dir.clone()));
        cache
            .run_cell(&arena, m, &HeuristicTriple::standard_easy())
            .unwrap();
        let index_path = dir.join(SimCache::INDEX_NAME);
        std::fs::remove_file(&index_path).unwrap();
        // A stranded temp file from *this* process (as after a kill
        // between write and rename).
        let tmp = dir.join(format!("cell-x.json.{}-999.tmp", std::process::id()));
        std::fs::write(&tmp, "torn").unwrap();
        cache.flush_persistent();
        assert!(index_path.exists(), "index rewritten on flush");
        assert!(!tmp.exists(), "own temp litter swept on flush");
        let text = std::fs::read_to_string(&index_path).unwrap();
        let index: DiskIndex = serde_json::from_str(&text).unwrap();
        assert_eq!(index.entries.len(), 1);
        // Without a persistent directory the flush is a no-op.
        private().flush_persistent();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
