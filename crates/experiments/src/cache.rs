//! Process-wide simulation memoization, with an opt-in persistent layer.
//!
//! The repro pipeline re-simulates the same (workload × policy triple)
//! cells from several experiments: the campaign grid is re-read by
//! cross-validation, Table 1 runs two of the campaign's cells per log,
//! Table 8 and Figures 4/5 re-run campaign cells on Curie, and the
//! ablations overlap the grid on the first log. [`SimCache`] keys each
//! simulated cell by (workload [fingerprint](JobArena::fingerprint) ×
//! canonical triple name × canonical [`ClusterSpec`] string) and
//! memoizes the cell's
//! aggregate [`TripleResult`] plus its per-job initial predictions —
//! everything any consumer reads — so every distinct cell simulates
//! **once per process**, whichever experiment asks first.
//!
//! The optional persistent layer (`repro --cache DIR`) writes each cell
//! to `DIR` as JSON and reads it back in later invocations: a repeated
//! `repro` run over unchanged workloads simulates nothing. Entries are
//! verified against the full key on load, and the fingerprint is a
//! fixed, platform-independent encoding, so a cache directory is
//! portable. Cached cells reproduce fresh runs *byte-identically*: the
//! stored [`TripleResult`] is the same value a fresh simulation
//! aggregates, and prediction vectors round-trip losslessly through
//! JSON (they are `i64`s).
//!
//! Memory discipline: aggregates are tiny and kept for every cell;
//! prediction vectors are kept only while the cache's prediction budget
//! ([`SimCache::PREDICTION_BUDGET`]) lasts — past it, new entries drop
//! them (consumers that need predictions then re-simulate that cell;
//! aggregates stay served from the cache).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use predictsim_sim::ClusterSpec;
use serde::{Deserialize, Serialize};

use crate::campaign::TripleResult;
use crate::scenario::{Scenario, ScenarioError};
use crate::source::JobArena;
use crate::triple::HeuristicTriple;

/// One memoized simulation cell.
#[derive(Debug, Clone)]
pub struct CachedCell {
    /// The cell's aggregate metrics (bit-identical to a fresh
    /// [`TripleResult::from_sim`]).
    pub result: TripleResult,
    /// The clamped initial prediction of every job, by dense job id —
    /// `None` when the prediction budget was exhausted when this cell
    /// was inserted (aggregates are still cached).
    pub predictions: Option<Arc<Vec<i64>>>,
}

/// Cache identity of one cell. The cluster is keyed by its canonical
/// [`ClusterSpec`] string, so two specs with equal total processors but
/// different partitioning (or speeds) can never alias each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    fingerprint: u64,
    cluster: String,
    triple: String,
}

/// Cumulative cache accounting (process-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells actually simulated (cache misses).
    pub simulated: u64,
    /// Cells served from process memory.
    pub memory_hits: u64,
    /// Cells served from the persistent directory.
    pub disk_hits: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.simulated + self.memory_hits + self.disk_hits
    }

    /// Hits from either layer.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Difference since `earlier` (for per-phase attribution).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            simulated: self.simulated - earlier.simulated,
            memory_hits: self.memory_hits - earlier.memory_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
        }
    }
}

/// The on-disk form of a cell: the full key (verified on load) plus the
/// payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DiskCell {
    fingerprint: u64,
    cluster: String,
    triple: String,
    result: TripleResult,
    predictions: Vec<i64>,
}

/// The process-wide simulation cache — see the module docs.
pub struct SimCache {
    cells: Mutex<HashMap<CellKey, CachedCell>>,
    /// Prediction elements still storable before the budget is hit.
    prediction_budget: Mutex<usize>,
    persist_dir: Mutex<Option<PathBuf>>,
    simulated: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
}

static GLOBAL: OnceLock<SimCache> = OnceLock::new();

impl SimCache {
    /// Prediction elements (8 bytes each) the in-memory layer may hold:
    /// 64M ≈ 512 MB, far above any quick-scale run and a sane ceiling
    /// for full-scale ones.
    pub const PREDICTION_BUDGET: usize = 64_000_000;

    fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            prediction_budget: Mutex::new(Self::PREDICTION_BUDGET),
            persist_dir: Mutex::new(None),
            simulated: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// The process-wide instance every experiment routes through.
    pub fn global() -> &'static SimCache {
        GLOBAL.get_or_init(SimCache::new)
    }

    /// Enables (or disables, with `None`) the persistent layer. Created
    /// lazily on first write; existing entries are picked up on misses.
    pub fn set_persist_dir(&self, dir: Option<PathBuf>) {
        *self.persist_dir.lock().expect("cache lock") = dir;
    }

    /// Drops every in-memory cell and restores the prediction budget
    /// (the persistent directory, if any, is untouched). Intended for
    /// tests that must observe *fresh* simulations — e.g. the pool-width
    /// determinism suites, which would otherwise compare a simulation
    /// against its own memoized result.
    pub fn clear_memory(&self) {
        self.cells.lock().expect("cache lock").clear();
        *self.prediction_budget.lock().expect("cache lock") = Self::PREDICTION_BUDGET;
    }

    /// Cumulative accounting since process start.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// A non-simulating lookup: the memoized cell if either layer holds
    /// it, else `None` (counted as a hit only when found). The `--prune`
    /// sweep uses this to prefer an exact memoized value over an
    /// early-abort bound.
    pub fn peek(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Option<CachedCell> {
        let key = CellKey {
            fingerprint: arena.fingerprint(),
            cluster: cluster.to_string(),
            triple: triple.name(),
        };
        if let Some(cell) = self.cells.lock().expect("cache lock").get(&key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(cell.clone());
        }
        let cell = self.load_disk(&key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.insert(key, cell.clone(), false);
        Some(cell)
    }

    /// Runs (or recalls) one cell: `triple` on the `arena` workload on
    /// `cluster`. The returned aggregates are byte-identical to a
    /// fresh simulation's whichever layer serves them.
    pub fn run_cell(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<CachedCell, ScenarioError> {
        let key = CellKey {
            fingerprint: arena.fingerprint(),
            cluster: cluster.to_string(),
            triple: triple.name(),
        };
        if let Some(cell) = self.cells.lock().expect("cache lock").get(&key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cell.clone());
        }
        if let Some(cell) = self.load_disk(&key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert(key, cell.clone(), false);
            return Ok(cell);
        }

        self.simulated.fetch_add(1, Ordering::Relaxed);
        let sim =
            Scenario::from_triple(triple).run_on(arena, predictsim_sim::SimConfig { cluster })?;
        let result = TripleResult::from_sim(triple, &sim);
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();
        let cell = CachedCell {
            result,
            predictions: Some(Arc::new(predictions)),
        };
        self.insert(key, cell.clone(), true);
        Ok(cell)
    }

    /// Like [`SimCache::run_cell`], but guarantees the predictions are
    /// present (re-simulating without caching when the budget dropped
    /// them).
    pub fn run_cell_full(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
    ) -> Result<(TripleResult, Arc<Vec<i64>>), ScenarioError> {
        let cell = self.run_cell(arena, cluster, triple)?;
        if let Some(predictions) = cell.predictions {
            return Ok((cell.result, predictions));
        }
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let sim =
            Scenario::from_triple(triple).run_on(arena, predictsim_sim::SimConfig { cluster })?;
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();
        Ok((cell.result, Arc::new(predictions)))
    }

    /// Records a cell that was simulated outside [`SimCache::run_cell`]
    /// (the prune sweep's fully completed, non-aborted phase-2 runs):
    /// counts it as simulated, memoizes it, and persists it like any
    /// run_cell miss. Never call this with early-abort bounds — only
    /// exact results belong in the cache.
    pub(crate) fn record_simulated(
        &self,
        arena: &JobArena,
        cluster: ClusterSpec,
        triple: &HeuristicTriple,
        result: TripleResult,
        predictions: Vec<i64>,
    ) {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let key = CellKey {
            fingerprint: arena.fingerprint(),
            cluster: cluster.to_string(),
            triple: triple.name(),
        };
        let cell = CachedCell {
            result,
            predictions: Some(Arc::new(predictions)),
        };
        self.insert(key, cell, true);
    }

    fn insert(&self, key: CellKey, mut cell: CachedCell, persist: bool) {
        // Persist first: the disk layer has no budget, and dropping the
        // predictions before writing would silently break the
        // "repeated --cache run simulates zero cells" contract once the
        // in-memory budget is exhausted (full-scale runs).
        if persist {
            self.store_disk(&key, &cell);
        }
        if let Some(predictions) = &cell.predictions {
            let mut budget = self.prediction_budget.lock().expect("cache lock");
            if *budget >= predictions.len() {
                *budget -= predictions.len();
            } else {
                cell.predictions = None;
            }
        }
        self.cells.lock().expect("cache lock").insert(key, cell);
    }

    /// Stable file name for a key: [`crate::source::fnv1a64`] over the
    /// key's fields.
    fn file_of(dir: &Path, key: &CellKey) -> PathBuf {
        let hash = crate::source::fnv1a64(
            key.fingerprint
                .to_le_bytes()
                .into_iter()
                .chain(key.cluster.bytes())
                .chain(key.triple.bytes()),
        );
        dir.join(format!("cell-{hash:016x}.json"))
    }

    fn load_disk(&self, key: &CellKey) -> Option<CachedCell> {
        let dir = self.persist_dir.lock().expect("cache lock").clone()?;
        let text = std::fs::read_to_string(Self::file_of(&dir, key)).ok()?;
        let disk: DiskCell = serde_json::from_str(&text).ok()?;
        // Verify the full key: a file-name hash collision or a stale
        // entry must never serve the wrong cell.
        if disk.fingerprint != key.fingerprint
            || disk.cluster != key.cluster
            || disk.triple != key.triple
        {
            return None;
        }
        Some(CachedCell {
            result: disk.result,
            predictions: Some(Arc::new(disk.predictions)),
        })
    }

    fn store_disk(&self, key: &CellKey, cell: &CachedCell) {
        let Some(dir) = self.persist_dir.lock().expect("cache lock").clone() else {
            return;
        };
        let Some(predictions) = &cell.predictions else {
            return; // only complete cells are persisted
        };
        let disk = DiskCell {
            fingerprint: key.fingerprint,
            cluster: key.cluster.clone(),
            triple: key.triple.clone(),
            result: cell.result.clone(),
            predictions: predictions.as_ref().clone(),
        };
        let path = Self::file_of(&dir, key);
        // Persistence is best-effort: a read-only or full disk must not
        // fail the experiment, only forgo the cache.
        let _ = std::fs::create_dir_all(&dir);
        if let Ok(json) = serde_json::to_string(&disk) {
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, json).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Variant;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny_arena(seed: u64) -> (JobArena, ClusterSpec) {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 200;
        spec.duration = 2 * 86_400;
        let w = generate(&spec, seed);
        (JobArena::new(w.jobs), ClusterSpec::single(w.machine_size))
    }

    /// A private cache instance (the global one is shared across tests).
    fn private() -> SimCache {
        SimCache::new()
    }

    #[test]
    fn second_lookup_is_a_memory_hit_with_identical_payload() {
        let cache = private();
        let (arena, m) = tiny_arena(3);
        let triple = HeuristicTriple::easy_plus_plus();
        let fresh = cache.run_cell(&arena, m, &triple).unwrap();
        let again = cache.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(fresh.result, again.result);
        assert_eq!(fresh.predictions.as_deref(), again.predictions.as_deref());
        let stats = cache.stats();
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.disk_hits, 0);
    }

    #[test]
    fn cached_aggregates_match_a_direct_simulation() {
        let cache = private();
        let (arena, m) = tiny_arena(4);
        let triple = HeuristicTriple::standard_easy();
        let cell = cache.run_cell(&arena, m, &triple).unwrap();
        let sim = Scenario::from_triple(&triple)
            .run_on(&arena, predictsim_sim::SimConfig { cluster: m })
            .unwrap();
        assert_eq!(cell.result, TripleResult::from_sim(&triple, &sim));
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();
        assert_eq!(
            cell.predictions.as_deref().map(|p| p.as_slice()),
            Some(predictions.as_slice())
        );
    }

    #[test]
    fn distinct_workloads_and_triples_do_not_collide() {
        let cache = private();
        let (a, ma) = tiny_arena(5);
        let (b, mb) = tiny_arena(6);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let easy = HeuristicTriple::standard_easy();
        let clair = HeuristicTriple::clairvoyant(Variant::Easy);
        let cells = [
            cache.run_cell(&a, ma, &easy).unwrap(),
            cache.run_cell(&b, mb, &easy).unwrap(),
            cache.run_cell(&a, ma, &clair).unwrap(),
        ];
        assert_eq!(cache.stats().simulated, 3, "three distinct cells");
        assert_ne!(cells[0].result.ave_bsld, cells[2].result.ave_bsld);
    }

    #[test]
    fn equal_total_clusters_are_distinct_cells() {
        // Two cluster specs with the same total processor count — the
        // legacy single machine and a half-speed single partition — must
        // never alias: each gets its own simulation, in memory and on
        // disk (the key is the canonical cluster string, not the total).
        let cache = private();
        let (arena, legacy) = tiny_arena(14);
        let slow: ClusterSpec = format!("cluster:{}x0.5", legacy.total_procs())
            .parse()
            .unwrap();
        assert_eq!(legacy.total_procs(), slow.total_procs());
        assert_ne!(legacy.fingerprint(), slow.fingerprint());
        // Equal totals with different partitioning also fingerprint apart.
        let split: ClusterSpec = "cluster:32x1+32x1".parse().unwrap();
        assert_eq!(split.total_procs(), ClusterSpec::single(64).total_procs());
        assert_ne!(split.fingerprint(), ClusterSpec::single(64).fingerprint());

        let triple = HeuristicTriple::standard_easy();
        cache.run_cell(&arena, legacy, &triple).unwrap();
        cache.run_cell(&arena, slow, &triple).unwrap();
        assert_eq!(
            cache.stats().simulated,
            2,
            "equal-total specs must not share a cell"
        );
        assert_eq!(cache.stats().hits(), 0);
        // And each spec is a hit against itself.
        cache.run_cell(&arena, slow, &triple).unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn persistent_layer_round_trips_and_verifies_keys() {
        let dir =
            std::env::temp_dir().join(format!("predictsim-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (arena, m) = tiny_arena(7);
        let triple = HeuristicTriple::easy_plus_plus();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        let fresh = writer.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(writer.stats().simulated, 1);

        // A new process (modeled by a new cache instance) reads it back.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0, "disk must serve the cell");
        assert_eq!(reader.stats().disk_hits, 1);
        assert_eq!(recalled.result, fresh.result);
        assert_eq!(
            recalled.predictions.as_deref(),
            fresh.predictions.as_deref()
        );

        // A different workload misses (and must not be served the file).
        let (other, mo) = tiny_arena(8);
        reader.run_cell(&other, mo, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_budget_still_persists_full_cells_to_disk() {
        let dir = std::env::temp_dir().join(format!(
            "predictsim-cache-budget-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (arena, m) = tiny_arena(11);
        let triple = HeuristicTriple::standard_easy();

        let writer = private();
        writer.set_persist_dir(Some(dir.clone()));
        *writer.prediction_budget.lock().unwrap() = 0; // memory budget gone
        let fresh = writer.run_cell(&arena, m, &triple).unwrap();

        // The disk layer has no budget: a fresh process must still be
        // served the complete cell without simulating.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0);
        assert_eq!(reader.stats().disk_hits, 1);
        assert_eq!(recalled.result, fresh.result);
        assert_eq!(
            recalled.predictions.as_deref(),
            fresh.predictions.as_deref()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_simulated_memoizes_persists_and_counts() {
        let dir = std::env::temp_dir().join(format!(
            "predictsim-cache-record-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (arena, m) = tiny_arena(12);
        let triple = HeuristicTriple::easy_plus_plus();

        // The value an external driver (the prune sweep) simulated.
        let sim = Scenario::from_triple(&triple)
            .run_on(&arena, predictsim_sim::SimConfig { cluster: m })
            .unwrap();
        let result = TripleResult::from_sim(&triple, &sim);
        let predictions: Vec<i64> = sim.outcomes.iter().map(|o| o.initial_prediction).collect();

        let cache = private();
        cache.set_persist_dir(Some(dir.clone()));
        cache.record_simulated(&arena, m, &triple, result.clone(), predictions.clone());
        assert_eq!(cache.stats().simulated, 1, "recorded runs count as work");

        // Memoized for this process...
        let peeked = cache.peek(&arena, m, &triple).expect("cell memoized");
        assert_eq!(peeked.result, result);
        // ...and persisted for the next one.
        let reader = private();
        reader.set_persist_dir(Some(dir.clone()));
        let recalled = reader.run_cell(&arena, m, &triple).unwrap();
        assert_eq!(reader.stats().simulated, 0);
        assert_eq!(recalled.result, result);
        assert_eq!(
            recalled.predictions.as_deref().map(|p| p.as_slice()),
            Some(predictions.as_slice())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_budget_drops_predictions_but_keeps_aggregates() {
        let cache = private();
        *cache.prediction_budget.lock().unwrap() = 10; // tiny budget
        let (arena, m) = tiny_arena(9);
        let triple = HeuristicTriple::standard_easy();
        let cell = cache.run_cell(&arena, m, &triple).unwrap();
        assert!(cell.predictions.is_some(), "caller still gets them");
        let again = cache.run_cell(&arena, m, &triple).unwrap();
        assert!(again.predictions.is_none(), "budget dropped the vector");
        assert_eq!(again.result, cell.result);
        // run_cell_full re-simulates to recover them.
        let (result, predictions) = cache.run_cell_full(&arena, m, &triple).unwrap();
        assert_eq!(result, cell.result);
        assert_eq!(
            Some(predictions.as_slice()),
            cell.predictions.as_deref().map(|p| p.as_slice())
        );
    }
}
