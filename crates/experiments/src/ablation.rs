//! Ablation studies for the design choices DESIGN.md §6 calls out.
//!
//! Beyond the paper's own comparisons, these isolate the contribution of
//! each ingredient of the winning heuristic triple: the backfill
//! ordering, the correction mechanism, the optimizer, and the basis
//! degree. Each ablation runs on one workload and returns labeled
//! AVEbsld values.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use predictsim_core::loss::AsymmetricLoss;
use predictsim_core::predictor::{BasisKind, MlConfig, OptimizerKind};
use predictsim_core::weighting::WeightingScheme;

use crate::cache::SimCache;
use crate::source::LoadedWorkload;
use crate::triple::{CorrectionKind, HeuristicTriple, PredictionTechnique, Variant};

/// One labeled ablation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which knob value was measured.
    pub label: String,
    /// Resulting AVEbsld.
    pub ave_bsld: f64,
    /// Total corrections (a proxy for prediction quality in context).
    pub corrections: u64,
}

fn run_rows(workload: &LoadedWorkload, runs: Vec<(String, HeuristicTriple)>) -> Vec<AblationRow> {
    let cache = SimCache::global();
    let progress = crate::progress::CellProgress::new("ablation", runs.len());
    runs.into_par_iter()
        .map(|(label, triple)| {
            let started = crate::progress::start();
            let (cell, source) = cache
                .run_cell_traced(
                    &workload.jobs,
                    predictsim_sim::ClusterSpec::single(workload.machine_size),
                    &triple,
                )
                .unwrap_or_else(|e| panic!("ablation {label} failed: {e}"));
            progress.cell_done(&label, source, started);
            AblationRow {
                label,
                ave_bsld: cell.result.ave_bsld,
                corrections: cell.result.corrections,
            }
        })
        .collect()
}

/// Scheduler ablation under clairvoyance: FCFS vs EASY vs EASY-SJBF vs
/// conservative backfilling. Isolates how much of the win is pure
/// scheduling mechanics.
pub fn ablate_scheduler(workload: &LoadedWorkload) -> Vec<AblationRow> {
    let runs = [
        Variant::Fcfs,
        Variant::Easy,
        Variant::EasySjbf,
        Variant::Conservative,
    ]
    .into_iter()
    .map(|v| {
        (
            format!("clairvoyant+{}", v.name()),
            HeuristicTriple {
                prediction: PredictionTechnique::Clairvoyant,
                correction: None,
                variant: v,
            },
        )
    })
    .collect();
    run_rows(workload, runs)
}

/// Correction-mechanism ablation with the E-Loss learner under EASY-SJBF
/// (§5.2's three options).
pub fn ablate_correction(workload: &LoadedWorkload) -> Vec<AblationRow> {
    let runs = CorrectionKind::ALL
        .into_iter()
        .map(|c| {
            (
                format!("eloss+{}+easy-sjbf", c.name()),
                HeuristicTriple {
                    prediction: PredictionTechnique::Ml(MlConfig::e_loss()),
                    correction: Some(c),
                    variant: Variant::EasySjbf,
                },
            )
        })
        .collect();
    run_rows(workload, runs)
}

/// Optimizer ablation: NAG (the paper's choice) vs SGD vs AdaGrad with
/// identical loss, correction and variant.
pub fn ablate_optimizer(workload: &LoadedWorkload) -> Vec<AblationRow> {
    let runs = [
        OptimizerKind::Nag,
        OptimizerKind::Sgd,
        OptimizerKind::AdaGrad,
    ]
    .into_iter()
    .map(|opt| {
        let mut cfg = MlConfig::e_loss();
        cfg.optimizer = opt;
        (
            format!("eloss[{:?}]+incremental+easy-sjbf", opt),
            HeuristicTriple {
                prediction: PredictionTechnique::Ml(cfg),
                correction: Some(CorrectionKind::Incremental),
                variant: Variant::EasySjbf,
            },
        )
    })
    .collect();
    run_rows(workload, runs)
}

/// Basis ablation: degree-2 polynomial (Equation 1) vs a plain linear
/// model over the same features.
pub fn ablate_basis(workload: &LoadedWorkload) -> Vec<AblationRow> {
    let runs = [BasisKind::Polynomial, BasisKind::Linear]
        .into_iter()
        .map(|basis| {
            let mut cfg = MlConfig::e_loss();
            cfg.basis = basis;
            (
                format!("eloss[{:?} basis]+incremental+easy-sjbf", basis),
                HeuristicTriple {
                    prediction: PredictionTechnique::Ml(cfg),
                    correction: Some(CorrectionKind::Incremental),
                    variant: Variant::EasySjbf,
                },
            )
        })
        .collect();
    run_rows(workload, runs)
}

/// Loss-shape ablation: the E-Loss asymmetry vs the symmetric squared
/// loss, both area-weighted and unweighted (the Figure 4/5 comparison as
/// scheduling numbers).
pub fn ablate_loss(workload: &LoadedWorkload) -> Vec<AblationRow> {
    let combos = [
        (
            "eloss/area",
            AsymmetricLoss::E_LOSS,
            WeightingScheme::LargeArea,
        ),
        (
            "eloss/const",
            AsymmetricLoss::E_LOSS,
            WeightingScheme::Constant,
        ),
        (
            "squared/area",
            AsymmetricLoss::SQUARED,
            WeightingScheme::LargeArea,
        ),
        (
            "squared/const",
            AsymmetricLoss::SQUARED,
            WeightingScheme::Constant,
        ),
    ];
    let runs = combos
        .into_iter()
        .map(|(label, loss, weighting)| {
            (
                format!("{label}+incremental+easy-sjbf"),
                HeuristicTriple {
                    prediction: PredictionTechnique::Ml(MlConfig::new(loss, weighting)),
                    correction: Some(CorrectionKind::Incremental),
                    variant: Variant::EasySjbf,
                },
            )
        })
        .collect();
    run_rows(workload, runs)
}

/// Renders ablation rows as a markdown table.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out =
        format!("### {title}\n\n| configuration | AVEbsld | corrections |\n|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {} |\n",
            r.label, r.ave_bsld, r.corrections
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny() -> LoadedWorkload {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 250;
        spec.duration = 3 * 86_400;
        generate(&spec, 21).into()
    }

    #[test]
    fn scheduler_ablation_orders_fcfs_last() {
        let w = tiny();
        let rows = ablate_scheduler(&w);
        assert_eq!(rows.len(), 4);
        let fcfs = rows
            .iter()
            .find(|r| r.label.contains("fcfs"))
            .expect("fcfs row");
        let easy = rows
            .iter()
            .find(|r| r.label == "clairvoyant+easy")
            .expect("easy row");
        assert!(
            fcfs.ave_bsld >= easy.ave_bsld,
            "backfilling must not lose to plain FCFS: {} vs {}",
            fcfs.ave_bsld,
            easy.ave_bsld
        );
    }

    #[test]
    fn correction_and_optimizer_ablations_run() {
        let w = tiny();
        assert_eq!(ablate_correction(&w).len(), 3);
        assert_eq!(ablate_optimizer(&w).len(), 3);
        assert_eq!(ablate_basis(&w).len(), 2);
        assert_eq!(ablate_loss(&w).len(), 4);
    }

    #[test]
    fn render_contains_rows() {
        let rows = vec![AblationRow {
            label: "x".into(),
            ave_bsld: 1.5,
            corrections: 7,
        }];
        let md = render_ablation("Test", &rows);
        assert!(md.contains("### Test"));
        assert!(md.contains("| x | 1.50 | 7 |"));
    }
}
