//! Leave-one-out cross-validation of heuristic triples (§6.3.3).
//!
//! Because triple performance correlates only weakly across logs
//! (§6.3.2, Figure 3), picking the best triple *per log* would overfit.
//! The paper instead selects, for each log, the triple minimizing the
//! summed AVEbsld over the *other five* logs, and evaluates that
//! selection on the held-out log — repeated six times. Table 7 reports
//! the resulting AVEbsld and its reduction relative to EASY and EASY++.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::campaign::{run_campaign_source, CampaignResult};
use crate::source::{SourceError, WorkloadSource};
use crate::triple::HeuristicTriple;

/// One Table 7 row: the held-out log and the cross-validated selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvRow {
    /// Held-out log name.
    pub log: String,
    /// The triple selected on the other logs.
    pub selected_triple: String,
    /// AVEbsld of the selected triple on the held-out log.
    pub cv_bsld: f64,
    /// AVEbsld of standard EASY on the held-out log.
    pub easy_bsld: f64,
    /// AVEbsld of EASY++ on the held-out log.
    pub easy_pp_bsld: f64,
}

impl CvRow {
    /// Percentage reduction of the C-V triple vs EASY (positive = better,
    /// the parenthesized numbers of Table 7).
    pub fn reduction_vs_easy(&self) -> f64 {
        100.0 * (1.0 - self.cv_bsld / self.easy_bsld)
    }

    /// Percentage reduction of EASY++ vs EASY.
    pub fn easypp_reduction_vs_easy(&self) -> f64 {
        100.0 * (1.0 - self.easy_pp_bsld / self.easy_bsld)
    }

    /// Percentage reduction of the C-V triple vs EASY++.
    pub fn reduction_vs_easypp(&self) -> f64 {
        100.0 * (1.0 - self.cv_bsld / self.easy_pp_bsld)
    }
}

/// The full cross-validation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvOutcome {
    /// One row per held-out log.
    pub rows: Vec<CvRow>,
    /// The triple selected when *all* logs vote (the §6.3.4 "single
    /// prevalent triple").
    pub global_winner: String,
}

impl CvOutcome {
    /// Mean AVEbsld reduction vs EASY over all rows (the paper's
    /// headline 28%).
    pub fn mean_reduction_vs_easy(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.reduction_vs_easy()))
    }

    /// Mean AVEbsld reduction vs EASY++ (the paper's 11%).
    pub fn mean_reduction_vs_easypp(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.reduction_vs_easypp()))
    }

    /// Maximum reduction vs EASY over the logs (the paper's 86%, reached
    /// on Curie).
    pub fn max_reduction_vs_easy(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.reduction_vs_easy())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Names of triples eligible for selection: everything except the
/// clairvoyant references (which use unavailable information).
fn eligible(campaign: &CampaignResult) -> impl Iterator<Item = &str> {
    campaign
        .results
        .iter()
        .filter(|r| r.predictor != "clairvoyant")
        .map(|r| r.triple.as_str())
}

/// Selects the triple minimizing the summed AVEbsld over `campaigns`,
/// skipping the campaign at `exclude` (pass `campaigns.len()` to use all).
pub fn select_triple(campaigns: &[CampaignResult], exclude: usize) -> String {
    assert!(!campaigns.is_empty(), "need at least one campaign");
    let reference = if exclude == 0 && campaigns.len() > 1 {
        1
    } else {
        0
    };
    let mut best: Option<(f64, &str)> = None;
    for name in eligible(&campaigns[reference]) {
        let mut total = 0.0;
        let mut complete = true;
        for (i, c) in campaigns.iter().enumerate() {
            if i == exclude {
                continue;
            }
            match c.get(name) {
                Some(r) => total += r.ave_bsld,
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        if best.map(|(b, _)| total < b).unwrap_or(true) {
            best = Some((total, name));
        }
    }
    best.expect("no eligible triple common to all campaigns")
        .1
        .to_string()
}

/// Leave-one-out cross-validation over one campaign per log (§6.3.3).
///
/// The per-held-out-log selections are independent, so the folds run in
/// parallel (order-preserving, deterministic — see `vendor/rayon`).
///
/// # Panics
///
/// Panics if the campaigns do not all contain the EASY and EASY++
/// triples (run them with [`crate::triple::campaign_triples`]).
pub fn cross_validate(campaigns: &[CampaignResult]) -> CvOutcome {
    let easy_name = HeuristicTriple::standard_easy().name();
    let easypp_name = HeuristicTriple::easy_plus_plus().name();
    let rows = (0..campaigns.len())
        .into_par_iter()
        .map(|i| {
            let held_out = &campaigns[i];
            let selected = select_triple(campaigns, i);
            crate::progress::emit(&format!(
                "cv fold {} held out — selected {selected}",
                held_out.log
            ));
            CvRow {
                log: held_out.log.clone(),
                cv_bsld: held_out.bsld_of(&selected),
                selected_triple: selected,
                easy_bsld: held_out.bsld_of(&easy_name),
                easy_pp_bsld: held_out.bsld_of(&easypp_name),
            }
        })
        .collect();
    CvOutcome {
        rows,
        global_winner: select_triple(campaigns, campaigns.len()),
    }
}

/// The whole §6.3.3 pipeline over any mix of [`WorkloadSource`]s
/// (synthetic specs, SWF logs, pre-loaded workloads): one campaign per
/// source through the `Scenario` API, then leave-one-out
/// cross-validation.
pub fn cross_validate_sources(
    sources: &[&dyn WorkloadSource],
    triples: &[HeuristicTriple],
) -> Result<CvOutcome, SourceError> {
    let campaigns: Vec<CampaignResult> = sources
        .iter()
        .map(|source| run_campaign_source(*source, triples))
        .collect::<Result<_, _>>()?;
    Ok(cross_validate(&campaigns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::TripleResult;

    fn result(triple: &str, predictor: &str, bsld: f64) -> TripleResult {
        TripleResult {
            triple: triple.into(),
            predictor: predictor.into(),
            correction: None,
            variant: "easy".into(),
            ave_bsld: bsld,
            max_bsld: bsld * 10.0,
            extreme_fraction: 0.0,
            mean_wait: 100.0,
            utilization: 0.7,
            corrections: 0,
            mae: 0.0,
            mean_eloss: 0.0,
        }
    }

    fn campaign(log: &str, bslds: &[(&str, &str, f64)]) -> CampaignResult {
        CampaignResult {
            log: log.into(),
            machine_size: 64,
            jobs: 100,
            results: bslds.iter().map(|(t, p, b)| result(t, p, *b)).collect(),
        }
    }

    fn three_campaigns() -> Vec<CampaignResult> {
        let easy = HeuristicTriple::standard_easy().name();
        let easypp = HeuristicTriple::easy_plus_plus().name();
        // Triple "A" is best overall; "B" wins only on log2 (the log-local
        // optimum CV must not pick for log2 when held out).
        vec![
            campaign(
                "log1",
                &[
                    (&easy, "requested", 100.0),
                    (&easypp, "ave2", 80.0),
                    ("A", "ml", 50.0),
                    ("B", "ml", 90.0),
                    ("clair", "clairvoyant", 10.0),
                ],
            ),
            campaign(
                "log2",
                &[
                    (&easy, "requested", 60.0),
                    (&easypp, "ave2", 55.0),
                    ("A", "ml", 40.0),
                    ("B", "ml", 20.0),
                    ("clair", "clairvoyant", 5.0),
                ],
            ),
            campaign(
                "log3",
                &[
                    (&easy, "requested", 200.0),
                    (&easypp, "ave2", 150.0),
                    ("A", "ml", 100.0),
                    ("B", "ml", 180.0),
                    ("clair", "clairvoyant", 20.0),
                ],
            ),
        ]
    }

    #[test]
    fn clairvoyant_is_never_selected() {
        let winner = select_triple(&three_campaigns(), 3);
        assert_ne!(winner, "clair");
        assert_eq!(winner, "A"); // 50+40+100 beats B's 90+20+180
    }

    #[test]
    fn leave_one_out_uses_only_other_logs() {
        let campaigns = three_campaigns();
        // Holding out log3: A=50+40=90, B=90+20=110 -> A selected.
        assert_eq!(select_triple(&campaigns, 2), "A");
        // Holding out log1: A=40+100=140, B=20+180=200 -> still A.
        assert_eq!(select_triple(&campaigns, 0), "A");
    }

    /// The `exclude == 0` branch: candidate triples are enumerated from
    /// the *second* campaign when the first is held out (enumerating
    /// from the held-out campaign itself would consider triples that
    /// never ran on the evaluation logs).
    #[test]
    fn holding_out_the_first_campaign_enumerates_from_the_second() {
        let mut campaigns = three_campaigns();
        // A triple that exists ONLY in the held-out first campaign, with
        // an unbeatable score: if `select_triple(.., 0)` enumerated
        // candidates from campaigns[0], it would either pick this (a
        // triple with no results on the evaluation logs) or die on the
        // missing-cell lookup.
        campaigns[0]
            .results
            .push(result("only-in-log1", "ml", 0.001));
        assert_eq!(select_triple(&campaigns, 0), "A");

        // Symmetric guard: a triple present on every log *except* a
        // non-held-out one is skipped as incomplete rather than scored
        // on partial data.
        campaigns[0].results.push(result("partial", "ml", 0.001));
        campaigns[1].results.push(result("partial", "ml", 0.001));
        assert_eq!(
            select_triple(&campaigns, 0),
            "A",
            "a triple missing from log3 must not win on partial sums"
        );

        // With a single campaign, exclude == 0 must still enumerate from
        // that campaign (there is no second one) — the `campaigns.len()
        // > 1` half of the branch.
        let solo = vec![campaign("solo", &[("A", "ml", 5.0), ("B", "ml", 3.0)])];
        assert_eq!(select_triple(&solo, 1), "B");
    }

    #[test]
    fn cross_validation_rows_and_reductions() {
        let outcome = cross_validate(&three_campaigns());
        assert_eq!(outcome.rows.len(), 3);
        assert_eq!(outcome.global_winner, "A");
        let row1 = &outcome.rows[0];
        assert_eq!(row1.log, "log1");
        assert_eq!(row1.selected_triple, "A");
        assert_eq!(row1.cv_bsld, 50.0);
        assert_eq!(row1.easy_bsld, 100.0);
        assert!((row1.reduction_vs_easy() - 50.0).abs() < 1e-9);
        assert!((row1.reduction_vs_easypp() - 37.5).abs() < 1e-9);
        assert!(outcome.mean_reduction_vs_easy() > 0.0);
        assert!(outcome.max_reduction_vs_easy() >= outcome.mean_reduction_vs_easy());
    }
}
