//! Cloud cluster-trace ingestion: Alibaba and Google CSV formats.
//!
//! The SWF archive tops out around 10^5 jobs; the cloud traces used by
//! the duration-prediction literature (see PAPERS.md) are orders of
//! magnitude larger. These readers bring two of the standard formats
//! into the [`WorkloadSource`] pipeline, with the same contract as the
//! streaming SWF path: one pass over the file, engine [`Job`]s built
//! directly (no intermediate record vector), a [`CleaningReport`]
//! accounting for every dropped row, and jobs that come out
//! submit-sorted, densely numbered, and user-interned.
//!
//! * [`AlibabaSource`] reads `batch_task.csv` from the Alibaba
//!   cluster-trace-v2018 release: one row per batch task,
//!   `task_name,instance_num,job_name,task_type,status,start_time,
//!   end_time,plan_cpu,plan_mem`. Only `Terminated` tasks with a
//!   positive duration are runnable; `instance_num` is the processor
//!   request; the user is derived from the job name.
//! * [`GoogleSource`] reads a `task_events` shard from the Google 2011
//!   cluster trace: an event stream (timestamps in microseconds) that
//!   must be paired per task — SUBMIT gives the release date, SCHEDULE
//!   the start, FINISH the completion; evicted/failed/killed/lost tasks
//!   and tasks still in flight when the shard ends are unrunnable. The
//!   fractional `cpu_request` is scaled to whole processors by
//!   [`GoogleSource::with_cores_per_task`].
//!
//! Neither format records user runtime estimates, so `requested = run`
//! for every job — exactly what the SWF cleaning convention
//! (`repair_missing_estimates`) produces for estimate-less records.
//! Both formats are headerless, so the simulated machine size must be
//! given explicitly at construction.

use std::io::BufRead;
use std::path::{Path, PathBuf};

use predictsim_sim::{intern_users, Job, JobId, Time};
use predictsim_swf::reader::ParseError;
use predictsim_swf::CleaningReport;

use crate::source::{fnv1a64, JobArena, LoadStats, LoadedWorkload, SourceError, WorkloadSource};

/// Where a CSV trace reader gets its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CsvInput {
    /// A file on disk.
    File(PathBuf),
    /// In-memory text under a display name (fixtures, tests).
    Text {
        /// Display name for the loaded workload.
        name: String,
        /// The CSV document.
        text: String,
    },
}

impl CsvInput {
    fn name(&self) -> String {
        match self {
            CsvInput::File(path) => path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            CsvInput::Text { name, .. } => name.clone(),
        }
    }

    fn describe(&self, format: &str) -> String {
        match self {
            CsvInput::File(path) => format!("{format} trace {}", path.display()),
            CsvInput::Text { name, .. } => format!("{format} trace text {name}"),
        }
    }

    /// Streams the input line by line through `visit(line_no, line)`,
    /// reusing one buffer. Line numbers are 1-based.
    fn for_each_line(
        &self,
        mut visit: impl FnMut(usize, &str) -> Result<(), SourceError>,
    ) -> Result<(), SourceError> {
        fn drive<R: BufRead>(
            mut reader: R,
            visit: &mut impl FnMut(usize, &str) -> Result<(), SourceError>,
        ) -> Result<(), SourceError> {
            let mut line = String::new();
            let mut lineno = 0usize;
            loop {
                line.clear();
                lineno += 1;
                let read = loop {
                    match reader.read_line(&mut line) {
                        // Retry transient interrupts without clearing —
                        // the reader may already have appended part of
                        // the line (see the SWF stream for the same
                        // hardening).
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        other => break other,
                    }
                };
                match read {
                    Ok(0) => return Ok(()),
                    Ok(_) => visit(lineno, line.trim_end_matches(['\n', '\r']))?,
                    Err(e) => {
                        return Err(SourceError::Parse(ParseError {
                            line: lineno,
                            message: format!("I/O error: {e}"),
                        }))
                    }
                }
            }
        }
        match self {
            CsvInput::File(path) => {
                let file = std::fs::File::open(path).map_err(|e| SourceError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                // `trace.read` fault site — same contract as the SWF
                // path's `swf.read`.
                let faulty = predictsim_faultline::FaultyRead::new(file, "trace.read");
                drive(std::io::BufReader::new(faulty), &mut visit)
            }
            CsvInput::Text { text, .. } => drive(std::io::Cursor::new(text.as_bytes()), &mut visit),
        }
    }
}

fn malformed(line: usize, message: impl Into<String>) -> SourceError {
    SourceError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// A stable 32-bit user id from an arbitrary trace identifier: numeric
/// suffixes (Alibaba's `j_3870`) parse through directly, anything else
/// hashes (FNV-1a). Collisions only merge user histories — interning
/// keeps the id space dense either way.
fn user_from_name(name: &str) -> u32 {
    let digits = name.trim_start_matches(|c: char| !c.is_ascii_digit());
    if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
        if let Ok(n) = digits.parse::<u32>() {
            return n;
        }
    }
    fnv1a64(name.bytes()) as u32
}

/// Shared tail for the CSV readers: drop oversize jobs, sort by submit
/// (stable, ties by `swf_id`), renumber densely, intern users, validate,
/// and assemble the [`LoadedWorkload`]. Mirrors the SWF streaming path.
fn finalize(
    name: String,
    machine_size: u32,
    mut jobs: Vec<Job>,
    mut report: CleaningReport,
) -> Result<LoadedWorkload, SourceError> {
    let before = jobs.len();
    jobs.retain(|j| j.procs <= machine_size);
    report.dropped_oversize += before - jobs.len();
    let sorted = jobs.windows(2).all(|w| w[0].submit <= w[1].submit);
    if !sorted {
        report.reordered = true;
        jobs.sort_by_key(|j| (j.submit, j.swf_id));
    }
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = JobId(i as u32);
    }
    intern_users(&mut jobs);
    report.kept = jobs.len();
    for job in &jobs {
        job.validate().map_err(SourceError::Invalid)?;
    }
    Ok(LoadedWorkload {
        name,
        machine_size,
        jobs: JobArena::new(jobs),
        cleaning: Some(report),
        stats: LoadStats {
            streamed: true,
            buffered_records: 0,
        },
    })
}

/// Alibaba cluster-trace-v2018 `batch_task.csv` as a workload source.
///
/// ```
/// use predictsim_experiments::trace::AlibabaSource;
/// use predictsim_experiments::source::WorkloadSource;
///
/// let csv = "\
/// task_M1,2,j_1,1,Terminated,100,400,50,0.5
/// task_M2,1,j_2,1,Terminated,150,250,100,1.0
/// task_M3,1,j_3,1,Failed,160,170,100,1.0
/// ";
/// let w = AlibabaSource::from_text("ali-mini", csv, 64).load().unwrap();
/// assert_eq!(w.jobs.len(), 2); // the Failed task is unrunnable
/// assert_eq!(w.jobs[0].run, 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AlibabaSource {
    input: CsvInput,
    machine_size: u32,
}

impl AlibabaSource {
    /// A source reading `batch_task.csv` at `path`, simulated on a
    /// `machine_size`-processor machine (the trace is headerless).
    pub fn new(path: impl AsRef<Path>, machine_size: u32) -> Self {
        Self {
            input: CsvInput::File(path.as_ref().to_path_buf()),
            machine_size,
        }
    }

    /// A source over in-memory CSV text (fixtures, tests).
    pub fn from_text(name: impl Into<String>, text: impl Into<String>, machine_size: u32) -> Self {
        Self {
            input: CsvInput::Text {
                name: name.into(),
                text: text.into(),
            },
            machine_size,
        }
    }
}

impl WorkloadSource for AlibabaSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        let mut jobs: Vec<Job> = Vec::new();
        let mut report = CleaningReport::default();
        let mut rows = 0u64;
        self.input.for_each_line(|lineno, line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return Ok(());
            }
            if lineno == 1 && line.starts_with("task_name") {
                return Ok(()); // column-header row on exported CSVs
            }
            let mut fields = line.split(',');
            let mut field = |what: &str| {
                fields.next().ok_or_else(|| {
                    malformed(
                        lineno,
                        format!("missing `{what}` column (truncated row? expected 9 fields)"),
                    )
                })
            };
            let _task_name = field("task_name")?;
            let instance_num = field("instance_num")?;
            let job_name = field("job_name")?;
            let _task_type = field("task_type")?;
            let status = field("status")?;
            let start_time = field("start_time")?;
            let end_time = field("end_time")?;
            rows += 1;
            // `Terminated` is the only status that ran to completion;
            // Failed/Waiting/Running/Interrupted rows are unrunnable.
            if status != "Terminated" {
                report.dropped_unrunnable += 1;
                return Ok(());
            }
            let parse_i64 = |what: &str, s: &str| {
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| malformed(lineno, format!("unparseable `{what}` value {s:?}")))
            };
            let procs = parse_i64("instance_num", instance_num)?;
            let start = parse_i64("start_time", start_time)?;
            let end = parse_i64("end_time", end_time)?;
            // Zero timestamps mark tasks that never actually started.
            if start <= 0 || end <= start || procs <= 0 {
                report.dropped_unrunnable += 1;
                return Ok(());
            }
            let run = end - start;
            jobs.push(Job {
                id: JobId(jobs.len() as u32),
                submit: Time(start),
                run,
                requested: run, // the trace carries no user estimates
                procs: u32::try_from(procs)
                    .map_err(|_| malformed(lineno, format!("instance_num {procs} exceeds u32")))?,
                user: user_from_name(job_name),
                user_ix: 0, // interned in `finalize`
                swf_id: rows,
            });
            Ok(())
        })?;
        finalize(self.input.name(), self.machine_size, jobs, report)
    }

    fn describe(&self) -> String {
        self.input.describe("Alibaba batch_task")
    }
}

/// Google 2011 cluster-trace `task_events` event codes (column 6).
const G_SUBMIT: u32 = 0;
const G_SCHEDULE: u32 = 1;
const G_FINISH: u32 = 4;
// EVICT(2), FAIL(3), KILL(5), LOST(6) all abort the task instance.

/// A task being assembled from its event stream.
#[derive(Debug, Clone, Copy)]
struct PendingTask {
    submit_us: i64,
    schedule_us: Option<i64>,
    user: u32,
    procs: u32,
    first_line: u64,
}

/// Google 2011 cluster-trace `task_events` shard as a workload source.
///
/// Event rows are
/// `time,missing_info,job_id,task_index,machine_id,event_type,user,
/// scheduling_class,priority,cpu_request,...` with timestamps in
/// microseconds. Tasks are keyed by `(job_id, task_index)` and built
/// from the SUBMIT → SCHEDULE → FINISH pairing; anything evicted,
/// failed, killed, lost, or still unfinished when the shard ends is
/// counted unrunnable — a truncated trace window shows up in the
/// cleaning report rather than as phantom jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleSource {
    input: CsvInput,
    machine_size: u32,
    cores_per_task: f64,
}

impl GoogleSource {
    /// A source reading a `task_events` CSV at `path`, simulated on a
    /// `machine_size`-processor machine.
    pub fn new(path: impl AsRef<Path>, machine_size: u32) -> Self {
        Self {
            input: CsvInput::File(path.as_ref().to_path_buf()),
            machine_size,
            cores_per_task: 64.0,
        }
    }

    /// A source over in-memory CSV text (fixtures, tests).
    pub fn from_text(name: impl Into<String>, text: impl Into<String>, machine_size: u32) -> Self {
        Self {
            input: CsvInput::Text {
                name: name.into(),
                text: text.into(),
            },
            machine_size,
            cores_per_task: 64.0,
        }
    }

    /// Sets the core count a `cpu_request` of 1.0 maps to (the trace
    /// normalizes CPU to the largest machine; default 64). Processor
    /// requests are `ceil(cpu_request × cores)`, floored at 1.
    pub fn with_cores_per_task(mut self, cores: f64) -> Self {
        self.cores_per_task = cores;
        self
    }

    fn procs_from_cpu(&self, cpu_request: f64) -> u32 {
        ((cpu_request * self.cores_per_task).ceil() as u32).max(1)
    }
}

impl WorkloadSource for GoogleSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        // In-flight tasks, keyed by (job_id, task_index). This is the
        // only buffered state: bounded by trace concurrency, not length.
        let mut pending: predictsim_sim::hash::FxHashMap<(u64, u64), PendingTask> =
            Default::default();
        let mut jobs: Vec<Job> = Vec::new();
        let mut report = CleaningReport::default();
        self.input.for_each_line(|lineno, line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return Ok(());
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() < 7 {
                return Err(malformed(
                    lineno,
                    format!(
                        "expected at least 7 fields, got {} (truncated row?)",
                        fields.len()
                    ),
                ));
            }
            let parse_u64 = |what: &str, s: &str| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| malformed(lineno, format!("unparseable `{what}` value {s:?}")))
            };
            let time_us = parse_u64("time", fields[0])? as i64;
            let job_id = parse_u64("job_id", fields[2])?;
            let task_index = parse_u64("task_index", fields[3])?;
            let event = parse_u64("event_type", fields[5])? as u32;
            let key = (job_id, task_index);
            match event {
                G_SUBMIT => {
                    let cpu = fields
                        .get(9)
                        .map(|s| s.trim())
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.parse::<f64>().map_err(|_| {
                                malformed(lineno, format!("unparseable `cpu_request` value {s:?}"))
                            })
                        })
                        .transpose()?
                        .unwrap_or(0.0);
                    // Re-submission after eviction re-opens the task.
                    pending.insert(
                        key,
                        PendingTask {
                            submit_us: time_us,
                            schedule_us: None,
                            user: user_from_name(fields[6]),
                            procs: self.procs_from_cpu(cpu),
                            first_line: lineno as u64,
                        },
                    );
                }
                G_SCHEDULE => {
                    if let Some(task) = pending.get_mut(&key) {
                        task.schedule_us = Some(time_us);
                    }
                }
                G_FINISH => {
                    if let Some(task) = pending.remove(&key) {
                        let Some(start_us) = task.schedule_us else {
                            report.dropped_unrunnable += 1; // finish without a start
                            return Ok(());
                        };
                        if time_us <= start_us {
                            report.dropped_unrunnable += 1;
                            return Ok(());
                        }
                        // Microseconds → whole seconds, rounding up so
                        // sub-second tasks stay runnable.
                        let run = (time_us - start_us + 999_999) / 1_000_000;
                        jobs.push(Job {
                            id: JobId(jobs.len() as u32),
                            submit: Time(task.submit_us / 1_000_000),
                            run,
                            requested: run, // no user estimates in the trace
                            procs: task.procs,
                            user: task.user,
                            user_ix: 0, // interned in `finalize`
                            swf_id: task.first_line,
                        });
                    }
                }
                _ => {
                    // EVICT / FAIL / KILL / LOST / UPDATE_*: the
                    // instance never completes as scheduled.
                    if pending.remove(&key).is_some() {
                        report.dropped_unrunnable += 1;
                    }
                }
            }
            Ok(())
        })?;
        // Tasks still open when the shard ends: the truncated trace
        // window, surfaced as unrunnable drops.
        report.dropped_unrunnable += pending.len();
        finalize(self.input.name(), self.machine_size, jobs, report)
    }

    fn describe(&self) -> String {
        self.input.describe("Google task_events")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALI: &str = "\
task_M1,2,j_10,1,Terminated,300,600,50,0.5
task_M2,1,j_11,1,Terminated,100,250,100,1.0
task_M3,1,j_11,1,Failed,160,170,100,1.0
task_M4,1,j_12,1,Terminated,0,170,100,1.0
task_M5,999,j_13,1,Terminated,10,20,100,1.0
";

    #[test]
    fn alibaba_rows_become_sorted_interned_jobs() {
        let w = AlibabaSource::from_text("ali", ALI, 64).load().unwrap();
        let report = w.cleaning.clone().unwrap();
        // Failed row + zero start row are unrunnable; 999 instances is
        // oversize on a 64-proc machine.
        assert_eq!(report.dropped_unrunnable, 2);
        assert_eq!(report.dropped_oversize, 1);
        assert_eq!(report.kept, 2);
        assert!(report.reordered, "rows arrive out of submit order");
        // Sorted by submit, densely renumbered, users interned densely.
        assert_eq!(w.jobs[0].submit.0, 100);
        assert_eq!(w.jobs[0].run, 150);
        assert_eq!(w.jobs[0].user, 11, "numeric job-name suffix is the user");
        assert_eq!(w.jobs[1].submit.0, 300);
        assert_eq!(w.jobs[1].run, 300);
        assert_eq!(w.jobs[1].procs, 2);
        assert_eq!(
            w.jobs.iter().map(|j| j.user_ix).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(w.jobs.user_count(), 2);
        assert!(w.stats.streamed);
        assert_eq!(w.stats.buffered_records, 0);
    }

    #[test]
    fn alibaba_malformed_and_truncated_rows_are_typed_errors() {
        // Truncated row: not enough columns.
        let err = AlibabaSource::from_text("t", "task_M1,2,j_1,1,Terminated\n", 64)
            .load()
            .unwrap_err();
        let SourceError::Parse(e) = err else {
            panic!("expected a parse error")
        };
        assert_eq!(e.line, 1);
        assert!(e.message.contains("truncated"), "{}", e.message);
        // Malformed numeric field.
        let err =
            AlibabaSource::from_text("m", "task_M1,two,j_1,1,Terminated,100,400,50,0.5\n", 64)
                .load()
                .unwrap_err();
        let SourceError::Parse(e) = err else {
            panic!("expected a parse error")
        };
        assert!(e.message.contains("instance_num"), "{}", e.message);
    }

    #[test]
    fn alibaba_missing_file_is_io() {
        let err = AlibabaSource::new("/nonexistent/batch_task.csv", 64)
            .load()
            .unwrap_err();
        assert!(matches!(err, SourceError::Io { .. }));
    }

    // time,missing,job,task,machine,event,user,class,prio,cpu
    const GOOG: &str = "\
1000000,0,42,0,,0,alice,2,9,0.03125
2000000,0,42,0,m1,1,alice,2,9,0.03125
1500000,0,42,1,,0,bob,2,9,0.5
2500000,0,42,1,m2,1,bob,2,9,0.5
3500000,0,42,1,m2,5,bob,2,9,0.5
9000000,0,42,0,m1,4,alice,2,9,0.03125
4000000,0,99,0,,0,carol,2,9,
";

    #[test]
    fn google_events_pair_into_jobs() {
        let w = GoogleSource::from_text("goog", GOOG, 128).load().unwrap();
        let report = w.cleaning.clone().unwrap();
        // bob's task is KILLed; carol's never finishes in the shard.
        assert_eq!(report.dropped_unrunnable, 2);
        assert_eq!(report.kept, 1);
        let job = &w.jobs[0];
        assert_eq!(job.submit.0, 1, "submit µs → s");
        assert_eq!(job.run, 7, "schedule→finish, 7 s");
        assert_eq!(job.requested, 7);
        assert_eq!(job.procs, 2, "ceil(0.03125 × 64)");
        assert_eq!(job.user_ix, 0);
        assert!(w.stats.streamed);
    }

    #[test]
    fn google_cpu_scaling_is_configurable() {
        let w = GoogleSource::from_text("goog", GOOG, 4096)
            .with_cores_per_task(1024.0)
            .load()
            .unwrap();
        assert_eq!(w.jobs[0].procs, 32, "ceil(0.03125 × 1024)");
    }

    #[test]
    fn google_malformed_rows_are_typed_errors() {
        let err = GoogleSource::from_text("t", "1000000,0,42\n", 128)
            .load()
            .unwrap_err();
        let SourceError::Parse(e) = err else {
            panic!("expected a parse error")
        };
        assert!(e.message.contains("truncated"), "{}", e.message);
        let err = GoogleSource::from_text("m", "soon,0,42,0,,0,alice,2,9,0.5\n", 128)
            .load()
            .unwrap_err();
        let SourceError::Parse(e) = err else {
            panic!("expected a parse error")
        };
        assert!(e.message.contains("time"), "{}", e.message);
    }

    #[test]
    fn sources_describe_themselves() {
        assert!(AlibabaSource::from_text("a", "", 4)
            .describe()
            .contains("Alibaba"));
        assert!(GoogleSource::new("/tmp/x.csv", 4)
            .describe()
            .contains("task_events"));
    }
}
