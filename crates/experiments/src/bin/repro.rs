//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!   table1     EASY vs EASY-Clairvoyant per log           (§2.2, Table 1)
//!   table6     AVEbsld overview of all heuristic triples  (§6.3, Table 6)
//!   table7     cross-validated triple selection           (§6.3, Table 7)
//!   table8     MAE vs mean E-Loss on Curie                (§6.4, Table 8)
//!   fig3       inter-log scatter + Pearson aggregate      (§6.3, Figure 3)
//!   fig4       ECDF of prediction errors on Curie         (§6.4, Figure 4)
//!   fig5       ECDF of predicted values on Curie          (§6.4, Figure 5)
//!   ablation   scheduler/correction/optimizer/basis/loss ablations
//!   all        everything above (campaigns are shared)
//!
//! OPTIONS
//!   --scale F    preset scale factor (default 0.05; 1.0 = full Table 4)
//!   --full       shorthand for --scale 1.0
//!   --seed N     workload generation seed (default 20150101)
//!   --out DIR    also write JSON artifacts (campaigns, figures) to DIR
//! ```

use std::io::Write as _;
use std::time::Instant;

use predictsim_experiments::ablation;
use predictsim_experiments::campaign::{run_campaign, CampaignResult};
use predictsim_experiments::context::{ExperimentSetup, DEFAULT_SEED, QUICK_SCALE};
use predictsim_experiments::figures::{fig3, fig4_fig5, render_ecdf_series, render_fig3};
use predictsim_experiments::tables::{
    render_table1, render_table6, render_table7, render_table8, table1, table6, table7, table8,
};
use predictsim_experiments::triple::{campaign_triples, reference_triples, HeuristicTriple};
use predictsim_workload::GeneratedWorkload;

struct Options {
    setup: ExperimentSetup,
    out_dir: Option<std::path::PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut setup = ExperimentSetup {
        scale: QUICK_SCALE,
        seed: DEFAULT_SEED,
    };
    let mut out_dir = None;
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                setup.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--full" => setup.scale = 1.0,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                setup.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                out_dir = Some(std::path::PathBuf::from(
                    args.next().ok_or("--out needs a directory")?,
                ));
            }
            "--help" | "-h" => {
                experiments.clear();
                experiments.push("help".into());
                return Ok(Options {
                    setup,
                    out_dir,
                    experiments,
                });
            }
            other if !other.starts_with('-') => experiments.push(other.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if experiments.is_empty() {
        experiments.push("help".into());
    }
    Ok(Options {
        setup,
        out_dir,
        experiments,
    })
}

fn write_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create --out directory");
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).expect("create artifact file");
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    file.write_all(json.as_bytes()).expect("write artifact");
    println!("  wrote {}", path.display());
}

/// Campaigns (128 triples + 2 clairvoyant references per log) are the
/// expensive shared input of table6/table7/fig3; compute them once.
fn campaigns(workloads: &[GeneratedWorkload]) -> Vec<CampaignResult> {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    workloads
        .iter()
        .map(|w| {
            let t0 = Instant::now();
            let c = run_campaign(w, &triples);
            eprintln!(
                "  campaign {}: {} triples x {} jobs in {:.1}s",
                c.log,
                c.results.len(),
                c.jobs,
                t0.elapsed().as_secs_f64()
            );
            c
        })
        .collect()
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\nrun `repro --help` for usage");
            std::process::exit(2);
        }
    };
    if opts.experiments.iter().any(|e| e == "help") {
        print!("{USAGE}");
        return;
    }

    let wants = |name: &str| opts.experiments.iter().any(|e| e == name || e == "all");
    let needs_campaigns = wants("table6") || wants("table7") || wants("fig3");

    println!(
        "# predictsim repro — scale {}, seed {}\n",
        opts.setup.scale, opts.setup.seed
    );
    let t0 = Instant::now();
    let workloads = opts.setup.workloads();
    for w in &workloads {
        eprintln!(
            "  generated {}: {} jobs, m={}, offered util {:.2}",
            w.name,
            w.jobs.len(),
            w.machine_size,
            w.stats.offered_utilization
        );
    }

    if wants("table1") {
        println!("## Table 1 — EASY vs EASY-Clairvoyant (§2.2)\n");
        let rows = table1(&workloads);
        println!("{}", render_table1(&rows));
        write_json(&opts.out_dir, "table1.json", &rows);
    }

    let campaign_results = if needs_campaigns {
        eprintln!(
            "running campaigns ({} sims/log)...",
            campaign_triples().len() + 2
        );
        let cs = campaigns(&workloads);
        write_json(&opts.out_dir, "campaigns.json", &cs);
        Some(cs)
    } else {
        None
    };

    if wants("table6") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Table 6 — AVEbsld overview (§6.3.1)\n");
        let rows = table6(cs);
        println!("{}", render_table6(&rows));
        write_json(&opts.out_dir, "table6.json", &rows);
    }

    if wants("table7") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Table 7 — cross-validated triple selection (§6.3.3)\n");
        let outcome = table7(cs);
        println!("{}", render_table7(&outcome));
        write_json(&opts.out_dir, "table7.json", &outcome);
    }

    if wants("fig3") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Figure 3 — inter-log correlation (§6.3.2)\n");
        let fig = fig3(cs, "Metacentrum", "SDSC-BLUE");
        println!("{}", render_fig3(&fig));
        write_json(&opts.out_dir, "fig3.json", &fig);
    }

    if wants("table8") || wants("fig4") || wants("fig5") {
        let curie = workloads
            .iter()
            .find(|w| w.name.starts_with("Curie"))
            .expect("Curie preset present");
        if wants("table8") {
            println!("## Table 8 — MAE vs mean E-Loss on {} (§6.4)\n", curie.name);
            let rows = table8(curie);
            println!("{}", render_table8(&rows));
            write_json(&opts.out_dir, "table8.json", &rows);
        }
        if wants("fig4") || wants("fig5") {
            let fig = fig4_fig5(curie, 193);
            if wants("fig4") {
                println!(
                    "## Figure 4 — ECDF of prediction errors on {} (§6.4)\n",
                    fig.log
                );
                println!("{}", render_ecdf_series(&fig.error_series, "h"));
            }
            if wants("fig5") {
                println!(
                    "## Figure 5 — ECDF of predicted values on {} (§6.4)\n",
                    fig.log
                );
                println!("{}", render_ecdf_series(&fig.value_series, "h"));
            }
            write_json(&opts.out_dir, "fig4_fig5.json", &fig);
        }
    }

    if wants("ablation") {
        let w = workloads.first().expect("at least one workload");
        println!("## Ablations (on {})\n", w.name);
        for (title, rows) in [
            ("Scheduler (clairvoyant)", ablation::ablate_scheduler(w)),
            (
                "Correction mechanism (E-Loss learner)",
                ablation::ablate_correction(w),
            ),
            ("Optimizer", ablation::ablate_optimizer(w)),
            ("Basis degree", ablation::ablate_basis(w)),
            ("Loss shape x weighting", ablation::ablate_loss(w)),
        ] {
            println!("{}", ablation::render_ablation(title, &rows));
            write_json(
                &opts.out_dir,
                &format!(
                    "ablation_{}.json",
                    title.split(' ').next().expect("word").to_lowercase()
                ),
                &rows,
            );
        }
    }

    // Close with the headline comparison so `repro all` ends on the
    // paper's summary numbers.
    if wants("table7") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        let outcome = table7(cs);
        println!("---");
        println!(
            "Headline: C-V triple reduces AVEbsld by {:.0}% vs EASY (paper: 28%), {:.0}% vs EASY++ (paper: 11%), max {:.0}% (paper: 86%).",
            outcome.mean_reduction_vs_easy(),
            outcome.mean_reduction_vs_easypp(),
            outcome.max_reduction_vs_easy(),
        );
        println!(
            "Paper's winning triple: {}; ours: {}.",
            HeuristicTriple::paper_winner().name(),
            outcome.global_winner
        );
    }

    eprintln!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

const USAGE: &str = "\
repro — regenerate the tables and figures of Gaussier et al. (SC'15)

USAGE: repro [OPTIONS] <EXPERIMENT>...

EXPERIMENTS
  table1     EASY vs EASY-Clairvoyant per log           (Table 1)
  table6     AVEbsld overview of all heuristic triples  (Table 6)
  table7     cross-validated triple selection           (Table 7)
  table8     MAE vs mean E-Loss on Curie                (Table 8)
  fig3       inter-log scatter + Pearson aggregate      (Figure 3)
  fig4       ECDF of prediction errors on Curie         (Figure 4)
  fig5       ECDF of predicted values on Curie          (Figure 5)
  ablation   scheduler/correction/optimizer/basis/loss ablations
  all        everything above

OPTIONS
  --scale F    preset scale factor (default 0.05; 1.0 = full Table 4)
  --full       shorthand for --scale 1.0
  --seed N     workload generation seed (default 20150101)
  --out DIR    also write JSON artifacts to DIR
";
