//! The `Scenario` builder: the single public entry point for running
//! simulations.
//!
//! A scenario is a workload (any [`WorkloadSource`]) crossed with a
//! policy triple — scheduler × predictor × correction, each addressable
//! by its registry name ([`crate::registry`]) or by its typed value —
//! plus an optional per-event [`SimObserver`]. The builder defers all
//! resolution to [`ScenarioBuilder::build`], so misspelled policy names
//! surface as typed [`ScenarioError`]s instead of panics, and the same
//! `Scenario` can be rerun (predictor and scheduler state is rebuilt
//! fresh per run).
//!
//! ```
//! use predictsim_experiments::scenario::Scenario;
//! use predictsim_experiments::source::SyntheticSource;
//! use predictsim_workload::WorkloadSpec;
//!
//! let mut scenario = Scenario::builder()
//!     .workload(SyntheticSource::new(WorkloadSpec::toy(), 42))
//!     .scheduler("easy-sjbf")
//!     .predictor("ml:u=lin,o=sq,g=area")
//!     .correction("incremental")
//!     .build()
//!     .unwrap();
//! let result = scenario.run().unwrap();
//! assert_eq!(result.outcomes.len(), 2000);
//! println!("AVEbsld = {:.1}", result.ave_bsld());
//! ```
//!
//! Everything in the experiment layer — the §6.2 campaign, the tables,
//! the figures, the ablations, and the `repro` binary — runs through
//! this API; `HeuristicTriple::run` is a thin veneer over it.

use std::cell::RefCell;

use predictsim_sim::observe::{NullObserver, SimObserver};
use predictsim_sim::scheduler::Scheduler;
use predictsim_sim::{
    simulate_in, ArenaStats, ClusterSpec, Job, SimArena, SimConfig, SimError, SimResult,
};

use crate::registry::RegistryError;
use crate::source::{LoadedWorkload, SourceError, WorkloadSource};
use crate::triple::{CorrectionKind, HeuristicTriple, PredictionTechnique, Variant};

/// Per-worker scratch kept across the simulations a pool worker
/// executes: the engine's [`SimArena`] plus one reusable scheduler
/// instance per variant (schedulers decide each pass from the context
/// alone — see [`Scheduler::schedule_into`] — so reusing an instance
/// reuses its warm scratch buffers without carrying any decision state
/// between runs). Predictors and corrections hold *learning* state and
/// are always rebuilt fresh.
#[derive(Default)]
struct WorkerScratch {
    sim: SimArena,
    schedulers: Vec<(Variant, Box<dyn Scheduler + Send>)>,
}

/// The cached scheduler instance for `variant`, building (and caching)
/// one on first use. A free function over the vector so callers can
/// split-borrow the arena alongside it.
fn scheduler_for(
    schedulers: &mut Vec<(Variant, Box<dyn Scheduler + Send>)>,
    variant: Variant,
) -> &mut (dyn Scheduler + Send) {
    let index = match schedulers.iter().position(|(v, _)| *v == variant) {
        Some(i) => i,
        None => {
            schedulers.push((variant, variant.build()));
            schedulers.len() - 1
        }
    };
    schedulers[index].1.as_mut()
}

thread_local! {
    /// One [`WorkerScratch`] per OS thread. Pool workers process many
    /// simulations per bulk operation (and with `--threads 1`, the whole
    /// pipeline runs on one thread), so everything after the first run
    /// on each thread executes against warm buffers.
    static WORKER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// Runs `triple` on `jobs` against the calling thread's
/// [`WorkerScratch`] with an explicit observer — the shared engine-call
/// seam behind [`Scenario::run_on`] and the `--prune` sweep (which
/// needs to read its observer back after an abort, so it cannot hand it
/// to a `Scenario`).
pub(crate) fn run_triple_with_scratch(
    triple: &HeuristicTriple,
    jobs: &[Job],
    config: SimConfig,
    observer: &mut dyn SimObserver,
) -> Result<SimResult, SimError> {
    let mut predictor = triple.prediction.build();
    let correction = triple.correction.as_ref().map(|c| c.build());
    let variant = triple.variant;
    let mut run = |scratch: &mut WorkerScratch| {
        let WorkerScratch { sim, schedulers } = scratch;
        simulate_in(
            sim,
            jobs,
            config,
            scheduler_for(schedulers, variant),
            predictor.as_mut(),
            correction
                .as_deref()
                .map(|c| c as &dyn predictsim_sim::CorrectionPolicy),
            observer,
        )
    };
    WORKER_SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
        Ok(mut scratch) => run(&mut scratch),
        // Reentrant call (an observer running a nested scenario): fall
        // back to cold buffers rather than panicking.
        Err(_) => run(&mut WorkerScratch::default()),
    })
}

/// The calling thread's cross-simulation scratch accounting (see
/// [`ArenaStats`]): how many simulations this thread has run through its
/// reusable arena, and how many of them grew any buffer.
pub fn thread_arena_stats() -> ArenaStats {
    WORKER_SCRATCH.with(|s| s.borrow().sim.stats())
}

/// Resets the calling thread's [`thread_arena_stats`] accounting
/// (buffers stay warm).
pub fn reset_thread_arena_stats() {
    WORKER_SCRATCH.with(|s| s.borrow_mut().sim.reset_stats());
}

/// Why a scenario could not be built or run.
#[derive(Debug)]
pub enum ScenarioError {
    /// A policy name did not resolve against the registry.
    Registry(RegistryError),
    /// The workload source failed to load.
    Source(SourceError),
    /// The builder was finalized without a workload.
    MissingWorkload,
    /// The simulation itself rejected the workload or a policy misbehaved.
    Sim(SimError),
    /// A worker panicked while simulating the cell and every bounded
    /// retry panicked too (a genuinely poisoned cell). The payload is
    /// the final panic message. Isolation — not an engine error: the
    /// panic was caught, the cache lease withdrawn, and coalesced
    /// waiters released before this surfaced.
    CellPanicked(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Registry(e) => write!(f, "{e}"),
            ScenarioError::Source(e) => write!(f, "{e}"),
            ScenarioError::MissingWorkload => {
                write!(
                    f,
                    "scenario has no workload: call .workload(..) before .build()"
                )
            }
            ScenarioError::Sim(e) => write!(f, "{e}"),
            ScenarioError::CellPanicked(msg) => {
                write!(f, "cell simulation panicked (all retries): {msg}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<RegistryError> for ScenarioError {
    fn from(e: RegistryError) -> Self {
        ScenarioError::Registry(e)
    }
}

impl From<SourceError> for ScenarioError {
    fn from(e: SourceError) -> Self {
        ScenarioError::Source(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

/// A policy field that may be given by registry name or by typed value;
/// names resolve at [`ScenarioBuilder::build`] time.
#[derive(Debug, Clone)]
enum Spec<T> {
    Named(String),
    Typed(T),
}

/// Fluent constructor for [`Scenario`]s — see the module docs.
#[derive(Default)]
pub struct ScenarioBuilder {
    workload: Option<Box<dyn WorkloadSource + Send>>,
    scheduler: Option<Spec<Variant>>,
    predictor: Option<Spec<PredictionTechnique>>,
    correction: Option<Spec<CorrectionKind>>,
    cluster: Option<Spec<ClusterSpec>>,
    observer: Option<Box<dyn SimObserver + Send>>,
}

impl ScenarioBuilder {
    /// Sets the workload source (synthetic spec, SWF log, or an already
    /// loaded workload).
    pub fn workload(mut self, source: impl WorkloadSource + Send + 'static) -> Self {
        self.workload = Some(Box::new(source));
        self
    }

    /// Selects the scheduler by registry name (e.g. `"easy-sjbf"`).
    pub fn scheduler(mut self, name: &str) -> Self {
        self.scheduler = Some(Spec::Named(name.to_string()));
        self
    }

    /// Selects the scheduler by typed value.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.scheduler = Some(Spec::Typed(variant));
        self
    }

    /// Selects the prediction technique by registry name (e.g. `"ave2"`,
    /// `"ml:u=lin,o=sq,g=area"`).
    pub fn predictor(mut self, name: &str) -> Self {
        self.predictor = Some(Spec::Named(name.to_string()));
        self
    }

    /// Selects the prediction technique by typed value.
    pub fn prediction(mut self, prediction: PredictionTechnique) -> Self {
        self.predictor = Some(Spec::Typed(prediction));
        self
    }

    /// Selects the correction mechanism by registry name
    /// (e.g. `"incremental"`). Omit for techniques that never
    /// under-predict.
    pub fn correction(mut self, name: &str) -> Self {
        self.correction = Some(Spec::Named(name.to_string()));
        self
    }

    /// Selects the correction mechanism by typed value.
    pub fn correction_kind(mut self, kind: CorrectionKind) -> Self {
        self.correction = Some(Spec::Typed(kind));
        self
    }

    /// Places the workload on an explicit cluster, given as a spec
    /// string — the legacy `"64"` shorthand or the
    /// `"cluster:64x1+32x0.5"` grammar (see
    /// [`crate::registry::parse_cluster`]). Omit to run on the
    /// workload's own single homogeneous machine.
    pub fn cluster(mut self, spec: &str) -> Self {
        self.cluster = Some(Spec::Named(spec.to_string()));
        self
    }

    /// Places the workload on an explicit cluster by typed value.
    pub fn cluster_spec(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(Spec::Typed(cluster));
        self
    }

    /// Sets the whole policy triple at once (scheduler, predictor, and
    /// correction taken from `triple`).
    pub fn triple(mut self, triple: &HeuristicTriple) -> Self {
        self.scheduler = Some(Spec::Typed(triple.variant));
        self.predictor = Some(Spec::Typed(triple.prediction.clone()));
        self.correction = triple.correction.map(Spec::Typed);
        self
    }

    /// Installs a per-event observer (see `predictsim_sim::observe`).
    /// Use `MetricsObserver::shared()` to keep a readable handle. When
    /// the observer needs workload facts unknown until load time (e.g.
    /// the machine size of an SWF log), build first, then
    /// [`Scenario::load_workload`] and [`Scenario::set_observer`].
    pub fn observer(mut self, observer: Box<dyn SimObserver + Send>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Resolves every registry name and finalizes the scenario.
    ///
    /// Unset policies default to the standard EASY configuration:
    /// scheduler `easy`, predictor `requested`, no correction.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let workload = self.workload.ok_or(ScenarioError::MissingWorkload)?;
        let variant = match self.scheduler {
            None => Variant::Easy,
            Some(Spec::Typed(v)) => v,
            Some(Spec::Named(name)) => name.parse()?,
        };
        let prediction = match self.predictor {
            None => PredictionTechnique::RequestedTime,
            Some(Spec::Typed(p)) => p,
            Some(Spec::Named(name)) => name.parse()?,
        };
        let correction = match self.correction {
            None => None,
            Some(Spec::Typed(c)) => Some(c),
            Some(Spec::Named(name)) => Some(name.parse()?),
        };
        let cluster = match self.cluster {
            None => None,
            Some(Spec::Typed(c)) => Some(c),
            Some(Spec::Named(name)) => Some(crate::registry::parse_cluster(&name)?),
        };
        Ok(Scenario {
            workload: Some(workload),
            triple: HeuristicTriple {
                prediction,
                correction,
                variant,
            },
            cluster,
            observer: self.observer,
        })
    }
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("workload", &self.workload.as_ref().map(|w| w.describe()))
            .field("scheduler", &self.scheduler)
            .field("predictor", &self.predictor)
            .field("correction", &self.correction)
            .field("cluster", &self.cluster)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// A runnable scenario: workload × policy triple × observer.
pub struct Scenario {
    workload: Option<Box<dyn WorkloadSource + Send>>,
    triple: HeuristicTriple,
    cluster: Option<ClusterSpec>,
    observer: Option<Box<dyn SimObserver + Send>>,
}

impl Scenario {
    /// Starts a fresh builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// A workload-less scenario carrying only the policy triple; run it
    /// with [`Scenario::run_on`] against externally managed jobs (the
    /// campaign runner shares one workload across 128 of these).
    pub fn from_triple(triple: &HeuristicTriple) -> Self {
        Self {
            workload: None,
            triple: triple.clone(),
            cluster: None,
            observer: None,
        }
    }

    /// The resolved policy triple.
    pub fn triple(&self) -> &HeuristicTriple {
        &self.triple
    }

    /// The cluster override, if one was set (`None` runs on the
    /// workload's own single homogeneous machine).
    pub fn cluster(&self) -> Option<ClusterSpec> {
        self.cluster
    }

    /// The campaign-style display name, e.g.
    /// `"ml(u=lin,o=sq,g=area)+incremental+easy-sjbf"`.
    pub fn name(&self) -> String {
        self.triple.name()
    }

    /// Installs or replaces the per-event observer after build time —
    /// typically once [`Scenario::load_workload`] has revealed the
    /// machine size an observer such as
    /// `predictsim_sim::MetricsObserver` needs.
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver + Send>) {
        self.observer = Some(observer);
    }

    /// Loads the workload source without simulating (to inspect cleaning
    /// reports or job counts).
    pub fn load_workload(&self) -> Result<LoadedWorkload, ScenarioError> {
        self.workload
            .as_ref()
            .ok_or(ScenarioError::MissingWorkload)?
            .load()
            .map_err(ScenarioError::from)
    }

    /// Loads the workload and runs the simulation, reporting events to
    /// the installed observer (if any). Policies are rebuilt fresh, so
    /// repeated runs are independent and deterministic.
    pub fn run(&mut self) -> Result<SimResult, ScenarioError> {
        let loaded = self.load_workload()?;
        let config = match self.cluster {
            Some(cluster) => SimConfig { cluster },
            None => loaded.sim_config(),
        };
        self.run_on(&loaded.jobs, config)
    }

    /// Runs the policy triple on externally managed jobs (already
    /// validated, submit-ordered, densely numbered).
    ///
    /// Runs execute against the calling thread's [`WorkerScratch`] — the
    /// engine arena and the scheduler's scratch buffers are reused
    /// across simulations (behavior-identical: only capacity survives a
    /// run, never state), which is what lets a campaign worker simulate
    /// hundreds of triples while allocating ~nothing after warm-up.
    pub fn run_on(&mut self, jobs: &[Job], config: SimConfig) -> Result<SimResult, ScenarioError> {
        let mut null = NullObserver;
        let observer: &mut dyn SimObserver = match self.observer.as_mut() {
            Some(o) => o.as_mut(),
            None => &mut null,
        };
        run_triple_with_scratch(&self.triple, jobs, config, observer).map_err(ScenarioError::from)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("workload", &self.workload.as_ref().map(|w| w.describe()))
            .field("triple", &self.triple.name())
            .field("cluster", &self.cluster)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use predictsim_sim::observe::MetricsObserver;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 250;
        spec.duration = 3 * 86_400;
        spec
    }

    #[test]
    fn builder_matches_legacy_triple_run() {
        let w = generate(&tiny_spec(), 7);
        let legacy = HeuristicTriple::paper_winner()
            .run(&w.jobs, w.sim_config())
            .unwrap();
        let via_builder = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 7))
            .scheduler("easy-sjbf")
            .predictor("ml(u=lin,o=sq,g=area)")
            .correction("incremental")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            legacy, via_builder,
            "scenario path must be behavior-preserving"
        );
    }

    #[test]
    fn defaults_are_standard_easy() {
        let mut scenario = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 9))
            .build()
            .unwrap();
        assert_eq!(scenario.name(), "requested+easy");
        let result = scenario.run().unwrap();
        let w = generate(&tiny_spec(), 9);
        let legacy = HeuristicTriple::standard_easy()
            .run(&w.jobs, w.sim_config())
            .unwrap();
        assert_eq!(result, legacy);
    }

    #[test]
    fn unknown_policy_names_fail_at_build_time() {
        let err = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 1))
            .scheduler("round-robin")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Registry(RegistryError::UnknownScheduler(_))
        ));
        let err = Scenario::builder().build().unwrap_err();
        assert!(matches!(err, ScenarioError::MissingWorkload));
    }

    #[test]
    fn observer_receives_the_run() {
        let (metrics, observer) = MetricsObserver::shared(64);
        let mut scenario = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 3))
            .scheduler("easy")
            .predictor("ave2")
            .correction("incremental")
            .observer(observer)
            .build()
            .unwrap();
        let result = scenario.run().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.finished(), result.outcomes.len());
        assert!((snap.ave_bsld() - result.ave_bsld()).abs() < 1e-9);
        assert_eq!(snap.corrections(), result.total_corrections());
    }

    #[test]
    fn observer_can_be_installed_after_load() {
        // The SWF/MetricsObserver pattern: the machine size is only
        // known after loading, so the observer is installed post-build.
        let mut scenario = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 3))
            .scheduler("easy")
            .predictor("ave2")
            .correction("incremental")
            .build()
            .unwrap();
        let workload = scenario.load_workload().unwrap();
        let (metrics, observer) = MetricsObserver::shared(workload.machine_size);
        scenario.set_observer(observer);
        let result = scenario
            .run_on(&workload.jobs, workload.sim_config())
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.finished(), result.outcomes.len());
        assert!((snap.utilization() - result.utilization()).abs() < 1e-9);
    }

    #[test]
    fn rerunning_a_scenario_is_deterministic() {
        let mut scenario = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 5))
            .scheduler("easy-sjbf")
            .predictor("ml:u=sq,o=sq,g=q/p")
            .correction("req-time")
            .build()
            .unwrap();
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(a, b, "policy state must be rebuilt per run");
    }

    #[test]
    fn typed_setters_mirror_names() {
        let mut by_name = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 6))
            .scheduler("conservative")
            .predictor("clairvoyant")
            .build()
            .unwrap();
        let mut typed = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 6))
            .variant(Variant::Conservative)
            .prediction(PredictionTechnique::Clairvoyant)
            .build()
            .unwrap();
        assert_eq!(by_name.name(), typed.name());
        assert_eq!(by_name.run().unwrap(), typed.run().unwrap());
    }

    #[test]
    fn explicit_legacy_cluster_is_byte_identical_to_default() {
        // `--cluster 64` on a 64-processor workload must be the exact
        // legacy single-machine run, byte for byte.
        let mut plain = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 13))
            .scheduler("easy-sjbf")
            .predictor("ave2")
            .correction("incremental")
            .build()
            .unwrap();
        let mut pinned = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 13))
            .scheduler("easy-sjbf")
            .predictor("ave2")
            .correction("incremental")
            .cluster("64")
            .build()
            .unwrap();
        assert_eq!(
            pinned.cluster(),
            Some(predictsim_sim::ClusterSpec::single(64))
        );
        assert_eq!(plain.run().unwrap(), pinned.run().unwrap());
    }

    #[test]
    fn heterogeneous_cluster_runs_and_places_on_both_partitions() {
        let mut scenario = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 17))
            .scheduler("easy-sjbf")
            .predictor("requested")
            .cluster("cluster:64x1+32x0.5")
            .build()
            .unwrap();
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(a, b, "hetero runs must be deterministic");
        assert_eq!(a.machine_size, 96, "total processors across partitions");
        assert!(a.outcomes.iter().all(|o| o.partition <= 1));
        assert!(
            a.outcomes.iter().any(|o| o.partition == 1),
            "a loaded toy workload must spill onto the second partition"
        );
    }

    #[test]
    fn malformed_cluster_fails_at_build_time() {
        let err = Scenario::builder()
            .workload(SyntheticSource::new(tiny_spec(), 1))
            .cluster("cluster:8xturbo")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Registry(RegistryError::MalformedCluster { .. })
        ));
    }

    #[test]
    fn from_triple_runs_on_shared_jobs() {
        let w = generate(&tiny_spec(), 8);
        let triple = HeuristicTriple::easy_plus_plus();
        let mut scenario = Scenario::from_triple(&triple);
        let via_scenario = scenario.run_on(&w.jobs, w.sim_config()).unwrap();
        let legacy = triple.run(&w.jobs, w.sim_config()).unwrap();
        assert_eq!(via_scenario, legacy);
        assert!(matches!(
            scenario.run().unwrap_err(),
            ScenarioError::MissingWorkload
        ));
    }
}
