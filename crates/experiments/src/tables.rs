//! Regenerators for the paper's tables.
//!
//! Each function computes the same rows the paper reports and renders
//! them as a markdown table. Absolute values differ from the paper (the
//! workloads are synthetic stand-ins — DESIGN.md §3); the *shape* claims
//! are what EXPERIMENTS.md tracks.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::SimCache;
use crate::campaign::CampaignResult;
use crate::cv::{cross_validate, CvOutcome};
use crate::source::LoadedWorkload;
use crate::triple::{HeuristicTriple, PredictionTechnique, Variant};

/// One row of Table 1: EASY vs EASY-Clairvoyant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Log name.
    pub log: String,
    /// AVEbsld of EASY with user-requested times.
    pub easy: f64,
    /// AVEbsld of EASY with exact running times.
    pub clairvoyant: f64,
}

impl Table1Row {
    /// "Values between parentheses show the corresponding decrease."
    pub fn decrease_percent(&self) -> f64 {
        100.0 * (1.0 - self.clairvoyant / self.easy)
    }
}

/// Table 1: the motivation experiment (§2.2) — perfect information
/// improves EASY on every log.
///
/// The per-log pairs of simulations are independent and fan out in
/// parallel; both cells per log are campaign cells, so they route
/// through the process-wide [`SimCache`] (a later campaign reuses them,
/// and vice versa).
pub fn table1(workloads: &[LoadedWorkload]) -> Vec<Table1Row> {
    let cache = SimCache::global();
    let progress = crate::progress::CellProgress::new("table1", workloads.len() * 2);
    workloads
        .par_iter()
        .map(|w| {
            let cell = |triple: &HeuristicTriple| {
                let started = crate::progress::start();
                let (cell, source) = cache
                    .run_cell_traced(
                        &w.jobs,
                        predictsim_sim::ClusterSpec::single(w.machine_size),
                        triple,
                    )
                    .expect("table 1 simulation failed");
                progress.cell_done(&format!("{} {}", w.name, triple.name()), source, started);
                cell.result.ave_bsld
            };
            Table1Row {
                log: w.name.clone(),
                easy: cell(&HeuristicTriple::standard_easy()),
                clairvoyant: cell(&HeuristicTriple::clairvoyant(Variant::Easy)),
            }
        })
        .collect()
}

/// Renders Table 1 as markdown.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("| Log | EASY | EASY-Clairvoyant |\n|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} ({:.0}%) |\n",
            r.log,
            r.easy,
            r.clairvoyant,
            r.decrease_percent()
        ));
    }
    let mean: f64 =
        rows.iter().map(Table1Row::decrease_percent).sum::<f64>() / rows.len().max(1) as f64;
    out.push_str(&format!("\nMean decrease: {mean:.0}%\n"));
    out
}

/// One row of Table 6: the AVEbsld overview per log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Log name.
    pub log: String,
    /// Clairvoyant EASY (FCFS backfill order).
    pub clairvoyant_fcfs: f64,
    /// Clairvoyant EASY-SJBF.
    pub clairvoyant_sjbf: f64,
    /// Standard EASY.
    pub easy: f64,
    /// EASY++.
    pub easy_pp: f64,
    /// Best and worst learning triple under the EASY variant.
    pub learning_fcfs: (f64, f64),
    /// Best and worst learning triple under EASY-SJBF.
    pub learning_sjbf: (f64, f64),
}

/// Table 6 from per-log campaign results (which must include the
/// clairvoyant references — see
/// [`crate::triple::reference_triples`]).
pub fn table6(campaigns: &[CampaignResult]) -> Vec<Table6Row> {
    campaigns
        .iter()
        .map(|c| {
            let is_ml = |r: &crate::campaign::TripleResult| r.predictor.starts_with("ml(");
            let ml_fcfs_best = c
                .best_where(|r| is_ml(r) && r.variant == "easy")
                .expect("campaign lacks ML results")
                .ave_bsld;
            let ml_fcfs_worst = c
                .worst_where(|r| is_ml(r) && r.variant == "easy")
                .expect("campaign lacks ML results")
                .ave_bsld;
            let ml_sjbf_best = c
                .best_where(|r| is_ml(r) && r.variant == "easy-sjbf")
                .expect("campaign lacks ML results")
                .ave_bsld;
            let ml_sjbf_worst = c
                .worst_where(|r| is_ml(r) && r.variant == "easy-sjbf")
                .expect("campaign lacks ML results")
                .ave_bsld;
            Table6Row {
                log: c.log.clone(),
                clairvoyant_fcfs: c.bsld_of("clairvoyant+easy"),
                clairvoyant_sjbf: c.bsld_of("clairvoyant+easy-sjbf"),
                easy: c.bsld_of(&HeuristicTriple::standard_easy().name()),
                easy_pp: c.bsld_of(&HeuristicTriple::easy_plus_plus().name()),
                learning_fcfs: (ml_fcfs_best, ml_fcfs_worst),
                learning_sjbf: (ml_sjbf_best, ml_sjbf_worst),
            }
        })
        .collect()
}

/// Renders Table 6 as markdown (same columns as the paper).
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = String::from(
        "| Trace | Clairv. FCFS | Clairv. SJBF | EASY | EASY++ | Learning FCFS (best–worst) | Learning SJBF (best–worst) |\n|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} – {:.1} | {:.1} – {:.1} |\n",
            r.log,
            r.clairvoyant_fcfs,
            r.clairvoyant_sjbf,
            r.easy,
            r.easy_pp,
            r.learning_fcfs.0,
            r.learning_fcfs.1,
            r.learning_sjbf.0,
            r.learning_sjbf.1,
        ));
    }
    out
}

/// Table 7: cross-validated triple selection (delegates to
/// [`crate::cv::cross_validate`]).
pub fn table7(campaigns: &[CampaignResult]) -> CvOutcome {
    cross_validate(campaigns)
}

/// Renders Table 7 as markdown.
pub fn render_table7(outcome: &CvOutcome) -> String {
    let mut out = String::from(
        "| Log | C-V triple AVEbsld | EASY | EASY++ | selected triple |\n|---|---|---|---|---|\n",
    );
    for r in &outcome.rows {
        out.push_str(&format!(
            "| {} | {:.1} ({:.0}%) | {:.1} | {:.1} ({:.0}%) | {} |\n",
            r.log,
            r.cv_bsld,
            r.reduction_vs_easy(),
            r.easy_bsld,
            r.easy_pp_bsld,
            r.easypp_reduction_vs_easy(),
            r.selected_triple,
        ));
    }
    out.push_str(&format!(
        "\nGlobal winner (all logs vote): **{}**\nMean AVEbsld reduction vs EASY: {:.0}% (max {:.0}%); vs EASY++: {:.0}%\n",
        outcome.global_winner,
        outcome.mean_reduction_vs_easy(),
        outcome.max_reduction_vs_easy(),
        outcome.mean_reduction_vs_easypp(),
    ));
    out
}

/// Table 8: MAE vs mean E-Loss for AVE₂ and the E-Loss learner (§6.4),
/// measured on one log (the paper uses Curie).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table8Row {
    /// Prediction technique name.
    pub technique: String,
    /// Mean absolute prediction error, seconds.
    pub mae: f64,
    /// Mean E-Loss (Eq. 3) of the predictions.
    pub mean_eloss: f64,
}

/// Computes Table 8 on `workload` by replaying the EASY-SJBF +
/// Incremental triple with each prediction technique (both simulations
/// in parallel). Both cells belong to the §6.2 campaign grid, so a
/// preceding campaign on the same workload makes this a pure cache
/// read.
pub fn table8(workload: &LoadedWorkload) -> Vec<Table8Row> {
    let cache = SimCache::global();
    let progress = crate::progress::CellProgress::new("table8", 2);
    [
        (
            "AVE2(k)",
            HeuristicTriple {
                prediction: PredictionTechnique::Ave2,
                correction: Some(crate::triple::CorrectionKind::Incremental),
                variant: Variant::EasySjbf,
            },
        ),
        ("E-Loss learning", HeuristicTriple::paper_winner()),
    ]
    .into_par_iter()
    .map(|(label, triple)| {
        let started = crate::progress::start();
        let (cell, source) = cache
            .run_cell_traced(
                &workload.jobs,
                predictsim_sim::ClusterSpec::single(workload.machine_size),
                &triple,
            )
            .expect("table 8 simulation failed");
        progress.cell_done(&triple.name(), source, started);
        Table8Row {
            technique: label.to_string(),
            mae: cell.result.mae,
            mean_eloss: cell.result.mean_eloss,
        }
    })
    .collect()
}

/// Renders Table 8 as markdown.
pub fn render_table8(rows: &[Table8Row]) -> String {
    let mut out = String::from("| Prediction Technique | MAE (s) | Mean E-Loss |\n|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.0} | {:.3e} |\n",
            r.technique, r.mae, r.mean_eloss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentSetup;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny() -> LoadedWorkload {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 400;
        spec.duration = 4 * 86_400;
        generate(&spec, 5).into()
    }

    #[test]
    fn table1_decrease_math() {
        let row = Table1Row {
            log: "X".into(),
            easy: 100.0,
            clairvoyant: 75.0,
        };
        assert!((row.decrease_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn table1_runs_on_workloads() {
        let w = tiny();
        let rows = table1(std::slice::from_ref(&w));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].easy >= 1.0);
        assert!(rows[0].clairvoyant >= 1.0);
        let md = render_table1(&rows);
        assert!(md.contains("| Log |"));
        assert!(md.contains("toy"));
    }

    #[test]
    fn table8_shape_holds_on_tiny_log() {
        // The headline §6.4 claim: AVE2 has the better MAE but a much
        // worse (orders of magnitude) mean E-Loss.
        let w = tiny();
        let rows = table8(&w);
        assert_eq!(rows.len(), 2);
        let ave2 = &rows[0];
        let eloss = &rows[1];
        assert!(
            eloss.mean_eloss < ave2.mean_eloss,
            "E-Loss learner must win on the E-Loss metric: {} vs {}",
            eloss.mean_eloss,
            ave2.mean_eloss
        );
        let md = render_table8(&rows);
        assert!(md.contains("AVE2"));
    }

    #[test]
    fn setup_can_build_a_quick_workload_set() {
        // Smoke-check the context plumbing used by the repro binary.
        let setup = ExperimentSetup {
            scale: 0.002,
            seed: 3,
        };
        let ws = setup.workloads();
        assert_eq!(ws.len(), 6);
    }
}
