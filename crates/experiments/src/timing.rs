//! Wall-clock accounting for `repro --timing`: per-phase timers plus
//! the machinery that records the rendered table into `EXPERIMENTS.md`
//! between stable markers (so repeated runs replace, not append).

use std::time::Instant;

/// Marker opening the generated timing section in `EXPERIMENTS.md`.
pub const TIMING_BEGIN: &str = "<!-- repro:timing:begin -->";
/// Marker closing the generated timing section in `EXPERIMENTS.md`.
pub const TIMING_END: &str = "<!-- repro:timing:end -->";
/// Marker opening the generated pool-width scaling table in
/// `EXPERIMENTS.md` (written by the `parallel_scaling` bench under
/// `RECORD_SCALING=<path>`).
pub const SCALING_BEGIN: &str = "<!-- repro:scaling:begin -->";
/// Marker closing the generated scaling table in `EXPERIMENTS.md`.
pub const SCALING_END: &str = "<!-- repro:scaling:end -->";

/// Accumulates named phase durations for one `repro` run.
#[derive(Debug)]
pub struct PhaseTimer {
    started: Instant,
    phases: Vec<(String, f64)>,
    notes: Vec<String>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Starts the run clock.
    pub fn new() -> Self {
        PhaseTimer {
            started: Instant::now(),
            phases: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Runs `f`, recording its wall-clock under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let result = f();
        self.phases
            .push((name.to_string(), t0.elapsed().as_secs_f64()));
        result
    }

    /// Records an externally measured duration (sub-phase rows, e.g. the
    /// per-log breakdown of the campaigns phase).
    pub fn record(&mut self, name: &str, secs: f64) {
        self.phases.push((name.to_string(), secs));
    }

    /// Appends a free-form annotation rendered after the timing table
    /// (cache-effectiveness counts and the like).
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// The recorded `(phase, seconds)` pairs, in execution order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Seconds since the timer was created.
    pub fn total(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Renders the timing section recorded into `EXPERIMENTS.md`:
    /// a heading, the run configuration (including which experiments
    /// ran, so a partial run can never masquerade as a full one), and
    /// one row per phase.
    pub fn render_markdown(
        &self,
        scale: f64,
        seed: u64,
        threads: usize,
        experiments: &str,
    ) -> String {
        let mut out = format!(
            "## Timing (`repro --timing`)\n\n\
             Configuration: scale {scale}, seed {seed}, {threads} pool thread{}, \
             experiments: {experiments}.\n\n\
             | phase | wall-clock (s) |\n|---|---|\n",
            if threads == 1 { "" } else { "s" },
        );
        for (name, secs) in &self.phases {
            out.push_str(&format!("| {name} | {secs:.2} |\n"));
        }
        out.push_str(&format!("| **total** | **{:.2}** |\n", self.total()));
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("- {note}\n"));
            }
        }
        out
    }
}

/// Replaces the section of `document` delimited by the `begin`/`end`
/// marker pair with `section` (appending markers and section at the end
/// when absent). Pure string surgery so it is directly testable; each
/// marker pair owns its own region, so the timing table and the scaling
/// table can coexist in one file and be refreshed independently.
pub fn splice_between(document: &str, begin: &str, end: &str, section: &str) -> String {
    let block = format!("{begin}\n{section}{end}");
    match (document.find(begin), document.find(end)) {
        (Some(b), Some(e)) if e >= b => {
            let after = e + end.len();
            format!("{}{}{}", &document[..b], block, &document[after..])
        }
        _ => {
            let sep = if document.ends_with('\n') {
                "\n"
            } else {
                "\n\n"
            };
            format!("{document}{sep}{block}\n")
        }
    }
}

/// Replaces the marked timing section of `document` with `section`.
pub fn splice_timing_section(document: &str, section: &str) -> String {
    splice_between(document, TIMING_BEGIN, TIMING_END, section)
}

/// Rewrites `path` with its `begin`/`end`-marked section replaced by
/// `section`.
pub fn record_section(
    path: &std::path::Path,
    begin: &str,
    end: &str,
    section: &str,
) -> std::io::Result<()> {
    let document = std::fs::read_to_string(path)?;
    std::fs::write(path, splice_between(&document, begin, end, section))
}

/// Rewrites `path` with its timing section replaced by `section`.
pub fn record_timing(path: &std::path::Path, section: &str) -> std::io::Result<()> {
    record_section(path, TIMING_BEGIN, TIMING_END, section)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_phases_in_order() {
        let mut t = PhaseTimer::new();
        let x = t.time("alpha", || 2 + 2);
        assert_eq!(x, 4);
        t.time("beta", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert!(t.phases()[1].1 > 0.0);
        assert!(t.total() >= t.phases()[1].1);
    }

    #[test]
    fn render_contains_config_and_rows() {
        let mut t = PhaseTimer::new();
        t.time("campaigns", || ());
        let md = t.render_markdown(0.05, 20150101, 8, "all");
        assert!(md.contains("scale 0.05, seed 20150101, 8 pool threads"));
        assert!(md.contains("experiments: all"));
        assert!(md.contains("| campaigns |"));
        assert!(md.contains("**total**"));
    }

    #[test]
    fn splice_appends_when_absent_then_replaces() {
        let doc = "# EXPERIMENTS\n\nbody\n";
        let first = splice_timing_section(doc, "SECTION-A\n");
        assert!(first.contains("body"));
        assert!(first.contains("SECTION-A"));
        assert_eq!(first.matches(TIMING_BEGIN).count(), 1);

        let second = splice_timing_section(&first, "SECTION-B\n");
        assert!(
            !second.contains("SECTION-A"),
            "old section must be replaced"
        );
        assert!(second.contains("SECTION-B"));
        assert_eq!(second.matches(TIMING_BEGIN).count(), 1);
        assert!(second.contains("body"), "surrounding document is preserved");
    }

    #[test]
    fn marker_pairs_are_independent_regions() {
        // The timing and scaling sections live in the same document;
        // refreshing one must never clobber the other.
        let doc = "# EXPERIMENTS\n\nbody\n";
        let with_timing = splice_timing_section(doc, "TIMING-A\n");
        let both = splice_between(&with_timing, SCALING_BEGIN, SCALING_END, "SCALING-A\n");
        assert!(both.contains("TIMING-A") && both.contains("SCALING-A"));

        let timing_refreshed = splice_timing_section(&both, "TIMING-B\n");
        assert!(timing_refreshed.contains("TIMING-B"));
        assert!(!timing_refreshed.contains("TIMING-A"));
        assert!(
            timing_refreshed.contains("SCALING-A"),
            "scaling section must survive a timing refresh"
        );

        let scaling_refreshed =
            splice_between(&timing_refreshed, SCALING_BEGIN, SCALING_END, "SCALING-B\n");
        assert!(scaling_refreshed.contains("SCALING-B"));
        assert!(!scaling_refreshed.contains("SCALING-A"));
        assert!(scaling_refreshed.contains("TIMING-B"));
    }

    #[test]
    fn splice_tolerates_markers_with_surrounding_edits() {
        let doc = format!("head\n{TIMING_BEGIN}\nstale\n{TIMING_END}\ntail\n");
        let out = splice_timing_section(&doc, "fresh\n");
        assert!(out.starts_with("head\n"));
        assert!(out.ends_with("tail\n"));
        assert!(out.contains("fresh"));
        assert!(!out.contains("stale"));
    }
}
