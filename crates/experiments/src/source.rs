//! Unified workload sources: synthetic generation and real SWF logs.
//!
//! Everything downstream of the engine consumes a [`LoadedWorkload`] — a
//! validated, submit-ordered, densely numbered job vector plus the
//! machine size to simulate on. A [`WorkloadSource`] is anything that can
//! produce one:
//!
//! * [`SyntheticSource`] wraps `predictsim_workload::generate` (the
//!   Table 4 synthetic stand-ins, or any custom [`WorkloadSpec`]);
//! * [`SwfSource`] reads a Standard Workload Format log — from a file or
//!   from in-memory text — through `predictsim_swf`'s parser, applies the
//!   cleaning conventions, and converts the records into engine jobs;
//! * an already-generated [`GeneratedWorkload`] or [`LoadedWorkload`] is
//!   itself a source (trivially).
//!
//! The [`crate::scenario::Scenario`] builder accepts any of these behind
//! one `.workload(..)` call, which is what lets the same campaign run on
//! a synthetic log one day and a Parallel Workloads Archive trace the
//! next — the ROADMAP's "real SWF logs" loader path.

use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use predictsim_sim::job::JobConversionError;
use predictsim_sim::{intern_users, job_from_swf, jobs_from_swf, Job, JobId, SimConfig};
use predictsim_swf::reader::ParseError;
use predictsim_swf::{clean, parse_log, CleaningReport, CleaningRules, SwfStream};
use predictsim_workload::{generate, GeneratedWorkload, WorkloadSpec};

/// Why a workload source failed to produce simulator-ready jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The backing file could not be read.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The SWF text did not parse.
    Parse(ParseError),
    /// The machine size is unknown (no `MaxProcs` header, no records,
    /// and no explicit override).
    UnknownMachineSize,
    /// A cleaned record still could not be converted into an engine job.
    Conversion(JobConversionError),
    /// The produced jobs failed structural validation.
    Invalid(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            SourceError::Parse(e) => write!(f, "{e}"),
            SourceError::UnknownMachineSize => write!(
                f,
                "machine size unknown: no MaxProcs header, no records, no override"
            ),
            SourceError::Conversion(e) => write!(f, "{e}"),
            SourceError::Invalid(message) => write!(f, "invalid workload: {message}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<ParseError> for SourceError {
    fn from(e: ParseError) -> Self {
        SourceError::Parse(e)
    }
}

impl From<JobConversionError> for SourceError {
    fn from(e: JobConversionError) -> Self {
        SourceError::Conversion(e)
    }
}

/// An immutable, shareable job vector with a content fingerprint.
///
/// The experiment layer fans one workload out to hundreds of
/// simulations (128 triples per log, re-read by cross-validation,
/// tables, figures and ablations). The arena makes that sharing free —
/// cloning is an `Arc` bump, never a copy of the jobs — and carries a
/// stable content [fingerprint](JobArena::fingerprint), computed once
/// per load, that keys the simulation cache
/// ([`crate::cache::SimCache`]) within and across processes.
///
/// Derefs to `[Job]`, so any `&[Job]` consumer takes `&arena`.
#[derive(Debug, Clone)]
pub struct JobArena {
    inner: Arc<ArenaInner>,
}

#[derive(Debug)]
struct ArenaInner {
    jobs: Vec<Job>,
    fingerprint: u64,
    user_count: u32,
}

impl JobArena {
    /// Takes ownership of `jobs`, fingerprinting them once.
    pub fn new(jobs: Vec<Job>) -> Self {
        let fingerprint = fingerprint_jobs(&jobs);
        let user_count = jobs.iter().map(|j| j.user_ix + 1).max().unwrap_or(0);
        Self {
            inner: Arc::new(ArenaInner {
                jobs,
                fingerprint,
                user_count,
            }),
        }
    }

    /// The jobs as a slice.
    pub fn jobs(&self) -> &[Job] {
        &self.inner.jobs
    }

    /// Number of distinct (interned) users: `user_ix` spans
    /// `0..user_count`. Sized once at arena construction so per-user
    /// slabs can be pre-allocated without scanning.
    pub fn user_count(&self) -> u32 {
        self.inner.user_count
    }

    /// A stable 64-bit content fingerprint (FNV-1a over every job
    /// field, in job order). Two arenas with equal fingerprints hold, up
    /// to hash collision, the same workload — the identity the
    /// simulation cache keys on. The encoding is fixed, so fingerprints
    /// are comparable across processes and platforms (the persistent
    /// `--cache` layer relies on this).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }
}

impl Deref for JobArena {
    type Target = [Job];

    fn deref(&self) -> &[Job] {
        &self.inner.jobs
    }
}

impl From<Vec<Job>> for JobArena {
    fn from(jobs: Vec<Job>) -> Self {
        Self::new(jobs)
    }
}

impl PartialEq for JobArena {
    fn eq(&self, other: &Self) -> bool {
        // Arc identity or fingerprint short-circuit; fall back to the
        // full comparison so equality stays exact under collisions.
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.fingerprint == other.inner.fingerprint
                && self.inner.jobs == other.inner.jobs)
    }
}

/// FNV-1a over a byte stream — the stable (cross-process,
/// cross-platform) hash behind workload fingerprints and the persistent
/// cache's file names.
pub(crate) fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.into_iter().fold(OFFSET, |hash, byte| {
        (hash ^ byte as u64).wrapping_mul(PRIME)
    })
}

/// [`fnv1a64`] over a canonical little-endian encoding of every job
/// field (length-prefixed).
fn fingerprint_jobs(jobs: &[Job]) -> u64 {
    let words = std::iter::once(jobs.len() as u64).chain(jobs.iter().flat_map(|job| {
        [
            job.id.0 as u64,
            job.submit.0 as u64,
            job.run as u64,
            job.requested as u64,
            job.procs as u64,
            job.user as u64,
            job.swf_id,
        ]
    }));
    fnv1a64(words.flat_map(u64::to_le_bytes))
}

/// How a workload was materialized — the perf-accounting side channel
/// for the streaming ingestion path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Whether the streaming (single-pass, no intermediate record
    /// vector) SWF path produced this workload.
    pub streamed: bool,
    /// SWF records held in an intermediate `Vec<SwfRecord>` before job
    /// conversion. `0` on the streaming path — records become engine
    /// jobs as they are parsed — and the full pre-clean record count on
    /// the buffered path.
    pub buffered_records: usize,
}

/// A simulator-ready workload, whatever it was loaded from.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedWorkload {
    /// Display name (log name or spec name).
    pub name: String,
    /// Machine size to simulate on.
    pub machine_size: u32,
    /// Jobs sorted by submission with dense ids `0..n`, in a shared
    /// fingerprinted arena (cloning a loaded workload never copies the
    /// jobs).
    pub jobs: JobArena,
    /// What cleaning did, when the workload came through the SWF path.
    pub cleaning: Option<CleaningReport>,
    /// How the jobs were materialized (streaming vs buffered).
    pub stats: LoadStats,
}

impl LoadedWorkload {
    /// The `SimConfig` for this workload's machine.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::single(self.machine_size)
    }
}

impl From<GeneratedWorkload> for LoadedWorkload {
    fn from(w: GeneratedWorkload) -> Self {
        Self {
            name: w.name,
            machine_size: w.machine_size,
            jobs: JobArena::new(w.jobs),
            cleaning: None,
            stats: LoadStats::default(),
        }
    }
}

impl From<&GeneratedWorkload> for LoadedWorkload {
    fn from(w: &GeneratedWorkload) -> Self {
        Self {
            name: w.name.clone(),
            machine_size: w.machine_size,
            jobs: JobArena::new(w.jobs.clone()),
            cleaning: None,
            stats: LoadStats::default(),
        }
    }
}

/// Anything that can produce a simulator-ready workload.
pub trait WorkloadSource {
    /// Loads (or copies) the workload.
    fn load(&self) -> Result<LoadedWorkload, SourceError>;

    /// One-line description for logs and error messages.
    fn describe(&self) -> String;
}

impl<T: WorkloadSource + ?Sized> WorkloadSource for Box<T> {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        (**self).load()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl WorkloadSource for LoadedWorkload {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        Ok(self.clone())
    }

    fn describe(&self) -> String {
        format!("loaded workload {} ({} jobs)", self.name, self.jobs.len())
    }
}

impl WorkloadSource for GeneratedWorkload {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        Ok(self.into())
    }

    fn describe(&self) -> String {
        format!(
            "generated workload {} ({} jobs)",
            self.name,
            self.jobs.len()
        )
    }
}

/// Synthetic workload generation as a source: a [`WorkloadSpec`] plus a
/// seed, deferred until [`WorkloadSource::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSource {
    /// The generating spec.
    pub spec: WorkloadSpec,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticSource {
    /// A source for `spec` at `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self { spec, seed }
    }
}

impl WorkloadSource for SyntheticSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        self.spec.validate().map_err(SourceError::Invalid)?;
        Ok(generate(&self.spec, self.seed).into())
    }

    fn describe(&self) -> String {
        format!(
            "synthetic {} ({} jobs, seed {})",
            self.spec.name, self.spec.jobs, self.seed
        )
    }
}

/// Where an [`SwfSource`] reads its text from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SwfInput {
    /// A file on disk.
    File(PathBuf),
    /// In-memory text under a display name (fixtures, tests, pipes).
    Text {
        /// Display name for the loaded workload.
        name: String,
        /// The SWF document.
        text: String,
    },
}

/// A Standard Workload Format log as a source: parse, clean, convert,
/// validate.
///
/// ```
/// use predictsim_experiments::source::{SwfSource, WorkloadSource};
///
/// let text = "\
/// ; MaxProcs: 4
/// 1 0 -1 100 2 -1 -1 2 200 -1 1 7 1 3 1 -1 -1 -1
/// 2 5 -1 50 1 -1 -1 1 100 -1 1 8 1 3 1 -1 -1 -1
/// ";
/// let w = SwfSource::from_text("mini", text).load().unwrap();
/// assert_eq!(w.machine_size, 4);
/// assert_eq!(w.jobs.len(), 2);
/// assert_eq!(w.cleaning.unwrap().kept, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwfSource {
    input: SwfInput,
    rules: CleaningRules,
    machine_size: Option<u32>,
    eager: bool,
}

impl SwfSource {
    /// A source reading `path` with the default cleaning conventions.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            input: SwfInput::File(path.as_ref().to_path_buf()),
            rules: CleaningRules::default(),
            machine_size: None,
            eager: false,
        }
    }

    /// A source over in-memory SWF text (fixtures, tests).
    pub fn from_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            input: SwfInput::Text {
                name: name.into(),
                text: text.into(),
            },
            rules: CleaningRules::default(),
            machine_size: None,
            eager: false,
        }
    }

    /// Replaces the cleaning conventions.
    pub fn with_rules(mut self, rules: CleaningRules) -> Self {
        self.rules = rules;
        self
    }

    /// Overrides the machine size (for headerless logs, or to simulate a
    /// log on a smaller machine — oversize jobs are then dropped by the
    /// cleaning rules).
    pub fn with_machine_size(mut self, machine_size: u32) -> Self {
        self.machine_size = Some(machine_size);
        self
    }

    /// Forces the buffered (parse-everything-then-clean) path instead of
    /// the streaming one. The two are byte-identical; this exists for
    /// differential tests and for benchmarking the streaming win.
    pub fn with_eager(mut self) -> Self {
        self.eager = true;
        self
    }

    fn name(&self) -> String {
        match &self.input {
            SwfInput::File(path) => path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            SwfInput::Text { name, .. } => name.clone(),
        }
    }
}

/// Repair-intent bits tracked per kept record on the streaming path.
/// Job conversion clamps `requested` to `max(effective requested, run)`,
/// which makes both estimate repairs value-neutral on converted jobs —
/// only the *counters* must survive, and only for records that also
/// survive the (deferred) oversize drop.
const WANT_ESTIMATE: u8 = 1 << 0;
const WANT_INVERSION: u8 = 1 << 1;

impl SwfSource {
    /// Single-pass load: records become engine jobs as they stream off
    /// the parser; no intermediate record vector is ever built. Produces
    /// bit-for-bit the same `LoadedWorkload` (jobs, machine size,
    /// cleaning report) as [`SwfSource::load_eager`].
    ///
    /// Requires `rules.drop_unrunnable` (the default): inline conversion
    /// needs every kept record to carry a run time and processor count.
    fn load_streaming<R: std::io::BufRead>(
        &self,
        mut stream: SwfStream<R>,
    ) -> Result<LoadedWorkload, SourceError> {
        let rules = self.rules;
        debug_assert!(rules.drop_unrunnable, "streaming needs inline conversion");
        let mut report = CleaningReport::default();
        let mut jobs: Vec<Job> = Vec::new();
        let mut repairs: Vec<u8> = Vec::new();
        // Largest processor request over *all* parsed records (including
        // dropped ones) — the headerless machine-size fallback matches
        // `SwfLog::machine_size` on the pre-clean log.
        let mut max_procs: u64 = 0;
        for record in stream.by_ref() {
            let r = record?;
            if let Some(q) = r.effective_procs() {
                max_procs = max_procs.max(q as u64);
            }
            let Some(p) = r.run_time_opt() else {
                report.dropped_unrunnable += 1;
                continue;
            };
            if r.effective_procs().is_none() {
                report.dropped_unrunnable += 1;
                continue;
            }
            let mut want = 0u8;
            match r.requested_time_opt() {
                None if rules.repair_missing_estimates => want |= WANT_ESTIMATE,
                Some(pt) if rules.repair_estimate_inversions && pt < p => want |= WANT_INVERSION,
                _ => {}
            }
            jobs.push(job_from_swf(JobId(jobs.len() as u32), &r)?);
            repairs.push(want);
        }
        let header = stream.into_header();
        let machine_size = match self.machine_size {
            Some(m) => m as u64,
            None => header
                .machine_size()
                .or((max_procs > 0).then_some(max_procs))
                .ok_or(SourceError::UnknownMachineSize)?,
        };
        if rules.drop_oversize {
            // Stable in-place compaction, keeping the repair sidecar in
            // tandem so repairs on oversize records are not counted.
            let mut keep = 0;
            for i in 0..jobs.len() {
                if jobs[i].procs as u64 > machine_size {
                    report.dropped_oversize += 1;
                } else {
                    jobs.swap(keep, i);
                    repairs.swap(keep, i);
                    keep += 1;
                }
            }
            jobs.truncate(keep);
            repairs.truncate(keep);
        }
        report.repaired_estimates = repairs.iter().filter(|w| **w & WANT_ESTIMATE != 0).count();
        report.repaired_inversions = repairs.iter().filter(|w| **w & WANT_INVERSION != 0).count();
        drop(repairs);
        if rules.sort_by_submit {
            let sorted = jobs.windows(2).all(|w| w[0].submit <= w[1].submit);
            if !sorted {
                report.reordered = true;
                jobs.sort_by_key(|j| (j.submit, j.swf_id));
            }
        }
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        intern_users(&mut jobs);
        report.kept = jobs.len();
        self.finish(
            jobs,
            machine_size,
            report,
            LoadStats {
                streamed: true,
                buffered_records: 0,
            },
        )
    }

    /// The buffered reference path: parse the whole log, clean it, then
    /// convert.
    fn load_eager(&self) -> Result<LoadedWorkload, SourceError> {
        let mut log = match &self.input {
            SwfInput::File(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| SourceError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                parse_log(&text)?
            }
            SwfInput::Text { text, .. } => parse_log(text)?,
        };
        let buffered_records = log.records.len();
        let machine_size = match self.machine_size {
            Some(m) => m as u64,
            None => log.machine_size().ok_or(SourceError::UnknownMachineSize)?,
        };
        let report = clean(&mut log, machine_size, self.rules);
        let jobs = jobs_from_swf(&log.records)?;
        self.finish(
            jobs,
            machine_size,
            report,
            LoadStats {
                streamed: false,
                buffered_records,
            },
        )
    }

    /// Shared tail: validate and assemble the `LoadedWorkload`.
    fn finish(
        &self,
        jobs: Vec<Job>,
        machine_size: u64,
        report: CleaningReport,
        stats: LoadStats,
    ) -> Result<LoadedWorkload, SourceError> {
        for job in &jobs {
            job.validate().map_err(SourceError::Invalid)?;
            if job.procs as u64 > machine_size {
                return Err(SourceError::Invalid(format!(
                    "{} requests {} procs on a {machine_size}-proc machine \
                     (enable the oversize cleaning rule?)",
                    job.id, job.procs
                )));
            }
        }
        let machine_size = u32::try_from(machine_size).map_err(|_| {
            SourceError::Invalid(format!("machine size {machine_size} exceeds u32"))
        })?;
        Ok(LoadedWorkload {
            name: self.name(),
            machine_size,
            jobs: JobArena::new(jobs),
            cleaning: Some(report),
            stats,
        })
    }
}

impl WorkloadSource for SwfSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        // Streaming conversion needs `drop_unrunnable` so every kept
        // record is convertible on sight; oddball rule sets fall back to
        // the buffered reference path.
        if self.eager || !self.rules.drop_unrunnable {
            return self.load_eager();
        }
        match &self.input {
            SwfInput::File(path) => {
                let file = std::fs::File::open(path).map_err(|e| SourceError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                // `swf.read` fault site: transient fires vanish inside
                // `BufReader` (which retries `Interrupted`), hard fires
                // truncate the stream mid-record — both exercised by
                // the chaos suite. Passthrough when no plan is active.
                let faulty = predictsim_faultline::FaultyRead::new(file, "swf.read");
                self.load_streaming(SwfStream::new(std::io::BufReader::new(faulty)))
            }
            SwfInput::Text { text, .. } => {
                self.load_streaming(SwfStream::new(std::io::Cursor::new(text.as_bytes())))
            }
        }
    }

    fn describe(&self) -> String {
        match &self.input {
            SwfInput::File(path) => format!("SWF log {}", path.display()),
            SwfInput::Text { name, .. } => format!("SWF text {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_swf::write_log;

    const MINI: &str = "\
; MaxProcs: 8
1 0 -1 100 2 -1 -1 2 200 -1 1 3 1 1 1 -1 -1 -1
2 10 -1 50 1 -1 -1 1 100 -1 1 4 1 1 1 -1 -1 -1
3 20 -1 -1 1 -1 -1 1 100 -1 0 4 1 1 1 -1 -1 -1
";

    /// Exercises every cleaning-report field at once: out-of-order
    /// submits, an unrunnable record (each of the two ways), an oversize
    /// job, a missing estimate, an estimate inversion, and a trailing
    /// header comment (late `into_header` ingestion).
    const NASTY: &str = "\
; MaxProcs: 8
5 40 -1 60 1 -1 -1 1 120 -1 1 9 1 1 1 -1 -1 -1
1 0 -1 100 2 -1 -1 2 -1 -1 1 3 1 1 1 -1 -1 -1
2 10 -1 100 1 -1 -1 1 50 -1 1 4 1 1 1 -1 -1 -1
3 20 -1 -1 1 -1 -1 1 100 -1 0 4 1 1 1 -1 -1 -1
4 30 -1 10 16 -1 -1 16 100 -1 1 5 1 1 1 -1 -1 -1
6 50 -1 10 -1 -1 -1 -1 100 -1 1 9 1 1 1 -1 -1 -1
; Computer: nasty-cluster
";

    /// Streaming and buffered loads of the same source must agree on
    /// everything except the `stats` accounting.
    fn assert_stream_eager_identical(source: SwfSource, parsed_records: usize) -> LoadedWorkload {
        let streamed = source.clone().load().unwrap();
        let eager = source.with_eager().load().unwrap();
        assert_eq!(streamed.name, eager.name);
        assert_eq!(streamed.machine_size, eager.machine_size);
        assert_eq!(streamed.cleaning, eager.cleaning);
        assert_eq!(
            &streamed.jobs[..],
            &eager.jobs[..],
            "streaming load must be byte-identical to the buffered one"
        );
        assert_eq!(streamed.jobs.fingerprint(), eager.jobs.fingerprint());
        assert_eq!(streamed.jobs.user_count(), eager.jobs.user_count());
        assert_eq!(
            streamed.stats,
            LoadStats {
                streamed: true,
                buffered_records: 0
            }
        );
        assert_eq!(
            eager.stats,
            LoadStats {
                streamed: false,
                buffered_records: parsed_records
            }
        );
        streamed
    }

    #[test]
    fn synthetic_source_matches_direct_generation() {
        let spec = WorkloadSpec::toy();
        let direct = generate(&spec, 11);
        let loaded = SyntheticSource::new(spec, 11).load().unwrap();
        assert_eq!(&loaded.jobs[..], &direct.jobs[..]);
        assert_eq!(loaded.machine_size, direct.machine_size);
        assert_eq!(loaded.name, direct.name);
        assert!(loaded.cleaning.is_none());
        assert_eq!(loaded.sim_config().machine_size(), direct.machine_size);
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 0;
        let err = SyntheticSource::new(spec, 1).load().unwrap_err();
        assert!(matches!(err, SourceError::Invalid(_)));
    }

    #[test]
    fn swf_text_source_cleans_and_converts() {
        let w = SwfSource::from_text("mini", MINI).load().unwrap();
        assert_eq!(w.machine_size, 8);
        // Record 3 has no run time and is dropped by the cleaning rules.
        assert_eq!(w.jobs.len(), 2);
        let report = w.cleaning.expect("SWF path reports cleaning");
        assert_eq!(report.dropped_unrunnable, 1);
        assert_eq!(w.jobs[0].run, 100);
        assert_eq!(w.jobs[1].procs, 1);
    }

    #[test]
    fn swf_file_source_round_trips_a_generated_workload() {
        let w = generate(&WorkloadSpec::toy(), 3);
        let dir = std::env::temp_dir();
        let path = dir.join("predictsim_source_test.swf");
        std::fs::write(&path, write_log(&w.to_swf())).unwrap();
        let loaded = SwfSource::new(&path).load().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.machine_size, w.machine_size);
        assert_eq!(
            &loaded.jobs[..],
            &w.jobs[..],
            "SWF round trip must be lossless"
        );
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = SwfSource::new("/nonexistent/never.swf").load().unwrap_err();
        assert!(matches!(err, SourceError::Io { .. }));
        assert!(err.to_string().contains("never.swf"));
    }

    #[test]
    fn unparseable_text_is_a_parse_error() {
        let err = SwfSource::from_text("bad", "1 2 three\n")
            .load()
            .unwrap_err();
        assert!(matches!(err, SourceError::Parse(_)));
    }

    #[test]
    fn headerless_log_needs_an_override() {
        // Headerless with records: falls back to max procs observed.
        let headerless = "1 0 -1 100 2 -1 -1 2 200 -1 1 3 1 1 1 -1 -1 -1\n";
        let w = SwfSource::from_text("frag", headerless).load().unwrap();
        assert_eq!(w.machine_size, 2);
        // Empty log: no way to infer.
        let err = SwfSource::from_text("empty", "").load().unwrap_err();
        assert_eq!(err, SourceError::UnknownMachineSize);
        // Explicit override resolves it.
        let w = SwfSource::from_text("empty", "")
            .with_machine_size(16)
            .load()
            .unwrap();
        assert_eq!(w.machine_size, 16);
        assert!(w.jobs.is_empty());
    }

    #[test]
    fn streaming_matches_eager_on_every_fixture() {
        assert_stream_eager_identical(SwfSource::from_text("mini", MINI), 3);
        let nasty = assert_stream_eager_identical(SwfSource::from_text("nasty", NASTY), 6);
        let report = nasty.cleaning.unwrap();
        assert_eq!(report.dropped_unrunnable, 2);
        assert_eq!(report.dropped_oversize, 1);
        assert_eq!(report.repaired_estimates, 1);
        assert_eq!(report.repaired_inversions, 1);
        assert!(report.reordered);
        assert_eq!(report.kept, 3);
        // Jobs come out submit-sorted, densely renumbered, interned in
        // first-appearance order.
        let submits: Vec<i64> = nasty.jobs.iter().map(|j| j.submit.0).collect();
        assert_eq!(submits, vec![0, 10, 40]);
        assert_eq!(
            nasty.jobs.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            nasty.jobs.iter().map(|j| j.user_ix).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // The inversion/missing-estimate repairs are value-identical.
        assert_eq!(nasty.jobs[0].requested, 100);
        assert_eq!(nasty.jobs[1].requested, 100);
        // Headerless fragment: machine size inferred from records on
        // both paths.
        let headerless = "1 0 -1 100 2 -1 -1 2 200 -1 1 3 1 1 1 -1 -1 -1\n";
        let frag = assert_stream_eager_identical(SwfSource::from_text("frag", headerless), 1);
        assert_eq!(frag.machine_size, 2);
        // Machine-size override shrinks the machine and drops oversize
        // jobs identically.
        let small = assert_stream_eager_identical(
            SwfSource::from_text("mini-small", MINI).with_machine_size(1),
            3,
        );
        assert_eq!(small.machine_size, 1);
        assert_eq!(small.cleaning.unwrap().dropped_oversize, 1);
    }

    #[test]
    fn streaming_matches_eager_on_a_generated_round_trip() {
        let w = generate(&WorkloadSpec::toy(), 9);
        let dir = std::env::temp_dir();
        let path = dir.join("predictsim_stream_eager_test.swf");
        std::fs::write(&path, write_log(&w.to_swf())).unwrap();
        let loaded = assert_stream_eager_identical(SwfSource::new(&path), w.jobs.len());
        std::fs::remove_file(&path).ok();
        assert_eq!(&loaded.jobs[..], &w.jobs[..]);
    }

    #[test]
    fn streaming_error_parity_with_eager() {
        // Parse errors surface identically.
        let bad = SwfSource::from_text("bad", "1 2 three\n");
        let s = bad.clone().load().unwrap_err();
        let e = bad.with_eager().load().unwrap_err();
        assert_eq!(s, e);
        assert!(matches!(s, SourceError::Parse(_)));
        // Unknown machine size surfaces identically.
        let empty = SwfSource::from_text("empty", "; Note: nothing\n");
        let s = empty.clone().load().unwrap_err();
        let e = empty.with_eager().load().unwrap_err();
        assert_eq!(s, SourceError::UnknownMachineSize);
        assert_eq!(s, e);
        // Disabled oversize dropping rejects the shrunk machine the same
        // way on both paths (streaming still applies: drop_unrunnable on).
        let rules = CleaningRules {
            drop_oversize: false,
            ..CleaningRules::default()
        };
        let src = SwfSource::from_text("mini", MINI)
            .with_rules(rules)
            .with_machine_size(1);
        let s = src.clone().load().unwrap_err();
        let e = src.with_eager().load().unwrap_err();
        assert_eq!(s, e);
        assert!(matches!(s, SourceError::Invalid(_)));
    }

    #[test]
    fn non_streamable_rules_fall_back_to_the_buffered_path() {
        let rules = CleaningRules {
            drop_unrunnable: false,
            ..CleaningRules::default()
        };
        // MINI's record 3 has no run time: with the drop disabled it
        // must fail conversion — via the buffered path.
        let err = SwfSource::from_text("mini", MINI)
            .with_rules(rules)
            .load()
            .unwrap_err();
        assert!(matches!(err, SourceError::Conversion(_)));
    }

    #[test]
    fn generated_workload_is_a_source() {
        let w = generate(&WorkloadSpec::toy(), 5);
        let loaded = w.load().unwrap();
        assert_eq!(loaded.jobs.len(), w.jobs.len());
        assert!(w.describe().contains("toy"));
        // LoadedWorkload is idempotently a source too.
        assert_eq!(loaded.load().unwrap(), loaded);
    }
}
