//! Unified workload sources: synthetic generation and real SWF logs.
//!
//! Everything downstream of the engine consumes a [`LoadedWorkload`] — a
//! validated, submit-ordered, densely numbered job vector plus the
//! machine size to simulate on. A [`WorkloadSource`] is anything that can
//! produce one:
//!
//! * [`SyntheticSource`] wraps `predictsim_workload::generate` (the
//!   Table 4 synthetic stand-ins, or any custom [`WorkloadSpec`]);
//! * [`SwfSource`] reads a Standard Workload Format log — from a file or
//!   from in-memory text — through `predictsim_swf`'s parser, applies the
//!   cleaning conventions, and converts the records into engine jobs;
//! * an already-generated [`GeneratedWorkload`] or [`LoadedWorkload`] is
//!   itself a source (trivially).
//!
//! The [`crate::scenario::Scenario`] builder accepts any of these behind
//! one `.workload(..)` call, which is what lets the same campaign run on
//! a synthetic log one day and a Parallel Workloads Archive trace the
//! next — the ROADMAP's "real SWF logs" loader path.

use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use predictsim_sim::job::JobConversionError;
use predictsim_sim::{jobs_from_swf, Job, SimConfig};
use predictsim_swf::reader::ParseError;
use predictsim_swf::{clean, parse_log, CleaningReport, CleaningRules};
use predictsim_workload::{generate, GeneratedWorkload, WorkloadSpec};

/// Why a workload source failed to produce simulator-ready jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The backing file could not be read.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The SWF text did not parse.
    Parse(ParseError),
    /// The machine size is unknown (no `MaxProcs` header, no records,
    /// and no explicit override).
    UnknownMachineSize,
    /// A cleaned record still could not be converted into an engine job.
    Conversion(JobConversionError),
    /// The produced jobs failed structural validation.
    Invalid(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            SourceError::Parse(e) => write!(f, "{e}"),
            SourceError::UnknownMachineSize => write!(
                f,
                "machine size unknown: no MaxProcs header, no records, no override"
            ),
            SourceError::Conversion(e) => write!(f, "{e}"),
            SourceError::Invalid(message) => write!(f, "invalid workload: {message}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<ParseError> for SourceError {
    fn from(e: ParseError) -> Self {
        SourceError::Parse(e)
    }
}

impl From<JobConversionError> for SourceError {
    fn from(e: JobConversionError) -> Self {
        SourceError::Conversion(e)
    }
}

/// An immutable, shareable job vector with a content fingerprint.
///
/// The experiment layer fans one workload out to hundreds of
/// simulations (128 triples per log, re-read by cross-validation,
/// tables, figures and ablations). The arena makes that sharing free —
/// cloning is an `Arc` bump, never a copy of the jobs — and carries a
/// stable content [fingerprint](JobArena::fingerprint), computed once
/// per load, that keys the simulation cache
/// ([`crate::cache::SimCache`]) within and across processes.
///
/// Derefs to `[Job]`, so any `&[Job]` consumer takes `&arena`.
#[derive(Debug, Clone)]
pub struct JobArena {
    inner: Arc<ArenaInner>,
}

#[derive(Debug)]
struct ArenaInner {
    jobs: Vec<Job>,
    fingerprint: u64,
}

impl JobArena {
    /// Takes ownership of `jobs`, fingerprinting them once.
    pub fn new(jobs: Vec<Job>) -> Self {
        let fingerprint = fingerprint_jobs(&jobs);
        Self {
            inner: Arc::new(ArenaInner { jobs, fingerprint }),
        }
    }

    /// The jobs as a slice.
    pub fn jobs(&self) -> &[Job] {
        &self.inner.jobs
    }

    /// A stable 64-bit content fingerprint (FNV-1a over every job
    /// field, in job order). Two arenas with equal fingerprints hold, up
    /// to hash collision, the same workload — the identity the
    /// simulation cache keys on. The encoding is fixed, so fingerprints
    /// are comparable across processes and platforms (the persistent
    /// `--cache` layer relies on this).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }
}

impl Deref for JobArena {
    type Target = [Job];

    fn deref(&self) -> &[Job] {
        &self.inner.jobs
    }
}

impl From<Vec<Job>> for JobArena {
    fn from(jobs: Vec<Job>) -> Self {
        Self::new(jobs)
    }
}

impl PartialEq for JobArena {
    fn eq(&self, other: &Self) -> bool {
        // Arc identity or fingerprint short-circuit; fall back to the
        // full comparison so equality stays exact under collisions.
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.fingerprint == other.inner.fingerprint
                && self.inner.jobs == other.inner.jobs)
    }
}

/// FNV-1a over a byte stream — the stable (cross-process,
/// cross-platform) hash behind workload fingerprints and the persistent
/// cache's file names.
pub(crate) fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.into_iter().fold(OFFSET, |hash, byte| {
        (hash ^ byte as u64).wrapping_mul(PRIME)
    })
}

/// [`fnv1a64`] over a canonical little-endian encoding of every job
/// field (length-prefixed).
fn fingerprint_jobs(jobs: &[Job]) -> u64 {
    let words = std::iter::once(jobs.len() as u64).chain(jobs.iter().flat_map(|job| {
        [
            job.id.0 as u64,
            job.submit.0 as u64,
            job.run as u64,
            job.requested as u64,
            job.procs as u64,
            job.user as u64,
            job.swf_id,
        ]
    }));
    fnv1a64(words.flat_map(u64::to_le_bytes))
}

/// A simulator-ready workload, whatever it was loaded from.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedWorkload {
    /// Display name (log name or spec name).
    pub name: String,
    /// Machine size to simulate on.
    pub machine_size: u32,
    /// Jobs sorted by submission with dense ids `0..n`, in a shared
    /// fingerprinted arena (cloning a loaded workload never copies the
    /// jobs).
    pub jobs: JobArena,
    /// What cleaning did, when the workload came through the SWF path.
    pub cleaning: Option<CleaningReport>,
}

impl LoadedWorkload {
    /// The `SimConfig` for this workload's machine.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::single(self.machine_size)
    }
}

impl From<GeneratedWorkload> for LoadedWorkload {
    fn from(w: GeneratedWorkload) -> Self {
        Self {
            name: w.name,
            machine_size: w.machine_size,
            jobs: JobArena::new(w.jobs),
            cleaning: None,
        }
    }
}

impl From<&GeneratedWorkload> for LoadedWorkload {
    fn from(w: &GeneratedWorkload) -> Self {
        Self {
            name: w.name.clone(),
            machine_size: w.machine_size,
            jobs: JobArena::new(w.jobs.clone()),
            cleaning: None,
        }
    }
}

/// Anything that can produce a simulator-ready workload.
pub trait WorkloadSource {
    /// Loads (or copies) the workload.
    fn load(&self) -> Result<LoadedWorkload, SourceError>;

    /// One-line description for logs and error messages.
    fn describe(&self) -> String;
}

impl<T: WorkloadSource + ?Sized> WorkloadSource for Box<T> {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        (**self).load()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl WorkloadSource for LoadedWorkload {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        Ok(self.clone())
    }

    fn describe(&self) -> String {
        format!("loaded workload {} ({} jobs)", self.name, self.jobs.len())
    }
}

impl WorkloadSource for GeneratedWorkload {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        Ok(self.into())
    }

    fn describe(&self) -> String {
        format!(
            "generated workload {} ({} jobs)",
            self.name,
            self.jobs.len()
        )
    }
}

/// Synthetic workload generation as a source: a [`WorkloadSpec`] plus a
/// seed, deferred until [`WorkloadSource::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSource {
    /// The generating spec.
    pub spec: WorkloadSpec,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticSource {
    /// A source for `spec` at `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self { spec, seed }
    }
}

impl WorkloadSource for SyntheticSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        self.spec.validate().map_err(SourceError::Invalid)?;
        Ok(generate(&self.spec, self.seed).into())
    }

    fn describe(&self) -> String {
        format!(
            "synthetic {} ({} jobs, seed {})",
            self.spec.name, self.spec.jobs, self.seed
        )
    }
}

/// Where an [`SwfSource`] reads its text from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SwfInput {
    /// A file on disk.
    File(PathBuf),
    /// In-memory text under a display name (fixtures, tests, pipes).
    Text {
        /// Display name for the loaded workload.
        name: String,
        /// The SWF document.
        text: String,
    },
}

/// A Standard Workload Format log as a source: parse, clean, convert,
/// validate.
///
/// ```
/// use predictsim_experiments::source::{SwfSource, WorkloadSource};
///
/// let text = "\
/// ; MaxProcs: 4
/// 1 0 -1 100 2 -1 -1 2 200 -1 1 7 1 3 1 -1 -1 -1
/// 2 5 -1 50 1 -1 -1 1 100 -1 1 8 1 3 1 -1 -1 -1
/// ";
/// let w = SwfSource::from_text("mini", text).load().unwrap();
/// assert_eq!(w.machine_size, 4);
/// assert_eq!(w.jobs.len(), 2);
/// assert_eq!(w.cleaning.unwrap().kept, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwfSource {
    input: SwfInput,
    rules: CleaningRules,
    machine_size: Option<u32>,
}

impl SwfSource {
    /// A source reading `path` with the default cleaning conventions.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            input: SwfInput::File(path.as_ref().to_path_buf()),
            rules: CleaningRules::default(),
            machine_size: None,
        }
    }

    /// A source over in-memory SWF text (fixtures, tests).
    pub fn from_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            input: SwfInput::Text {
                name: name.into(),
                text: text.into(),
            },
            rules: CleaningRules::default(),
            machine_size: None,
        }
    }

    /// Replaces the cleaning conventions.
    pub fn with_rules(mut self, rules: CleaningRules) -> Self {
        self.rules = rules;
        self
    }

    /// Overrides the machine size (for headerless logs, or to simulate a
    /// log on a smaller machine — oversize jobs are then dropped by the
    /// cleaning rules).
    pub fn with_machine_size(mut self, machine_size: u32) -> Self {
        self.machine_size = Some(machine_size);
        self
    }

    fn name(&self) -> String {
        match &self.input {
            SwfInput::File(path) => path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            SwfInput::Text { name, .. } => name.clone(),
        }
    }
}

impl WorkloadSource for SwfSource {
    fn load(&self) -> Result<LoadedWorkload, SourceError> {
        let mut log = match &self.input {
            SwfInput::File(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| SourceError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                parse_log(&text)?
            }
            SwfInput::Text { text, .. } => parse_log(text)?,
        };
        let machine_size = match self.machine_size {
            Some(m) => m as u64,
            None => log.machine_size().ok_or(SourceError::UnknownMachineSize)?,
        };
        let report = clean(&mut log, machine_size, self.rules);
        let jobs = jobs_from_swf(&log.records)?;
        for job in &jobs {
            job.validate().map_err(SourceError::Invalid)?;
            if job.procs as u64 > machine_size {
                return Err(SourceError::Invalid(format!(
                    "{} requests {} procs on a {machine_size}-proc machine \
                     (enable the oversize cleaning rule?)",
                    job.id, job.procs
                )));
            }
        }
        let machine_size = u32::try_from(machine_size).map_err(|_| {
            SourceError::Invalid(format!("machine size {machine_size} exceeds u32"))
        })?;
        Ok(LoadedWorkload {
            name: self.name(),
            machine_size,
            jobs: JobArena::new(jobs),
            cleaning: Some(report),
        })
    }

    fn describe(&self) -> String {
        match &self.input {
            SwfInput::File(path) => format!("SWF log {}", path.display()),
            SwfInput::Text { name, .. } => format!("SWF text {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_swf::write_log;

    const MINI: &str = "\
; MaxProcs: 8
1 0 -1 100 2 -1 -1 2 200 -1 1 3 1 1 1 -1 -1 -1
2 10 -1 50 1 -1 -1 1 100 -1 1 4 1 1 1 -1 -1 -1
3 20 -1 -1 1 -1 -1 1 100 -1 0 4 1 1 1 -1 -1 -1
";

    #[test]
    fn synthetic_source_matches_direct_generation() {
        let spec = WorkloadSpec::toy();
        let direct = generate(&spec, 11);
        let loaded = SyntheticSource::new(spec, 11).load().unwrap();
        assert_eq!(&loaded.jobs[..], &direct.jobs[..]);
        assert_eq!(loaded.machine_size, direct.machine_size);
        assert_eq!(loaded.name, direct.name);
        assert!(loaded.cleaning.is_none());
        assert_eq!(loaded.sim_config().machine_size(), direct.machine_size);
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 0;
        let err = SyntheticSource::new(spec, 1).load().unwrap_err();
        assert!(matches!(err, SourceError::Invalid(_)));
    }

    #[test]
    fn swf_text_source_cleans_and_converts() {
        let w = SwfSource::from_text("mini", MINI).load().unwrap();
        assert_eq!(w.machine_size, 8);
        // Record 3 has no run time and is dropped by the cleaning rules.
        assert_eq!(w.jobs.len(), 2);
        let report = w.cleaning.expect("SWF path reports cleaning");
        assert_eq!(report.dropped_unrunnable, 1);
        assert_eq!(w.jobs[0].run, 100);
        assert_eq!(w.jobs[1].procs, 1);
    }

    #[test]
    fn swf_file_source_round_trips_a_generated_workload() {
        let w = generate(&WorkloadSpec::toy(), 3);
        let dir = std::env::temp_dir();
        let path = dir.join("predictsim_source_test.swf");
        std::fs::write(&path, write_log(&w.to_swf())).unwrap();
        let loaded = SwfSource::new(&path).load().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.machine_size, w.machine_size);
        assert_eq!(
            &loaded.jobs[..],
            &w.jobs[..],
            "SWF round trip must be lossless"
        );
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = SwfSource::new("/nonexistent/never.swf").load().unwrap_err();
        assert!(matches!(err, SourceError::Io { .. }));
        assert!(err.to_string().contains("never.swf"));
    }

    #[test]
    fn unparseable_text_is_a_parse_error() {
        let err = SwfSource::from_text("bad", "1 2 three\n")
            .load()
            .unwrap_err();
        assert!(matches!(err, SourceError::Parse(_)));
    }

    #[test]
    fn headerless_log_needs_an_override() {
        // Headerless with records: falls back to max procs observed.
        let headerless = "1 0 -1 100 2 -1 -1 2 200 -1 1 3 1 1 1 -1 -1 -1\n";
        let w = SwfSource::from_text("frag", headerless).load().unwrap();
        assert_eq!(w.machine_size, 2);
        // Empty log: no way to infer.
        let err = SwfSource::from_text("empty", "").load().unwrap_err();
        assert_eq!(err, SourceError::UnknownMachineSize);
        // Explicit override resolves it.
        let w = SwfSource::from_text("empty", "")
            .with_machine_size(16)
            .load()
            .unwrap();
        assert_eq!(w.machine_size, 16);
        assert!(w.jobs.is_empty());
    }

    #[test]
    fn generated_workload_is_a_source() {
        let w = generate(&WorkloadSpec::toy(), 5);
        let loaded = w.load().unwrap();
        assert_eq!(loaded.jobs.len(), w.jobs.len());
        assert!(w.describe().contains("toy"));
        // LoadedWorkload is idempotently a source too.
        assert_eq!(loaded.load().unwrap(), loaded);
    }
}
