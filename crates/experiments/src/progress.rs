//! Opt-in per-cell progress lines for long repro runs.
//!
//! A full-scale campaign is hours of wall-clock across hundreds of
//! cells; with the persistent cache a killed run resumes from disk, but
//! only if the operator can see how far it got. When enabled (`repro
//! --progress`, implied by `--full`) every experiment fan-out reports
//! each finished cell to **stderr** — stdout artifacts stay clean — as
//!
//! ```text
//! progress: campaign KTH-SP2 [17/130] sqrt*p+easy-sjbf — simulated in 12.41s
//! progress: campaign KTH-SP2 [18/130] ave2+easy — disk hit
//! ```
//!
//! so `repro ... 2>progress.log` doubles as a resume journal: grep the
//! last line per experiment to see where a killed run stopped.
//!
//! Disabled (the default) this module is a handful of relaxed atomic
//! loads — no formatting, no clock reads, no lock — so the quick-scale
//! and test paths pay nothing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crate::cache::CellSource;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns progress reporting on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether progress reporting is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A start-of-cell timestamp — `None` when reporting is off, so the
/// disabled path never reads the clock.
pub fn start() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Emits one free-form progress line (fold selections, phase notes).
pub fn emit(line: &str) {
    if enabled() {
        eprintln!("progress: {line}");
    }
}

/// Per-fan-out progress: counts finished cells against a known total
/// and reports each with its serving layer. Shared by reference across
/// parallel workers.
pub struct CellProgress {
    label: String,
    total: usize,
    done: AtomicUsize,
}

impl CellProgress {
    /// A new counter for `total` cells under the given display label
    /// (e.g. `campaign KTH-SP2`).
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        CellProgress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
        }
    }

    /// Reports one finished cell: where it came from and — for true
    /// simulations, when the caller captured [`start`] — how long it
    /// took.
    pub fn cell_done(&self, cell: &str, source: CellSource, started: Option<Instant>) {
        if !enabled() {
            return;
        }
        let how = match source {
            CellSource::Simulated => match started {
                Some(t0) => format!("simulated in {:.2}s", t0.elapsed().as_secs_f64()),
                None => "simulated".to_string(),
            },
            CellSource::Memory => "memory hit".to_string(),
            CellSource::Disk => "disk hit".to_string(),
            CellSource::Coalesced => "coalesced with an in-flight simulation".to_string(),
        };
        self.line(cell, &how);
    }

    /// Reports a cell the `--prune` sweep early-aborted as dominated.
    pub fn cell_pruned(&self, cell: &str, started: Option<Instant>) {
        if !enabled() {
            return;
        }
        let how = match started {
            Some(t0) => format!("pruned (dominated) in {:.2}s", t0.elapsed().as_secs_f64()),
            None => "pruned (dominated)".to_string(),
        };
        self.line(cell, &how);
    }

    /// Reports a cell served by a non-simulating recall whose layer the
    /// caller cannot see (a `peek`).
    pub fn cell_recalled(&self, cell: &str) {
        if !enabled() {
            return;
        }
        self.line(cell, "recalled");
    }

    fn line(&self, cell: &str, how: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "progress: {} [{}/{}] {} — {}",
            self.label, done, self.total, cell, how
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // The global flag is shared across tests; restore it.
        let was = enabled();
        set_enabled(false);
        assert!(!enabled());
        assert!(start().is_none(), "disabled path must not read the clock");
        set_enabled(true);
        assert!(enabled());
        assert!(start().is_some());
        set_enabled(was);
    }

    #[test]
    fn counter_is_monotonic_across_reports() {
        let was = enabled();
        set_enabled(true);
        let progress = CellProgress::new("test", 3);
        progress.cell_done("a", CellSource::Memory, None);
        progress.cell_done("b", CellSource::Simulated, start());
        progress.cell_pruned("c", None);
        assert_eq!(progress.done.load(Ordering::Relaxed), 3);
        set_enabled(was);
    }
}
