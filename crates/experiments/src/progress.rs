//! Opt-in per-cell progress lines for long repro runs.
//!
//! A full-scale campaign is hours of wall-clock across hundreds of
//! cells; with the persistent cache a killed run resumes from disk, but
//! only if the operator can see how far it got. When enabled (`repro
//! --progress`, implied by `--full`) every experiment fan-out reports
//! each finished cell to **stderr** — stdout artifacts stay clean — as
//!
//! ```text
//! progress: campaign KTH-SP2 [17/130] sqrt*p+easy-sjbf — simulated in 12.41s
//! progress: campaign KTH-SP2 [18/130] ave2+easy — disk hit
//! ```
//!
//! so `repro ... 2>progress.log` doubles as a resume journal: grep the
//! last line per experiment to see where a killed run stopped.
//!
//! Disabled (the default) this module is a handful of relaxed atomic
//! loads — no formatting, no clock reads, no lock — so the quick-scale
//! and test paths pay nothing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use predictsim_sim::{MetricsObserver, SimEvent, SimObserver, Ticker, UtilizationObserver};

use crate::cache::CellSource;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns progress reporting on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether progress reporting is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A start-of-cell timestamp — `None` when reporting is off, so the
/// disabled path never reads the clock.
pub fn start() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Emits one free-form progress line (fold selections, phase notes).
pub fn emit(line: &str) {
    if enabled() {
        eprintln!("progress: {line}");
    }
}

/// Per-fan-out progress: counts finished cells against a known total
/// and reports each with its serving layer. Shared by reference across
/// parallel workers.
pub struct CellProgress {
    label: String,
    total: usize,
    done: AtomicUsize,
}

impl CellProgress {
    /// A new counter for `total` cells under the given display label
    /// (e.g. `campaign KTH-SP2`).
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        CellProgress {
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
        }
    }

    /// Reports one finished cell: where it came from and — for true
    /// simulations, when the caller captured [`start`] — how long it
    /// took.
    pub fn cell_done(&self, cell: &str, source: CellSource, started: Option<Instant>) {
        if !enabled() {
            return;
        }
        let how = match source {
            CellSource::Simulated => match started {
                Some(t0) => format!("simulated in {:.2}s", t0.elapsed().as_secs_f64()),
                None => "simulated".to_string(),
            },
            CellSource::Memory => "memory hit".to_string(),
            CellSource::Disk => "disk hit".to_string(),
            CellSource::Coalesced => "coalesced with an in-flight simulation".to_string(),
        };
        self.line(cell, &how);
    }

    /// Reports a cell the `--prune` sweep early-aborted as dominated.
    pub fn cell_pruned(&self, cell: &str, started: Option<Instant>) {
        if !enabled() {
            return;
        }
        let how = match started {
            Some(t0) => format!("pruned (dominated) in {:.2}s", t0.elapsed().as_secs_f64()),
            None => "pruned (dominated)".to_string(),
        };
        self.line(cell, &how);
    }

    /// Reports a cell served by a non-simulating recall whose layer the
    /// caller cannot see (a `peek`).
    pub fn cell_recalled(&self, cell: &str) {
        if !enabled() {
            return;
        }
        self.line(cell, "recalled");
    }

    fn line(&self, cell: &str, how: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "progress: {} [{}/{}] {} — {}",
            self.label, done, self.total, cell, how
        );
    }
}

/// Default heartbeat cadence: one report every this many simulated
/// events (submissions + starts + corrections + completions).
pub const HEARTBEAT_EVENTS: u64 = 250_000;

/// An intra-cell heartbeat snapshot, handed to a [`Heartbeat`] sink
/// every [`HEARTBEAT_EVENTS`] (or a configured cadence) events.
pub struct HeartbeatPulse<'a> {
    /// Raw engine events seen so far.
    pub events: u64,
    /// Incremental scheduling metrics at this instant.
    pub metrics: &'a MetricsObserver,
    /// Per-partition utilization series, when the heartbeat tracks one.
    pub utilization: Option<&'a UtilizationObserver>,
}

/// The intra-cell progress observer: maintains incremental metrics (and
/// optionally a per-partition utilization series) while a simulation
/// runs, and calls a sink with a [`HeartbeatPulse`] every N events.
///
/// One journaling seam, two consumers: `--progress` journals pulses to
/// stderr ([`Heartbeat::journal`]), and the serve daemon turns the same
/// pulses into streamed `metrics` frames. A cancel hook makes it the
/// cooperative-cancellation carrier too — the engine polls
/// [`SimObserver::keep_running`], so a hook returning `true` (cancel)
/// aborts the in-flight simulation.
pub struct Heartbeat {
    metrics: MetricsObserver,
    utilization: Option<UtilizationObserver>,
    ticker: Ticker,
    sink: Box<dyn FnMut(HeartbeatPulse<'_>) + Send>,
    cancel: Option<Box<dyn Fn() -> bool + Send>>,
}

impl Heartbeat {
    /// A heartbeat for a machine of `machine_size` processors, pulsing
    /// `sink` every `every` events.
    pub fn new(
        machine_size: u32,
        every: u64,
        sink: Box<dyn FnMut(HeartbeatPulse<'_>) + Send>,
    ) -> Self {
        Heartbeat {
            metrics: MetricsObserver::new(machine_size),
            utilization: None,
            ticker: Ticker::new(every),
            sink,
            cancel: None,
        }
    }

    /// Adds a per-partition utilization series to each pulse.
    pub fn with_utilization(mut self, utilization: UtilizationObserver) -> Self {
        self.utilization = Some(utilization);
        self
    }

    /// Adds a cancel hook, polled by the engine between event batches:
    /// returning `true` aborts the simulation
    /// ([`predictsim_sim::SimError::Aborted`]).
    pub fn with_cancel(mut self, cancel: Box<dyn Fn() -> bool + Send>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The `--progress` heartbeat: journals each pulse through [`emit`]
    /// as e.g.
    ///
    /// ```text
    /// progress: campaign KTH-SP2 ave2+easy — in flight: 250000 events, 8123/13115 jobs finished, AVEbsld so far 41.3
    /// ```
    pub fn journal(label: String, machine_size: u32, total_jobs: usize) -> Self {
        Heartbeat::new(
            machine_size,
            HEARTBEAT_EVENTS,
            Box::new(move |pulse: HeartbeatPulse<'_>| {
                emit(&format!(
                    "{label} — in flight: {} events, {}/{} jobs finished, AVEbsld so far {:.1}",
                    pulse.events,
                    pulse.metrics.finished(),
                    total_jobs,
                    pulse.metrics.ave_bsld(),
                ));
            }),
        )
    }

    /// Raw events seen so far.
    pub fn events(&self) -> u64 {
        self.ticker.seen()
    }

    /// The incremental metrics accumulated so far.
    pub fn metrics(&self) -> &MetricsObserver {
        &self.metrics
    }
}

impl SimObserver for Heartbeat {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self.metrics.on_event(event);
        if let Some(utilization) = self.utilization.as_mut() {
            utilization.on_event(event);
        }
        if self.ticker.tick() {
            (self.sink)(HeartbeatPulse {
                events: self.ticker.seen(),
                metrics: &self.metrics,
                utilization: self.utilization.as_ref(),
            });
        }
    }

    fn keep_running(&self) -> bool {
        match &self.cancel {
            Some(cancel) => !cancel(),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // The global flag is shared across tests; restore it.
        let was = enabled();
        set_enabled(false);
        assert!(!enabled());
        assert!(start().is_none(), "disabled path must not read the clock");
        set_enabled(true);
        assert!(enabled());
        assert!(start().is_some());
        set_enabled(was);
    }

    #[test]
    fn counter_is_monotonic_across_reports() {
        let was = enabled();
        set_enabled(true);
        let progress = CellProgress::new("test", 3);
        progress.cell_done("a", CellSource::Memory, None);
        progress.cell_done("b", CellSource::Simulated, start());
        progress.cell_pruned("c", None);
        assert_eq!(progress.done.load(Ordering::Relaxed), 3);
        set_enabled(was);
    }

    #[test]
    fn heartbeat_pulses_on_cadence_and_carries_metrics() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        let pulses = Arc::new(AtomicU64::new(0));
        let sink_pulses = pulses.clone();
        let mut hb = Heartbeat::new(
            4,
            10,
            Box::new(move |pulse: HeartbeatPulse<'_>| {
                assert_eq!(pulse.events % 10, 0);
                sink_pulses.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let job = predictsim_sim::Job {
            id: predictsim_sim::JobId(0),
            submit: predictsim_sim::Time(0),
            run: 100,
            requested: 200,
            procs: 1,
            user: 0,
            user_ix: 0,
            swf_id: 0,
        };
        for _ in 0..25 {
            hb.on_event(&SimEvent::Submitted {
                job: &job,
                prediction: 200,
                now: predictsim_sim::Time(0),
            });
        }
        assert_eq!(pulses.load(Ordering::Relaxed), 2);
        assert_eq!(hb.events(), 25);
        assert_eq!(hb.metrics().submitted(), 25);
        assert!(hb.keep_running(), "no cancel hook: never aborts");
    }

    #[test]
    fn heartbeat_cancel_hook_flips_keep_running() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let stop = Arc::new(AtomicBool::new(false));
        let hook = stop.clone();
        let hb = Heartbeat::new(4, 10, Box::new(|_| {}))
            .with_cancel(Box::new(move || hook.load(Ordering::Relaxed)));
        assert!(hb.keep_running());
        stop.store(true, Ordering::Relaxed);
        assert!(!hb.keep_running());
    }
}
