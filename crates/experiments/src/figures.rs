//! Regenerators for the paper's figures (3, 4 and 5).
//!
//! Figures are exported as data series (CSV-ready `(x, y)` pairs or
//! scatter points); the repro binary also renders coarse ASCII plots so
//! the shapes can be eyeballed in a terminal.

use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use predictsim_metrics::pearson::pairwise_correlation_summary;
use predictsim_metrics::Ecdf;

use crate::cache::SimCache;
use crate::campaign::CampaignResult;
use crate::source::LoadedWorkload;
use crate::triple::{CorrectionKind, HeuristicTriple, PredictionTechnique, Variant};

use predictsim_core::loss::AsymmetricLoss;
use predictsim_core::predictor::MlConfig;
use predictsim_core::weighting::WeightingScheme;

/// One point of the Figure 3 scatter: a heuristic triple's AVEbsld on two
/// logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Triple name.
    pub triple: String,
    /// Category used for the plot legend ("clairvoyant", "requested",
    /// "ave2" or "ml").
    pub category: String,
    /// Scheduler variant ("easy" / "easy-sjbf").
    pub variant: String,
    /// AVEbsld on the x-axis log.
    pub x: f64,
    /// AVEbsld on the y-axis log.
    pub y: f64,
}

/// The Figure 3 dataset plus the §6.3.2 Pearson aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// X-axis log name.
    pub x_log: String,
    /// Y-axis log name.
    pub y_log: String,
    /// Scatter points (one per triple present in both campaigns).
    pub points: Vec<Fig3Point>,
    /// Pearson |r| (mean, min, max) over *all* pairs of campaign logs.
    pub pearson_mean_min_max: Option<(f64, f64, f64)>,
}

fn category_of(predictor: &str) -> String {
    if predictor.starts_with("ml(") {
        "ml".to_string()
    } else {
        predictor.to_string()
    }
}

/// Builds Figure 3 from campaign results: the scatter compares `x_log`
/// and `y_log` (the paper uses SDSC-BLUE vs MetaCentrum); the Pearson
/// summary uses every pair of logs in `campaigns`.
pub fn fig3(campaigns: &[CampaignResult], x_log: &str, y_log: &str) -> Fig3 {
    let cx = campaigns
        .iter()
        .find(|c| c.log.starts_with(x_log))
        .expect("x log not in campaigns");
    let cy = campaigns
        .iter()
        .find(|c| c.log.starts_with(y_log))
        .expect("y log not in campaigns");
    let points = cx
        .results
        .iter()
        .filter_map(|rx| {
            cy.get(&rx.triple).map(|ry| Fig3Point {
                triple: rx.triple.clone(),
                category: category_of(&rx.predictor),
                variant: rx.variant.clone(),
                x: rx.ave_bsld,
                y: ry.ave_bsld,
            })
        })
        .collect();

    // §6.3.2: Pearson coefficient per log pair, aggregated.
    let names: Vec<&str> = cx.results.iter().map(|r| r.triple.as_str()).collect();
    let columns: Vec<Vec<f64>> = campaigns
        .iter()
        .map(|c| {
            names
                .iter()
                .filter_map(|n| c.get(n).map(|r| r.ave_bsld))
                .collect::<Vec<f64>>()
        })
        .filter(|col| col.len() == names.len())
        .collect();
    let pearson = pairwise_correlation_summary(&columns);

    Fig3 {
        x_log: cx.log.clone(),
        y_log: cy.log.clone(),
        points,
        pearson_mean_min_max: pearson,
    }
}

/// One ECDF series of Figures 4/5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcdfSeries {
    /// Legend label ("E-Loss Regression", "Requested Time", …).
    pub label: String,
    /// `(x, F(x))` pairs; `x` in hours for the figures.
    pub curve: Vec<(f64, f64)>,
}

/// Figure 4 (ECDF of prediction errors) and Figure 5 (ECDF of predicted
/// values) computed on one log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig45 {
    /// Log name (the paper uses Curie).
    pub log: String,
    /// Figure 4 series: prediction error (hours) → cumulative density.
    pub error_series: Vec<EcdfSeries>,
    /// Figure 5 series: predicted value (hours) → cumulative density.
    pub value_series: Vec<EcdfSeries>,
}

const HOUR_F: f64 = 3600.0;

/// Runs (or recalls) one figure technique: the per-job initial
/// predictions under `prediction` + Incremental + EASY-SJBF. Half of
/// the Figure 4/5 techniques are campaign cells, which the process-wide
/// [`SimCache`] dedups against a preceding campaign.
fn run_technique(
    workload: &LoadedWorkload,
    label: &str,
    prediction: PredictionTechnique,
    progress: &crate::progress::CellProgress,
) -> (String, Arc<Vec<i64>>) {
    let triple = HeuristicTriple {
        prediction,
        correction: Some(CorrectionKind::Incremental),
        variant: Variant::EasySjbf,
    };
    let started = crate::progress::start();
    let (_, predictions, source) = SimCache::global()
        .run_cell_full_traced(
            &workload.jobs,
            predictsim_sim::ClusterSpec::single(workload.machine_size),
            &triple,
        )
        .expect("figure simulation failed");
    progress.cell_done(&triple.name(), source, started);
    (label.to_string(), predictions)
}

/// Computes the Figure 4 and Figure 5 series on `workload` with
/// `points`-sample curves.
///
/// The four prediction techniques match the paper's legends: the E-Loss
/// learner, the user-requested time, a plain squared-loss learner, and
/// AVE₂; Figure 5 adds the actual running times as the reference
/// distribution. The four simulations are independent and run in
/// parallel (order-preserving).
pub fn fig4_fig5(workload: &LoadedWorkload, points: usize) -> Fig45 {
    let techniques = [
        (
            "E-Loss Regression",
            PredictionTechnique::Ml(MlConfig::e_loss()),
        ),
        ("Requested Time", PredictionTechnique::RequestedTime),
        (
            "Squared Loss Regression",
            PredictionTechnique::Ml(MlConfig::new(
                AsymmetricLoss::SQUARED,
                WeightingScheme::Constant,
            )),
        ),
        ("AVE2(k)", PredictionTechnique::Ave2),
    ];
    let progress = crate::progress::CellProgress::new("fig4+fig5", techniques.len());
    let runs: Vec<(String, Arc<Vec<i64>>)> = techniques
        .into_par_iter()
        .map(|(label, prediction)| run_technique(workload, label, prediction, &progress))
        .collect();

    // The granted running time per job (what a `JobOutcome` records as
    // `run`), by dense job id — jobs are shared through the arena, so
    // the per-cell payload only needs the predictions.
    let granted: Vec<i64> = workload.jobs.iter().map(|j| j.granted_run()).collect();

    // Figure 4: signed prediction error in hours, over [-24h, +24h].
    let error_series = runs
        .iter()
        .map(|(label, predictions)| {
            let errors: Vec<f64> = predictions
                .iter()
                .zip(&granted)
                .map(|(&p, &run)| (p - run) as f64 / HOUR_F)
                .collect();
            EcdfSeries {
                label: label.clone(),
                curve: Ecdf::new(errors).curve(-24.0, 24.0, points),
            }
        })
        .collect();

    // Figure 5: predicted values in hours over [0, 24h], plus the actual
    // running times as reference.
    let mut value_series: Vec<EcdfSeries> = runs
        .iter()
        .map(|(label, predictions)| {
            let preds: Vec<f64> = predictions.iter().map(|&p| p as f64 / HOUR_F).collect();
            EcdfSeries {
                label: label.clone(),
                curve: Ecdf::new(preds).curve(0.0, 24.0, points),
            }
        })
        .collect();
    let actual: Vec<f64> = granted.iter().map(|&run| run as f64 / HOUR_F).collect();
    value_series.insert(
        0,
        EcdfSeries {
            label: "Actual value".into(),
            curve: Ecdf::new(actual).curve(0.0, 24.0, points),
        },
    );

    Fig45 {
        log: workload.name.clone(),
        error_series,
        value_series,
    }
}

/// Renders an ECDF family as a compact ASCII chart (one row per series,
/// quantile markers), good enough to eyeball the Figure 4/5 shapes in a
/// terminal.
pub fn render_ecdf_series(series: &[EcdfSeries], x_unit: &str) -> String {
    let mut out = String::new();
    for s in series {
        // Find x positions where the curve crosses 10%/25%/50%/75%/90%.
        let mut marks = Vec::new();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = s
                .curve
                .iter()
                .find(|&&(_, f)| f >= q)
                .map(|&(x, _)| x)
                .unwrap_or(f64::NAN);
            marks.push(format!("p{:.0}={:+.1}{x_unit}", q * 100.0, x));
        }
        out.push_str(&format!("{:<26} {}\n", s.label, marks.join("  ")));
    }
    out
}

/// Renders Figure 3 as an ASCII summary: per-category best/median plus
/// the Pearson aggregate.
pub fn render_fig3(fig: &Fig3) -> String {
    let mut out = format!(
        "Scatter: AVEbsld on {} (x) vs {} (y), {} triples\n",
        fig.x_log,
        fig.y_log,
        fig.points.len()
    );
    for cat in ["clairvoyant", "requested", "ave2", "ml"] {
        let pts: Vec<&Fig3Point> = fig.points.iter().filter(|p| p.category == cat).collect();
        if pts.is_empty() {
            continue;
        }
        let best = pts
            .iter()
            .min_by(|a, b| (a.x + a.y).total_cmp(&(b.x + b.y)))
            .expect("non-empty");
        out.push_str(&format!(
            "  {:<12} n={:<3} best: x={:.1} y={:.1} ({})\n",
            cat,
            pts.len(),
            best.x,
            best.y,
            best.triple
        ));
    }
    if let Some((mean, min, max)) = fig.pearson_mean_min_max {
        out.push_str(&format!(
            "Pearson |r| over log pairs: mean {mean:.2} (min {min:.2}, max {max:.2})\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign_loaded;
    use crate::triple::reference_triples;
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny(name: &str, seed: u64) -> LoadedWorkload {
        let mut spec = WorkloadSpec::toy();
        spec.name = name.into();
        spec.jobs = 300;
        spec.duration = 3 * 86_400;
        generate(&spec, seed).into()
    }

    fn small_triples() -> Vec<HeuristicTriple> {
        let mut t = vec![
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
            HeuristicTriple::paper_winner(),
        ];
        t.extend(reference_triples());
        t
    }

    #[test]
    fn fig3_points_and_pearson() {
        let wa = tiny("LogA", 1);
        let wb = tiny("LogB", 2);
        let triples = small_triples();
        let campaigns = vec![
            run_campaign_loaded(&wa, &triples),
            run_campaign_loaded(&wb, &triples),
        ];
        let fig = fig3(&campaigns, "LogA", "LogB");
        assert_eq!(fig.points.len(), triples.len());
        assert!(fig.pearson_mean_min_max.is_some());
        let txt = render_fig3(&fig);
        assert!(txt.contains("LogA"));
        assert!(txt.contains("Pearson"));
    }

    #[test]
    fn fig45_series_are_complete_and_monotone() {
        let w = tiny("LogC", 3);
        let fig = fig4_fig5(&w, 49);
        assert_eq!(fig.error_series.len(), 4);
        assert_eq!(fig.value_series.len(), 5); // + actual values
        for s in fig.error_series.iter().chain(&fig.value_series) {
            assert_eq!(s.curve.len(), 49, "{}", s.label);
            for w in s.curve.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} not monotone", s.label);
            }
        }
        // Requested Time never under-predicts: its error ECDF at 0 must
        // be ~0 (all errors positive).
        let req = fig
            .error_series
            .iter()
            .find(|s| s.label == "Requested Time")
            .expect("series exists");
        let at_zero = req
            .curve
            .iter()
            .find(|&&(x, _)| x >= 0.0)
            .map(|&(_, f)| f)
            .expect("curve covers 0");
        assert!(
            at_zero <= 0.05,
            "requested-time errors must be >= 0, F(0) = {at_zero}"
        );
        let txt = render_ecdf_series(&fig.error_series, "h");
        assert!(txt.contains("E-Loss Regression"));
    }

    #[test]
    fn eloss_is_biased_small_in_fig5() {
        // §6.4 / Figure 5: the E-Loss model is strongly biased toward
        // small predictions — its median predicted value sits below the
        // squared-loss learner's.
        let w = tiny("LogD", 4);
        let fig = fig4_fig5(&w, 97);
        let median_x = |label: &str| {
            fig.value_series
                .iter()
                .find(|s| s.label == label)
                .expect("series")
                .curve
                .iter()
                .find(|&&(_, f)| f >= 0.5)
                .map(|&(x, _)| x)
                .expect("median within range")
        };
        let eloss = median_x("E-Loss Regression");
        let squared = median_x("Squared Loss Regression");
        let requested = median_x("Requested Time");
        assert!(
            eloss <= squared,
            "E-Loss median {eloss} vs squared {squared}"
        );
        assert!(
            eloss < requested,
            "E-Loss median {eloss} vs requested {requested}"
        );
    }
}
