//! The experiment campaign runner.
//!
//! Runs a set of heuristic triples over a workload (in parallel via
//! rayon — every simulation is independent) and collects per-triple
//! scheduling and prediction metrics. A [`CampaignResult`] is the unit
//! Tables 6–7 and Figure 3 are computed from.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use predictsim_metrics::DEFAULT_TAU;
use predictsim_sim::{ClusterSpec, SimResult};
use predictsim_workload::GeneratedWorkload;

use crate::cache::SimCache;
use crate::source::{JobArena, LoadedWorkload, SourceError, WorkloadSource};
use crate::triple::HeuristicTriple;

/// Aggregated metrics of one triple on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripleResult {
    /// Triple display name (unique within a campaign).
    pub triple: String,
    /// Predictor component name.
    pub predictor: String,
    /// Correction component name, if any.
    pub correction: Option<String>,
    /// Backfilling variant name.
    pub variant: String,
    /// The paper's objective: average bounded slowdown (τ = 10 s).
    pub ave_bsld: f64,
    /// Maximum bounded slowdown (the §6.5 extreme-value diagnostic).
    pub max_bsld: f64,
    /// Fraction of jobs with bsld > 1000 (§6.5's "extremely high").
    pub extreme_fraction: f64,
    /// Mean waiting time, seconds.
    pub mean_wait: f64,
    /// Machine utilization achieved.
    pub utilization: f64,
    /// Total §5.2 corrections applied.
    pub corrections: u64,
    /// MAE of initial predictions (Table 8).
    pub mae: f64,
    /// Mean E-Loss of initial predictions (Table 8).
    pub mean_eloss: f64,
}

impl TripleResult {
    /// Builds the aggregate from a finished simulation.
    ///
    /// Every metric is accumulated in one pass over the outcomes, in job
    /// order — the same element expressions and accumulation order as
    /// the per-metric functions (`SimResult::ave_bsld`,
    /// `predictsim_metrics::bsld::max_bsld`/`fraction_bsld_above`,
    /// `SimResult::mean_wait`, `SimResult::utilization`,
    /// `predictsim_core::mae_of_outcomes`/`mean_eloss_of_outcomes`), so
    /// the values are bit-identical to calling them individually without
    /// re-walking a campaign cell's outcome vector eight times.
    pub fn from_sim(triple: &HeuristicTriple, result: &SimResult) -> Self {
        let n = result.outcomes.len();
        let mut bsld_sum = 0.0f64;
        let mut bsld_max = 0.0f64;
        let mut extreme = 0usize;
        let mut wait_sum = 0.0f64;
        let mut busy = 0.0f64;
        let mut first_submit = i64::MAX;
        let mut last_end = i64::MIN;
        let mut corrections = 0u64;
        let mut mae_sum = 0.0f64;
        let mut eloss_sum = 0.0f64;
        for o in &result.outcomes {
            let bsld = o.bsld_record().bsld(DEFAULT_TAU);
            bsld_sum += bsld;
            bsld_max = f64::max(bsld_max, bsld);
            if bsld > 1000.0 {
                extreme += 1;
            }
            wait_sum += o.wait() as f64;
            busy += o.run as f64 * o.procs as f64;
            first_submit = first_submit.min(o.submit.0);
            last_end = last_end.max(o.end.0);
            corrections += o.corrections as u64;
            mae_sum += (o.initial_prediction as f64 - o.run as f64).abs();
            eloss_sum +=
                predictsim_core::eloss(o.initial_prediction as f64, o.run as f64, o.procs as f64);
        }
        let mean = |sum: f64| if n == 0 { 0.0 } else { sum / n as f64 };
        let utilization = if n == 0 {
            0.0
        } else {
            let span = (last_end - first_submit).max(1) as f64;
            busy / (span * result.machine_size as f64)
        };
        Self {
            triple: triple.name(),
            predictor: triple.prediction.name(),
            correction: triple.correction.map(|c| c.name().to_string()),
            variant: triple.variant.name().to_string(),
            ave_bsld: mean(bsld_sum),
            max_bsld: bsld_max,
            extreme_fraction: mean(extreme as f64),
            mean_wait: mean(wait_sum),
            utilization,
            corrections,
            mae: mean(mae_sum),
            mean_eloss: mean(eloss_sum),
        }
    }
}

/// All triple results for one workload log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Workload (log) name.
    pub log: String,
    /// Machine size simulated.
    pub machine_size: u32,
    /// Number of jobs simulated.
    pub jobs: usize,
    /// Per-triple aggregates, in the order the triples were given.
    pub results: Vec<TripleResult>,
}

impl CampaignResult {
    /// Finds a triple's result by its display name.
    pub fn get(&self, triple_name: &str) -> Option<&TripleResult> {
        self.results.iter().find(|r| r.triple == triple_name)
    }

    /// The best (lowest AVEbsld) result, optionally restricted by a
    /// predicate. Uses the IEEE total order, so a NaN produced by a
    /// degenerate campaign sorts to the extreme instead of panicking.
    pub fn best_where<F: Fn(&TripleResult) -> bool>(&self, pred: F) -> Option<&TripleResult> {
        self.results
            .iter()
            .filter(|r| pred(r))
            .min_by(|a, b| a.ave_bsld.total_cmp(&b.ave_bsld))
    }

    /// The worst (highest AVEbsld) result under a predicate (IEEE total
    /// order, like [`CampaignResult::best_where`]).
    pub fn worst_where<F: Fn(&TripleResult) -> bool>(&self, pred: F) -> Option<&TripleResult> {
        self.results
            .iter()
            .filter(|r| pred(r))
            .max_by(|a, b| a.ave_bsld.total_cmp(&b.ave_bsld))
    }

    /// AVEbsld of a named triple; panics if absent (campaign bug).
    pub fn bsld_of(&self, triple_name: &str) -> f64 {
        self.get(triple_name)
            .unwrap_or_else(|| panic!("triple {triple_name} missing from campaign"))
            .ave_bsld
    }
}

/// Runs `triples` on a shared workload arena, in parallel, through the
/// process-wide [`SimCache`] (cells already simulated by *any*
/// experiment this process — or found in the persistent `--cache`
/// layer — are recalled instead of re-simulated).
fn run_campaign_arena(
    log: &str,
    cluster: ClusterSpec,
    arena: &JobArena,
    triples: &[HeuristicTriple],
) -> CampaignResult {
    let cache = SimCache::global();
    let progress = crate::progress::CellProgress::new(format!("campaign {log}"), triples.len());
    let results: Vec<TripleResult> = triples
        .par_iter()
        .map(|triple| {
            let started = crate::progress::start();
            // With `--progress` on, route through the observed cache
            // path so hour-long cells journal an intra-cell heartbeat
            // every N events; the default path stays observer-free.
            // Either way the simulation — and therefore the cached
            // cell — is byte-identical.
            let outcome = if crate::progress::enabled() {
                let mut heartbeat = crate::progress::Heartbeat::journal(
                    format!("campaign {log} {}", triple.name()),
                    cluster.total_procs(),
                    arena.len(),
                );
                cache.run_cell_observed_traced(arena, cluster, triple, &mut heartbeat)
            } else {
                cache.run_cell_traced(arena, cluster, triple)
            };
            let (cell, source) =
                outcome.unwrap_or_else(|e| panic!("triple {} failed: {e}", triple.name()));
            progress.cell_done(&triple.name(), source, started);
            cell.result
        })
        .collect();
    CampaignResult {
        log: log.to_string(),
        machine_size: cluster.total_procs(),
        jobs: arena.len(),
        results,
    }
}

/// Runs `triples` on `workload`, in parallel.
///
/// # Panics
///
/// Panics if any simulation rejects the workload — the generator's output
/// is validated, so a failure here is a bug, not an input condition.
pub fn run_campaign(workload: &GeneratedWorkload, triples: &[HeuristicTriple]) -> CampaignResult {
    run_campaign_loaded(&workload.into(), triples)
}

/// Runs `triples` on an already loaded workload (synthetic or SWF — see
/// [`crate::source`]), in parallel.
pub fn run_campaign_loaded(
    workload: &LoadedWorkload,
    triples: &[HeuristicTriple],
) -> CampaignResult {
    run_campaign_cluster(
        workload,
        ClusterSpec::single(workload.machine_size),
        triples,
    )
}

/// Runs `triples` on a loaded workload placed on an explicit
/// [`ClusterSpec`] instead of the workload's own single machine — the
/// heterogeneous campaign entry point. The result's `machine_size` is
/// the cluster's total processor count.
pub fn run_campaign_cluster(
    workload: &LoadedWorkload,
    cluster: ClusterSpec,
    triples: &[HeuristicTriple],
) -> CampaignResult {
    run_campaign_arena(&workload.name, cluster, &workload.jobs, triples)
}

/// Loads `source` and runs `triples` on it: the one-call campaign for
/// any [`WorkloadSource`].
pub fn run_campaign_source(
    source: &dyn WorkloadSource,
    triples: &[HeuristicTriple],
) -> Result<CampaignResult, SourceError> {
    let loaded = source.load()?;
    Ok(run_campaign_loaded(&loaded, triples))
}

/// A campaign run in the opt-in `--prune` sweep mode: dominated triples
/// were early-aborted, so their [`TripleResult`]s carry a *lower bound*
/// on AVEbsld (and prefix values for the other metrics) instead of the
/// exact numbers. The winner is preserved exactly — see
/// [`run_campaign_pruned`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedCampaign {
    /// The campaign, with pruned cells holding lower-bound metrics.
    pub campaign: CampaignResult,
    /// Names of the triples that were early-aborted, in campaign order.
    pub pruned: Vec<String>,
    /// The AVEbsld threshold pruning compared against (the best
    /// *eligible* exempt baseline).
    pub threshold: f64,
}

/// Observer driving the §6.3.1-style sweep abort: maintains the same
/// aggregates [`TripleResult::from_sim`] computes, plus the running
/// *lower bound* on the final AVEbsld — finished jobs contribute their
/// exact bounded slowdown, unfinished ones at least 1.0 each — and asks
/// the engine to stop as soon as that bound exceeds the threshold.
struct PruneObserver {
    n_total: usize,
    threshold: f64,
    finished: usize,
    bsld_sum: f64,
    bsld_max: f64,
    extreme: usize,
    wait_sum: f64,
    busy: f64,
    first_submit: i64,
    last_end: i64,
    corrections: u64,
    mae_sum: f64,
    eloss_sum: f64,
}

impl PruneObserver {
    fn new(n_total: usize, threshold: f64) -> Self {
        Self {
            n_total,
            threshold,
            finished: 0,
            bsld_sum: 0.0,
            bsld_max: 0.0,
            extreme: 0,
            wait_sum: 0.0,
            busy: 0.0,
            first_submit: i64::MAX,
            last_end: i64::MIN,
            corrections: 0,
            mae_sum: 0.0,
            eloss_sum: 0.0,
        }
    }

    /// The certain lower bound on the final AVEbsld given the finished
    /// prefix (every job's bounded slowdown is ≥ 1).
    fn lower_bound(&self) -> f64 {
        (self.bsld_sum + (self.n_total - self.finished) as f64) / self.n_total as f64
    }

    /// The lower-bound [`TripleResult`] recorded for an aborted triple.
    fn partial_result(&self, triple: &HeuristicTriple, machine_size: u32) -> TripleResult {
        let mean = |sum: f64| {
            if self.finished == 0 {
                0.0
            } else {
                sum / self.finished as f64
            }
        };
        let utilization = if self.finished == 0 {
            0.0
        } else {
            let span = (self.last_end - self.first_submit).max(1) as f64;
            self.busy / (span * machine_size as f64)
        };
        TripleResult {
            triple: triple.name(),
            predictor: triple.prediction.name(),
            correction: triple.correction.map(|c| c.name().to_string()),
            variant: triple.variant.name().to_string(),
            // The certain lower bound, NOT the exact value: by
            // construction it exceeds the threshold (hence every exempt
            // baseline), so a pruned cell can never displace the winner.
            ave_bsld: self.lower_bound(),
            max_bsld: self.bsld_max,
            extreme_fraction: self.extreme as f64 / self.n_total as f64,
            mean_wait: mean(self.wait_sum),
            utilization,
            corrections: self.corrections,
            mae: mean(self.mae_sum),
            mean_eloss: mean(self.eloss_sum),
        }
    }
}

impl predictsim_sim::SimObserver for PruneObserver {
    fn on_event(&mut self, event: &predictsim_sim::SimEvent<'_>) {
        #[allow(clippy::single_match)]
        match event {
            predictsim_sim::SimEvent::Finished { outcome: o } => {
                let bsld = o.bsld_record().bsld(DEFAULT_TAU);
                self.finished += 1;
                self.bsld_sum += bsld;
                self.bsld_max = f64::max(self.bsld_max, bsld);
                if bsld > 1000.0 {
                    self.extreme += 1;
                }
                self.wait_sum += o.wait() as f64;
                self.busy += o.run as f64 * o.procs as f64;
                self.first_submit = self.first_submit.min(o.submit.0);
                self.last_end = self.last_end.max(o.end.0);
                self.corrections += o.corrections as u64;
                self.mae_sum += (o.initial_prediction as f64 - o.run as f64).abs();
                self.eloss_sum += predictsim_core::eloss(
                    o.initial_prediction as f64,
                    o.run as f64,
                    o.procs as f64,
                );
            }
            _ => {}
        }
    }

    fn keep_running(&self) -> bool {
        self.lower_bound() <= self.threshold
    }
}

/// True for the triples `--prune` never aborts: the clairvoyant
/// references (tables need them exact) and the golden-path baselines
/// (standard EASY, EASY++, the paper's winner) whose exact values every
/// table, figure and pin reads.
pub fn prune_exempt(triple: &HeuristicTriple) -> bool {
    matches!(
        triple.prediction,
        crate::triple::PredictionTechnique::Clairvoyant
    ) || *triple == HeuristicTriple::standard_easy()
        || *triple == HeuristicTriple::easy_plus_plus()
        || *triple == HeuristicTriple::paper_winner()
}

/// Runs `triples` on `workload` with dominated-triple pruning — the
/// opt-in `--prune` sweep mode.
///
/// Two deterministic phases. Phase 1 simulates the exempt triples
/// ([`prune_exempt`]) exactly, through the cache, and fixes the pruning
/// threshold as the best AVEbsld among the *eligible* (non-clairvoyant)
/// exempt baselines — a fixed threshold, so pruning decisions are
/// independent of worker count and scheduling order, unlike racing a
/// shared "best so far". Phase 2 simulates the rest, aborting any
/// triple whose running prefix-AVEbsld lower bound exceeds the
/// threshold; aborted cells record that lower bound.
///
/// The winner is preserved exactly: a pruned triple's true AVEbsld is ≥
/// its recorded lower bound > threshold ≥ the winner's value, so
/// neither per-log ordering against the winner nor the cross-validated
/// selection can change. Aborted cells are never written to the
/// [`SimCache`] (their metrics are bounds, not values).
pub fn run_campaign_pruned(
    workload: &LoadedWorkload,
    triples: &[HeuristicTriple],
) -> PrunedCampaign {
    let cache = SimCache::global();
    let machine_size = workload.machine_size;
    let cluster = ClusterSpec::single(machine_size);
    let arena = &workload.jobs;

    // Phase 1: exact exempt cells fix the threshold.
    let exempt: Vec<&HeuristicTriple> = triples.iter().filter(|t| prune_exempt(t)).collect();
    let progress = crate::progress::CellProgress::new(
        format!("prune {} baselines", workload.name),
        exempt.len(),
    );
    let exempt_results: Vec<TripleResult> = exempt
        .par_iter()
        .map(|triple| {
            let started = crate::progress::start();
            let (cell, source) = cache
                .run_cell_traced(arena, cluster, triple)
                .unwrap_or_else(|e| panic!("triple {} failed: {e}", triple.name()));
            progress.cell_done(&triple.name(), source, started);
            cell.result
        })
        .collect();
    let threshold = exempt_results
        .iter()
        .filter(|r| r.predictor != "clairvoyant")
        .map(|r| r.ave_bsld)
        .fold(f64::INFINITY, f64::min);
    let exempt_by_name: std::collections::HashMap<&str, &TripleResult> = exempt_results
        .iter()
        .map(|r| (r.triple.as_str(), r))
        .collect();

    // Phase 2: everything else, with the early-abort observer.
    let progress = crate::progress::CellProgress::new(
        format!("prune {} sweep", workload.name),
        triples.len() - exempt.len(),
    );
    let results: Vec<(TripleResult, bool)> = triples
        .par_iter()
        .map(|triple| {
            if let Some(result) = exempt_by_name.get(triple.name().as_str()) {
                return ((*result).clone(), false);
            }
            // An exact memoized value beats an early-abort bound.
            if let Some(cell) = cache.peek(arena, cluster, triple) {
                progress.cell_recalled(&triple.name());
                return (cell.result, false);
            }
            let started = crate::progress::start();
            let mut observer = PruneObserver::new(arena.len(), threshold);
            let outcome = crate::scenario::run_triple_with_scratch(
                triple,
                arena,
                predictsim_sim::SimConfig { cluster },
                &mut observer,
            );
            match outcome {
                Ok(sim) => {
                    // A fully completed run is exact — memoize it like
                    // any cache miss, so cross-experiment dedup, the
                    // persistent layer and the cache accounting keep
                    // working under `--prune` (only aborted cells, whose
                    // metrics are bounds, stay out of the cache).
                    let result = TripleResult::from_sim(triple, &sim);
                    let predictions: Vec<i64> =
                        sim.outcomes.iter().map(|o| o.initial_prediction).collect();
                    cache.record_simulated(arena, cluster, triple, result.clone(), predictions);
                    progress.cell_done(
                        &triple.name(),
                        crate::cache::CellSource::Simulated,
                        started,
                    );
                    (result, false)
                }
                Err(predictsim_sim::SimError::Aborted { .. }) => {
                    progress.cell_pruned(&triple.name(), started);
                    (observer.partial_result(triple, machine_size), true)
                }
                Err(e) => panic!("triple {} failed: {e}", triple.name()),
            }
        })
        .collect();

    let pruned = results
        .iter()
        .filter(|(_, aborted)| *aborted)
        .map(|(r, _)| r.triple.clone())
        .collect();
    PrunedCampaign {
        campaign: CampaignResult {
            log: workload.name.clone(),
            machine_size,
            jobs: arena.len(),
            results: results.into_iter().map(|(r, _)| r).collect(),
        },
        pruned,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::{reference_triples, HeuristicTriple, Variant};
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny_workload() -> GeneratedWorkload {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 300;
        spec.duration = 3 * 86_400;
        generate(&spec, 11)
    }

    #[test]
    fn campaign_runs_named_triples() {
        let w = tiny_workload();
        let triples = vec![
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
            HeuristicTriple::paper_winner(),
            HeuristicTriple::clairvoyant(Variant::EasySjbf),
        ];
        let campaign = run_campaign(&w, &triples);
        assert_eq!(campaign.results.len(), 4);
        assert_eq!(campaign.jobs, 300);
        for r in &campaign.results {
            assert!(r.ave_bsld >= 1.0, "{}: bsld {}", r.triple, r.ave_bsld);
            assert!(r.utilization > 0.0);
        }
        assert!(campaign.get("requested+easy").is_some());
        assert!(campaign.get("nonexistent").is_none());
        let best = campaign.best_where(|_| true).unwrap();
        let worst = campaign.worst_where(|_| true).unwrap();
        assert!(best.ave_bsld <= worst.ave_bsld);
    }

    #[test]
    fn campaign_is_deterministic_despite_parallelism() {
        let w = tiny_workload();
        let triples = vec![
            HeuristicTriple::standard_easy(),
            HeuristicTriple::paper_winner(),
        ];
        let a = run_campaign(&w, &triples);
        let b = run_campaign(&w, &triples);
        assert_eq!(a, b);
    }

    #[test]
    fn reference_triples_have_no_corrections() {
        let w = tiny_workload();
        let campaign = run_campaign(&w, &reference_triples());
        for r in &campaign.results {
            assert_eq!(r.corrections, 0, "clairvoyant must never correct");
            assert_eq!(r.mae, 0.0, "clairvoyant MAE is zero by definition");
        }
    }

    #[test]
    fn json_round_trip() {
        let w = tiny_workload();
        let campaign = run_campaign(&w, &[HeuristicTriple::standard_easy()]);
        let json = serde_json::to_string(&campaign).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, campaign);
    }
}
