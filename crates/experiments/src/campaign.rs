//! The experiment campaign runner.
//!
//! Runs a set of heuristic triples over a workload (in parallel via
//! rayon — every simulation is independent) and collects per-triple
//! scheduling and prediction metrics. A [`CampaignResult`] is the unit
//! Tables 6–7 and Figure 3 are computed from.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use predictsim_core::{mae_of_outcomes, mean_eloss_of_outcomes};
use predictsim_metrics::bsld::{fraction_bsld_above, max_bsld};
use predictsim_metrics::DEFAULT_TAU;
use predictsim_sim::{Job, SimConfig, SimResult};
use predictsim_workload::GeneratedWorkload;

use crate::scenario::Scenario;
use crate::source::{LoadedWorkload, SourceError, WorkloadSource};
use crate::triple::HeuristicTriple;

/// Aggregated metrics of one triple on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripleResult {
    /// Triple display name (unique within a campaign).
    pub triple: String,
    /// Predictor component name.
    pub predictor: String,
    /// Correction component name, if any.
    pub correction: Option<String>,
    /// Backfilling variant name.
    pub variant: String,
    /// The paper's objective: average bounded slowdown (τ = 10 s).
    pub ave_bsld: f64,
    /// Maximum bounded slowdown (the §6.5 extreme-value diagnostic).
    pub max_bsld: f64,
    /// Fraction of jobs with bsld > 1000 (§6.5's "extremely high").
    pub extreme_fraction: f64,
    /// Mean waiting time, seconds.
    pub mean_wait: f64,
    /// Machine utilization achieved.
    pub utilization: f64,
    /// Total §5.2 corrections applied.
    pub corrections: u64,
    /// MAE of initial predictions (Table 8).
    pub mae: f64,
    /// Mean E-Loss of initial predictions (Table 8).
    pub mean_eloss: f64,
}

impl TripleResult {
    /// Builds the aggregate from a finished simulation.
    pub fn from_sim(triple: &HeuristicTriple, result: &SimResult) -> Self {
        let records: Vec<predictsim_metrics::BsldRecord> =
            result.outcomes.iter().map(|o| o.bsld_record()).collect();
        Self {
            triple: triple.name(),
            predictor: triple.prediction.name(),
            correction: triple.correction.map(|c| c.name().to_string()),
            variant: triple.variant.name().to_string(),
            ave_bsld: result.ave_bsld(),
            max_bsld: max_bsld(&records, DEFAULT_TAU),
            extreme_fraction: fraction_bsld_above(&records, DEFAULT_TAU, 1000.0),
            mean_wait: result.mean_wait(),
            utilization: result.utilization(),
            corrections: result.total_corrections(),
            mae: mae_of_outcomes(&result.outcomes),
            mean_eloss: mean_eloss_of_outcomes(&result.outcomes),
        }
    }
}

/// All triple results for one workload log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Workload (log) name.
    pub log: String,
    /// Machine size simulated.
    pub machine_size: u32,
    /// Number of jobs simulated.
    pub jobs: usize,
    /// Per-triple aggregates, in the order the triples were given.
    pub results: Vec<TripleResult>,
}

impl CampaignResult {
    /// Finds a triple's result by its display name.
    pub fn get(&self, triple_name: &str) -> Option<&TripleResult> {
        self.results.iter().find(|r| r.triple == triple_name)
    }

    /// The best (lowest AVEbsld) result, optionally restricted by a
    /// predicate.
    pub fn best_where<F: Fn(&TripleResult) -> bool>(&self, pred: F) -> Option<&TripleResult> {
        self.results
            .iter()
            .filter(|r| pred(r))
            .min_by(|a, b| a.ave_bsld.partial_cmp(&b.ave_bsld).expect("finite bsld"))
    }

    /// The worst (highest AVEbsld) result under a predicate.
    pub fn worst_where<F: Fn(&TripleResult) -> bool>(&self, pred: F) -> Option<&TripleResult> {
        self.results
            .iter()
            .filter(|r| pred(r))
            .max_by(|a, b| a.ave_bsld.partial_cmp(&b.ave_bsld).expect("finite bsld"))
    }

    /// AVEbsld of a named triple; panics if absent (campaign bug).
    pub fn bsld_of(&self, triple_name: &str) -> f64 {
        self.get(triple_name)
            .unwrap_or_else(|| panic!("triple {triple_name} missing from campaign"))
            .ave_bsld
    }
}

/// Runs `triples` on a shared job vector, in parallel, through the
/// [`Scenario`] API (one workload-less scenario per triple).
fn run_campaign_jobs(
    log: &str,
    machine_size: u32,
    jobs: &[Job],
    triples: &[HeuristicTriple],
) -> CampaignResult {
    let config = SimConfig { machine_size };
    let results: Vec<TripleResult> = triples
        .par_iter()
        .map(|triple| {
            let sim = Scenario::from_triple(triple)
                .run_on(jobs, config)
                .unwrap_or_else(|e| panic!("triple {} failed: {e}", triple.name()));
            TripleResult::from_sim(triple, &sim)
        })
        .collect();
    CampaignResult {
        log: log.to_string(),
        machine_size,
        jobs: jobs.len(),
        results,
    }
}

/// Runs `triples` on `workload`, in parallel.
///
/// # Panics
///
/// Panics if any simulation rejects the workload — the generator's output
/// is validated, so a failure here is a bug, not an input condition.
pub fn run_campaign(workload: &GeneratedWorkload, triples: &[HeuristicTriple]) -> CampaignResult {
    run_campaign_jobs(
        &workload.name,
        workload.machine_size,
        &workload.jobs,
        triples,
    )
}

/// Runs `triples` on an already loaded workload (synthetic or SWF — see
/// [`crate::source`]), in parallel.
pub fn run_campaign_loaded(
    workload: &LoadedWorkload,
    triples: &[HeuristicTriple],
) -> CampaignResult {
    run_campaign_jobs(
        &workload.name,
        workload.machine_size,
        &workload.jobs,
        triples,
    )
}

/// Loads `source` and runs `triples` on it: the one-call campaign for
/// any [`WorkloadSource`].
pub fn run_campaign_source(
    source: &dyn WorkloadSource,
    triples: &[HeuristicTriple],
) -> Result<CampaignResult, SourceError> {
    let loaded = source.load()?;
    Ok(run_campaign_loaded(&loaded, triples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::{reference_triples, HeuristicTriple, Variant};
    use predictsim_workload::{generate, WorkloadSpec};

    fn tiny_workload() -> GeneratedWorkload {
        let mut spec = WorkloadSpec::toy();
        spec.jobs = 300;
        spec.duration = 3 * 86_400;
        generate(&spec, 11)
    }

    #[test]
    fn campaign_runs_named_triples() {
        let w = tiny_workload();
        let triples = vec![
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
            HeuristicTriple::paper_winner(),
            HeuristicTriple::clairvoyant(Variant::EasySjbf),
        ];
        let campaign = run_campaign(&w, &triples);
        assert_eq!(campaign.results.len(), 4);
        assert_eq!(campaign.jobs, 300);
        for r in &campaign.results {
            assert!(r.ave_bsld >= 1.0, "{}: bsld {}", r.triple, r.ave_bsld);
            assert!(r.utilization > 0.0);
        }
        assert!(campaign.get("requested+easy").is_some());
        assert!(campaign.get("nonexistent").is_none());
        let best = campaign.best_where(|_| true).unwrap();
        let worst = campaign.worst_where(|_| true).unwrap();
        assert!(best.ave_bsld <= worst.ave_bsld);
    }

    #[test]
    fn campaign_is_deterministic_despite_parallelism() {
        let w = tiny_workload();
        let triples = vec![
            HeuristicTriple::standard_easy(),
            HeuristicTriple::paper_winner(),
        ];
        let a = run_campaign(&w, &triples);
        let b = run_campaign(&w, &triples);
        assert_eq!(a, b);
    }

    #[test]
    fn reference_triples_have_no_corrections() {
        let w = tiny_workload();
        let campaign = run_campaign(&w, &reference_triples());
        for r in &campaign.results {
            assert_eq!(r.corrections, 0, "clairvoyant must never correct");
            assert_eq!(r.mae, 0.0, "clairvoyant MAE is zero by definition");
        }
    }

    #[test]
    fn json_round_trip() {
        let w = tiny_workload();
        let campaign = run_campaign(&w, &[HeuristicTriple::standard_easy()]);
        let json = serde_json::to_string(&campaign).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, campaign);
    }
}
