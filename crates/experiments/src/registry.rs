//! The string-keyed policy registry.
//!
//! Every scheduling policy, prediction technique, and correction
//! mechanism in the workspace is addressable by a stable name —
//! `"easy-sjbf"`, `"ave2"`, `"ml(u=lin,o=sq,g=area)"`, `"incremental"` —
//! and every name round-trips: `parse(name).to_string() == name`. The
//! [`crate::scenario::Scenario`] builder, the `repro` binary's
//! `--scheduler/--predictor/--correction` flags, and `repro --list` are
//! all fronts over this module, so adding a policy here makes it reach
//! every entry point at once.
//!
//! Accepted spellings:
//!
//! * **Schedulers** ([`Variant`]): `easy`, `easy-sjbf`, `fcfs`,
//!   `conservative`.
//! * **Corrections** ([`CorrectionKind`]): `req-time`, `incremental`,
//!   `rec-doubling` (aliases: `requested-time`, `recursive-doubling`).
//! * **Predictors** ([`PredictionTechnique`]): `clairvoyant`,
//!   `requested`, `ave2`, and the learning family in either the display
//!   form `ml(u=<lin|sq>,o=<lin|sq>,g=<1|q/p|p/q|small|area>)` or the
//!   flag-friendly colon form `ml:u=sq,o=sq,g=q/p`, optionally suffixed
//!   with `+sgd` / `+adagrad` (optimizer ablation) and `+lin-basis`
//!   (basis ablation).
//! * **Triples** ([`HeuristicTriple`]): `<predictor>[+<correction>]+
//!   <scheduler>`, exactly the names the campaign tables print.
//!
//! Unknown names never panic; they return a typed [`RegistryError`].

use std::str::FromStr;

use predictsim_core::loss::{loss_shapes, AsymmetricLoss, BasisLoss};
use predictsim_core::predictor::{ml_grid, BasisKind, MlConfig, OptimizerKind};
use predictsim_core::weighting::WeightingScheme;
use predictsim_sim::ClusterSpec;

use crate::triple::{CorrectionKind, HeuristicTriple, PredictionTechnique, Variant};

/// A name that failed to resolve against the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Not a registered scheduler (backfilling variant) name.
    UnknownScheduler(String),
    /// Not a registered prediction-technique name.
    UnknownPredictor(String),
    /// Not a registered correction-mechanism name.
    UnknownCorrection(String),
    /// A `ml(...)` / `ml:...` spec whose body does not parse.
    MalformedMl {
        /// The offending spec, as given.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A heuristic-triple name missing its scheduler segment.
    MalformedTriple(String),
    /// A `--cluster` spec that does not parse as a [`ClusterSpec`].
    MalformedCluster {
        /// The offending spec, as given.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownScheduler(name) => {
                write!(f, "unknown scheduler {name:?} (try `repro --list`)")
            }
            RegistryError::UnknownPredictor(name) => {
                write!(f, "unknown predictor {name:?} (try `repro --list`)")
            }
            RegistryError::UnknownCorrection(name) => {
                write!(f, "unknown correction {name:?} (try `repro --list`)")
            }
            RegistryError::MalformedMl { spec, reason } => {
                write!(f, "malformed ml spec {spec:?}: {reason}")
            }
            RegistryError::MalformedTriple(name) => {
                write!(
                    f,
                    "malformed triple {name:?}: expected <predictor>[+<correction>]+<scheduler>"
                )
            }
            RegistryError::MalformedCluster { spec, reason } => {
                write!(
                    f,
                    "malformed cluster {spec:?}: {reason} \
                     (expected `<procs>` or `cluster:<size>[x<speed>][+<size>[x<speed>]...]`)"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Variant {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "easy" => Ok(Variant::Easy),
            "easy-sjbf" => Ok(Variant::EasySjbf),
            "fcfs" => Ok(Variant::Fcfs),
            "conservative" => Ok(Variant::Conservative),
            other => Err(RegistryError::UnknownScheduler(other.to_string())),
        }
    }
}

impl std::fmt::Display for CorrectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CorrectionKind {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "req-time" | "requested-time" => Ok(CorrectionKind::RequestedTime),
            "incremental" => Ok(CorrectionKind::Incremental),
            "rec-doubling" | "recursive-doubling" => Ok(CorrectionKind::RecursiveDoubling),
            other => Err(RegistryError::UnknownCorrection(other.to_string())),
        }
    }
}

impl std::fmt::Display for PredictionTechnique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl FromStr for PredictionTechnique {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "clairvoyant" => Ok(PredictionTechnique::Clairvoyant),
            "requested" => Ok(PredictionTechnique::RequestedTime),
            "ave2" => Ok(PredictionTechnique::Ave2),
            other if other.starts_with("ml(") || other.starts_with("ml:") => {
                Ok(PredictionTechnique::Ml(parse_ml(other)?))
            }
            other => Err(RegistryError::UnknownPredictor(other.to_string())),
        }
    }
}

impl std::fmt::Display for HeuristicTriple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl FromStr for HeuristicTriple {
    type Err = RegistryError;

    /// Parses a campaign triple name such as
    /// `"ml(u=lin,o=sq,g=area)+incremental+easy-sjbf"`.
    ///
    /// The last `+`-segment is the scheduler; the segment before it is
    /// taken as the correction when it parses as one (predictor names may
    /// themselves contain `+` — `"ml(...)+sgd"` — so segments that are
    /// not corrections fold back into the predictor).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let segments: Vec<&str> = s.split('+').collect();
        if segments.len() < 2 {
            return Err(RegistryError::MalformedTriple(s.to_string()));
        }
        let variant = Variant::from_str(segments[segments.len() - 1])
            .map_err(|_| RegistryError::MalformedTriple(s.to_string()))?;
        let mut prediction_end = segments.len() - 1;
        let mut correction = None;
        if prediction_end > 1 {
            if let Ok(kind) = CorrectionKind::from_str(segments[prediction_end - 1]) {
                correction = Some(kind);
                prediction_end -= 1;
            }
        }
        let prediction = PredictionTechnique::from_str(&segments[..prediction_end].join("+"))?;
        Ok(HeuristicTriple {
            prediction,
            correction,
            variant,
        })
    }
}

fn parse_basis_loss(code: &str, spec: &str) -> Result<BasisLoss, RegistryError> {
    match code {
        "lin" => Ok(BasisLoss::Linear),
        "sq" => Ok(BasisLoss::Squared),
        other => Err(RegistryError::MalformedMl {
            spec: spec.to_string(),
            reason: format!("unknown basis loss {other:?} (expected `lin` or `sq`)"),
        }),
    }
}

fn parse_weighting(code: &str, spec: &str) -> Result<WeightingScheme, RegistryError> {
    match code {
        "1" => Ok(WeightingScheme::Constant),
        "q/p" => Ok(WeightingScheme::ShortWide),
        "p/q" => Ok(WeightingScheme::LongNarrow),
        "small" => Ok(WeightingScheme::SmallArea),
        "area" => Ok(WeightingScheme::LargeArea),
        other => Err(RegistryError::MalformedMl {
            spec: spec.to_string(),
            reason: format!(
                "unknown weighting {other:?} (expected `1`, `q/p`, `p/q`, `small` or `area`)"
            ),
        }),
    }
}

/// Parses a learning-configuration spec: the canonical display form
/// `ml(u=..,o=..,g=..)` or the colon form `ml:u=..,o=..,g=..`, each with
/// optional `+sgd`/`+adagrad` and `+lin-basis` suffixes.
pub fn parse_ml(spec: &str) -> Result<MlConfig, RegistryError> {
    let malformed = |reason: &str| RegistryError::MalformedMl {
        spec: spec.to_string(),
        reason: reason.to_string(),
    };
    // Split off the body from the suffix list.
    let (body, suffixes): (&str, &str) = if let Some(rest) = spec.strip_prefix("ml(") {
        let close = rest.find(')').ok_or_else(|| malformed("missing `)`"))?;
        (&rest[..close], &rest[close + 1..])
    } else if let Some(rest) = spec.strip_prefix("ml:") {
        match rest.find('+') {
            Some(plus) => (&rest[..plus], &rest[plus..]),
            None => (rest, ""),
        }
    } else {
        return Err(malformed("expected `ml(...)` or `ml:...`"));
    };

    let mut under = None;
    let mut over = None;
    let mut weighting = None;
    for field in body.split(',') {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| malformed(&format!("field {field:?} is not `key=value`")))?;
        match key {
            "u" => under = Some(parse_basis_loss(value, spec)?),
            "o" => over = Some(parse_basis_loss(value, spec)?),
            "g" => weighting = Some(parse_weighting(value, spec)?),
            other => return Err(malformed(&format!("unknown field {other:?}"))),
        }
    }
    let loss = AsymmetricLoss {
        under: under.ok_or_else(|| malformed("missing `u=` field"))?,
        over: over.ok_or_else(|| malformed("missing `o=` field"))?,
    };
    let mut config = MlConfig::new(
        loss,
        weighting.ok_or_else(|| malformed("missing `g=` field"))?,
    );

    for suffix in suffixes.split('+').filter(|s| !s.is_empty()) {
        match suffix {
            "sgd" => config.optimizer = OptimizerKind::Sgd,
            "adagrad" => config.optimizer = OptimizerKind::AdaGrad,
            "lin-basis" => config.basis = BasisKind::Linear,
            other => return Err(malformed(&format!("unknown suffix {other:?}"))),
        }
    }
    Ok(config)
}

/// Parses a cluster spec — the legacy `"64"` shorthand or the
/// `"cluster:64x1+32x0.5"` grammar (see [`ClusterSpec`]) — into a typed
/// value, folding parse failures into a [`RegistryError`] like every
/// other registry name. The parsed spec round-trips through
/// [`ClusterSpec`]'s canonical `Display` form.
pub fn parse_cluster(spec: &str) -> Result<ClusterSpec, RegistryError> {
    spec.parse::<ClusterSpec>()
        .map_err(|e| RegistryError::MalformedCluster {
            spec: spec.to_string(),
            reason: e.to_string(),
        })
}

/// One registry row: a canonical policy name and a one-line description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyEntry {
    /// Canonical (round-tripping) name.
    pub name: String,
    /// One-line human description.
    pub description: String,
}

impl PolicyEntry {
    fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
        }
    }
}

/// The registered schedulers (backfilling variants, §5.1).
pub fn registered_schedulers() -> Vec<PolicyEntry> {
    vec![
        PolicyEntry::new("easy", "EASY backfilling, FCFS backfill order (§5.1)"),
        PolicyEntry::new(
            "easy-sjbf",
            "EASY with Shortest-Job-Backfilled-First order [24]",
        ),
        PolicyEntry::new("fcfs", "first-come-first-served, no backfilling (ablation)"),
        PolicyEntry::new("conservative", "conservative backfilling [14] (ablation)"),
    ]
}

/// The registered prediction techniques (§6.2): the three baselines plus
/// the 20 learning configurations of the Table 5 grid.
pub fn registered_predictors() -> Vec<PolicyEntry> {
    let mut entries = vec![
        PolicyEntry::new(
            "clairvoyant",
            "exact running times (upper-bound reference, Table 1/6)",
        ),
        PolicyEntry::new(
            "requested",
            "the user-requested time — standard EASY's information",
        ),
        PolicyEntry::new("ave2", "AVE2(k) of Tsafrir et al. [24]; EASY++'s predictor"),
    ];
    for cfg in ml_grid() {
        entries.push(PolicyEntry::new(
            cfg.name(),
            format!(
                "NAG-trained polynomial regression, {} loss, {} weight (Table 5)",
                cfg.loss.code(),
                cfg.weighting.code()
            ),
        ));
    }
    entries
}

/// The registered correction mechanisms (§5.2).
pub fn registered_corrections() -> Vec<PolicyEntry> {
    vec![
        PolicyEntry::new("req-time", "fall back to the requested time (§5.2)"),
        PolicyEntry::new("incremental", "Tsafrir's fixed-increment list (§5.2)"),
        PolicyEntry::new("rec-doubling", "double the elapsed running time (§5.2)"),
    ]
}

/// Renders the whole registry as the `repro --list` inventory.
pub fn render_registry() -> String {
    let section = |title: &str, entries: &[PolicyEntry]| {
        let mut out = format!("## {title}\n\n");
        for e in entries {
            out.push_str(&format!("  {:<28} {}\n", e.name, e.description));
        }
        out.push('\n');
        out
    };
    let mut out = String::from("# Registered policies\n\n");
    out.push_str(&section("Schedulers", &registered_schedulers()));
    out.push_str(&section("Predictors", &registered_predictors()));
    out.push_str(&section("Corrections", &registered_corrections()));
    out.push_str(
        "Combine as `<predictor>[+<correction>]+<scheduler>` (a heuristic triple),\n\
         e.g. `ml(u=lin,o=sq,g=area)+incremental+easy-sjbf`. The colon form\n\
         `ml:u=lin,o=sq,g=area` is accepted anywhere the display form is.\n",
    );
    out
}

/// The four basis-loss shapes of Table 5 exist only through [`loss_shapes`];
/// re-check the registry covers them (used by the property tests).
pub fn registered_loss_shape_count() -> usize {
    loss_shapes().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedulers_round_trip() {
        for entry in registered_schedulers() {
            let v: Variant = entry.name.parse().expect("registered name parses");
            assert_eq!(v.to_string(), entry.name);
        }
    }

    #[test]
    fn corrections_round_trip_and_aliases_resolve() {
        for entry in registered_corrections() {
            let c: CorrectionKind = entry.name.parse().expect("registered name parses");
            assert_eq!(c.to_string(), entry.name);
        }
        assert_eq!(
            "requested-time".parse::<CorrectionKind>().unwrap(),
            CorrectionKind::RequestedTime
        );
        assert_eq!(
            "recursive-doubling".parse::<CorrectionKind>().unwrap(),
            CorrectionKind::RecursiveDoubling
        );
    }

    #[test]
    fn predictors_round_trip() {
        for entry in registered_predictors() {
            let p: PredictionTechnique = entry.name.parse().expect("registered name parses");
            assert_eq!(p.to_string(), entry.name);
        }
    }

    #[test]
    fn colon_form_is_equivalent_to_display_form() {
        let a: PredictionTechnique = "ml:u=sq,o=sq,g=q/p".parse().unwrap();
        let b: PredictionTechnique = "ml(u=sq,o=sq,g=q/p)".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "ml(u=sq,o=sq,g=q/p)");
    }

    #[test]
    fn ml_suffixes_parse_in_both_forms() {
        let cfg = parse_ml("ml(u=lin,o=sq,g=area)+sgd+lin-basis").unwrap();
        assert_eq!(cfg.optimizer, OptimizerKind::Sgd);
        assert_eq!(cfg.basis, BasisKind::Linear);
        let colon = parse_ml("ml:u=lin,o=sq,g=area+adagrad").unwrap();
        assert_eq!(colon.optimizer, OptimizerKind::AdaGrad);
        // Round trip through the display name.
        assert_eq!(parse_ml(&cfg.name()).unwrap(), cfg);
    }

    #[test]
    fn triples_round_trip() {
        for triple in [
            HeuristicTriple::standard_easy(),
            HeuristicTriple::easy_plus_plus(),
            HeuristicTriple::paper_winner(),
            HeuristicTriple::clairvoyant(Variant::EasySjbf),
        ] {
            let parsed: HeuristicTriple = triple.name().parse().expect("triple name parses");
            assert_eq!(parsed, triple);
            assert_eq!(parsed.to_string(), triple.name());
        }
    }

    #[test]
    fn every_campaign_triple_round_trips() {
        for triple in crate::triple::campaign_triples() {
            let parsed: HeuristicTriple = triple.name().parse().expect("campaign name parses");
            assert_eq!(parsed, triple, "{}", triple.name());
        }
    }

    #[test]
    fn unknown_names_give_typed_errors() {
        assert!(matches!(
            "sjf".parse::<Variant>(),
            Err(RegistryError::UnknownScheduler(_))
        ));
        assert!(matches!(
            "oracle".parse::<PredictionTechnique>(),
            Err(RegistryError::UnknownPredictor(_))
        ));
        assert!(matches!(
            "triple-doubling".parse::<CorrectionKind>(),
            Err(RegistryError::UnknownCorrection(_))
        ));
        assert!(matches!(
            "just-one-segment".parse::<HeuristicTriple>(),
            Err(RegistryError::MalformedTriple(_))
        ));
        assert!(matches!(
            "ml(u=cubic,o=sq,g=area)".parse::<PredictionTechnique>(),
            Err(RegistryError::MalformedMl { .. })
        ));
        assert!(matches!(
            parse_ml("ml(u=lin,o=sq)"),
            Err(RegistryError::MalformedMl { .. })
        ));
        assert!(matches!(
            parse_ml("ml(u=lin,o=sq,g=area"),
            Err(RegistryError::MalformedMl { .. })
        ));
        let err = "sjf".parse::<Variant>().unwrap_err();
        assert!(err.to_string().contains("sjf"));
    }

    #[test]
    fn cluster_specs_round_trip_through_the_registry() {
        // Legacy shorthand: a bare processor count is the single
        // homogeneous machine, displayed canonically as `cluster:<n>`.
        let legacy = parse_cluster("64").unwrap();
        assert_eq!(legacy, ClusterSpec::single(64));
        assert_eq!(legacy.to_string(), "cluster:64");
        assert_eq!(parse_cluster(&legacy.to_string()).unwrap(), legacy);
        // Heterogeneous forms round-trip through the canonical display.
        for spec in ["cluster:64x1+32x0.5", "cluster:16x2", "cluster:8+8+8"] {
            let parsed = parse_cluster(spec).unwrap();
            assert_eq!(parse_cluster(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn malformed_cluster_specs_give_typed_errors() {
        for bad in [
            "",
            "cluster:",
            "cluster:0",
            "cluster:8x-1",
            "cluster:8xfast",
            "potato",
        ] {
            let err = parse_cluster(bad).unwrap_err();
            assert!(
                matches!(err, RegistryError::MalformedCluster { .. }),
                "{bad:?} must be MalformedCluster, got {err:?}"
            );
            assert!(err.to_string().contains("malformed cluster"));
        }
        // Too many partitions is rejected, not truncated.
        let wide = format!("cluster:{}", ["4"; 9].join("+"));
        assert!(matches!(
            parse_cluster(&wide),
            Err(RegistryError::MalformedCluster { .. })
        ));
    }

    #[test]
    fn registry_rendering_lists_everything() {
        let listing = render_registry();
        assert!(listing.contains("easy-sjbf"));
        assert!(listing.contains("ml(u=lin,o=sq,g=area)"));
        assert!(listing.contains("rec-doubling"));
        assert_eq!(registered_predictors().len(), 3 + 20);
        assert_eq!(registered_loss_shape_count(), 4);
    }
}
