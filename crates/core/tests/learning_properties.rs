//! Property-based tests of the learning stack.
//!
//! The headline property is the one §4.2 buys by choosing NAG:
//! *robustness to adversarial feature scaling*. Rescaling any feature by a
//! positive constant must leave the model's prediction sequence
//! (essentially) unchanged.

use proptest::prelude::*;

use predictsim_core::basis::Basis;
use predictsim_core::loss::{loss_shapes, AsymmetricLoss};
use predictsim_core::model::OnlineRegression;
use predictsim_core::optimizer::{NagOptimizer, OnlineOptimizer, SgdOptimizer};
use predictsim_core::weighting::WeightingScheme;

/// Runs the same example stream through a fresh model, with feature `k`
/// multiplied by `scale`, and returns the prediction before each update.
fn prediction_trace(
    examples: &[([f64; 3], f64)],
    scale: f64,
    scaled_feature: usize,
    eta: f64,
) -> Vec<f64> {
    let basis = Basis::polynomial(3);
    let optimizer: Box<dyn OnlineOptimizer> = Box::new(NagOptimizer::new(basis.output_dim(), eta));
    let mut model = OnlineRegression::with_parts(
        basis,
        optimizer,
        AsymmetricLoss::SQUARED,
        WeightingScheme::Constant,
        0.0, // l2 off: the regularizer is the one non-invariant term
    );
    let mut trace = Vec::with_capacity(examples.len());
    for (x, y) in examples {
        let mut x = *x;
        x[scaled_feature] *= scale;
        trace.push(model.predict(&x));
        model.learn(&x, *y, 1.0);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NAG's selling point: per-feature rescaling leaves predictions
    /// (nearly) unchanged. "Nearly" because the polynomial basis mixes
    /// coordinates and floating point is floating point — we allow a
    /// small relative tolerance.
    #[test]
    fn nag_predictions_invariant_to_feature_scaling(
        examples in prop::collection::vec(
            ((0.1f64..10.0, 0.1f64..10.0, 0.1f64..10.0), 1.0f64..1000.0)
                .prop_map(|((a, b, c), y)| ([a, b, c], y)),
            20..60
        ),
        scale in prop_oneof![Just(0.001f64), Just(0.1f64), Just(100.0f64), Just(10_000.0f64)],
        which in 0usize..3,
    ) {
        let base = prediction_trace(&examples, 1.0, which, 0.5);
        let scaled = prediction_trace(&examples, scale, which, 0.5);
        for (i, (b, s)) in base.iter().zip(&scaled).enumerate() {
            let denom = b.abs().max(1.0);
            prop_assert!(
                ((b - s) / denom).abs() < 1e-6,
                "step {i}: base {b} vs scaled {s} (scale {scale} on x{which})"
            );
        }
    }

    /// Control experiment: plain SGD is *not* scale invariant — rescaling
    /// a feature by 100× visibly changes its prediction sequence. (This is
    /// exactly why the paper uses NAG.)
    #[test]
    fn sgd_is_not_scale_invariant(
        seed in 0u64..1000,
    ) {
        let examples: Vec<([f64; 3], f64)> = (0..40)
            .map(|i| {
                let v = ((i * 7 + seed as usize) % 10) as f64 + 1.0;
                ([v, 11.0 - v, (i % 3) as f64 + 1.0], 10.0 * v)
            })
            .collect();
        let run = |scale: f64| {
            let basis = Basis::polynomial(3);
            let optimizer: Box<dyn OnlineOptimizer> = Box::new(SgdOptimizer::new(1e-4));
            let mut model = OnlineRegression::with_parts(
                basis, optimizer, AsymmetricLoss::SQUARED, WeightingScheme::Constant, 0.0,
            );
            let mut trace = Vec::new();
            for (x, y) in &examples {
                let mut x = *x;
                x[0] *= scale;
                trace.push(model.predict(&x));
                model.learn(&x, *y, 1.0);
            }
            trace
        };
        let base = run(1.0);
        let scaled = run(100.0);
        // A diverged (non-finite) trace counts as "changed" too: SGD on
        // badly scaled features often simply blows up.
        let diverged = base.iter().zip(&scaled).any(|(b, s)| {
            !s.is_finite() || !b.is_finite() || ((b - s) / b.abs().max(1.0)).abs() > 1e-3
        });
        prop_assert!(diverged, "SGD unexpectedly scale-invariant");
    }

    /// Learning on any loss shape never produces NaN/∞ weights or
    /// predictions, even with adversarial target magnitudes.
    #[test]
    fn learning_stays_finite(
        ys in prop::collection::vec(prop_oneof![1.0f64..10.0, 1e5f64..1e6], 10..80),
        shape_idx in 0usize..4,
        weight_idx in 0usize..5,
    ) {
        let loss = loss_shapes()[shape_idx];
        let weighting = WeightingScheme::ALL[weight_idx];
        let mut model = OnlineRegression::new(3, loss, weighting);
        for (i, &y) in ys.iter().enumerate() {
            let x = [(i % 5) as f64 + 1.0, (i % 7) as f64, y / 1000.0];
            let f = model.predict(&x);
            prop_assert!(f.is_finite(), "prediction diverged at step {i}: {f}");
            let rec = model.learn(&x, y, 4.0);
            prop_assert!(rec.loss.is_finite());
        }
        prop_assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    /// On a user with perfectly repetitive runtimes, the two *symmetric*
    /// loss shapes converge tightly to the repeated value, and the two
    /// asymmetric shapes land on the conservative side their squared
    /// branch dictates (the E-Loss's strong small-prediction bias is a
    /// *feature* the paper documents with Figure 5, not a bug): below the
    /// target but positive for E-Loss, above the target but bounded for
    /// the reverse shape.
    #[test]
    fn repetitive_target_learning_respects_loss_shape(
        target in 100.0f64..10_000.0,
        shape_idx in 0usize..4,
    ) {
        let loss = loss_shapes()[shape_idx];
        let symmetric = loss.under == loss.over;
        let mut model = OnlineRegression::new(2, loss, WeightingScheme::Constant);
        let x = [1.0, 2.0];
        let mut f = 0.0;
        for _ in 0..1500 {
            f = model.predict(&x);
            model.learn(&x, target, 1.0);
        }
        if symmetric {
            let rel = (f - target).abs() / target;
            prop_assert!(rel < 0.25, "shape {shape_idx}: predicted {f} for target {target}");
        } else {
            prop_assert!(f > 0.0, "shape {shape_idx}: prediction {f} collapsed");
            prop_assert!(
                f < 3.0 * target,
                "shape {shape_idx}: prediction {f} diverged above 3x target {target}"
            );
        }
    }
}
