//! Property tests of the dense user-interning seam.
//!
//! The engine and the learning stack index every per-user structure
//! (the running index, the feature extractor's user histories) by the
//! *interned* `Job::user_ix`, never by the raw user id. The contract
//! that makes this safe: simulation output must depend only on the
//! interning *structure* — which jobs share a user — and never on the
//! raw id values. So relabeling raw users through any injective map
//! must leave every outcome byte-identical except the reported raw
//! `user` field, whatever the id space looks like (dense, sparse, or
//! huge-wraparound).

use proptest::prelude::*;

use predictsim_core::{IncrementalCorrection, MlPredictor};
use predictsim_sim::{intern_users, simulate, EasyScheduler, Job, JobId, SimConfig, Time};

const MACHINE: u32 = 16;

fn arb_jobs(n: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0i64..400,      // interarrival gap
            1i64..3_000,    // run time
            1.0f64..8.0,    // over-estimation factor
            1u32..=MACHINE, // procs
            0u32..5,        // raw user (colliding space)
        ),
        1..n,
    )
    .prop_map(|specs| {
        let mut t = 0;
        let mut jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (gap, run, over, procs, user))| {
                t += gap;
                Job {
                    id: JobId(i as u32),
                    submit: Time(t),
                    run,
                    requested: ((run as f64 * over) as i64).max(run),
                    procs,
                    user,
                    user_ix: 0,
                    swf_id: i as u64 + 1,
                }
            })
            .collect();
        intern_users(&mut jobs);
        jobs
    })
}

/// Injective raw-user relabelings covering the id spaces the readers
/// produce: dense, sparse (large strides), and huge (wraparound
/// multiplier, injective because the multiplier is odd).
fn relabel(user: u32, mode: u8) -> u32 {
    match mode {
        0 => user,                              // dense
        1 => user * 100_000_003 % u32::MAX + 7, // sparse
        _ => user.wrapping_mul(2_654_435_761),  // huge, hash-like
    }
}

fn run(jobs: &[Job]) -> Vec<predictsim_sim::JobOutcome> {
    let mut predictor = MlPredictor::e_loss();
    let correction = IncrementalCorrection::new();
    simulate(
        jobs,
        SimConfig::single(MACHINE),
        &mut EasyScheduler::sjbf(),
        &mut predictor,
        Some(&correction),
    )
    .expect("simulation succeeds")
    .outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation output is invariant under injective relabeling of the
    /// raw user-id space: the full learning pipeline (EASY-SJBF + NAG
    /// predictor + incremental correction) sees only interned indices.
    #[test]
    fn outcomes_invariant_under_user_relabeling(
        jobs in arb_jobs(60),
        mode in 1u8..3,
    ) {
        let base = run(&jobs);

        let mut relabeled: Vec<Job> = jobs
            .iter()
            .map(|j| Job {
                user: relabel(j.user, mode),
                user_ix: 0,
                ..j.clone()
            })
            .collect();
        let users = intern_users(&mut relabeled);
        // Injective relabeling preserves the interning structure …
        prop_assert!(relabeled
            .iter()
            .zip(&jobs)
            .all(|(r, b)| r.user_ix == b.user_ix));
        let expected_users = {
            let mut raw: Vec<u32> = jobs.iter().map(|j| j.user).collect();
            raw.sort_unstable();
            raw.dedup();
            raw.len() as u32
        };
        prop_assert_eq!(users, expected_users);

        // … and therefore every outcome, modulo the raw user label.
        let out = run(&relabeled);
        prop_assert_eq!(base.len(), out.len());
        for (b, o) in base.iter().zip(&out) {
            prop_assert_eq!(o.user, relabel(b.user, mode));
            let mut o = o.clone();
            o.user = b.user;
            prop_assert_eq!(&o, b);
        }
    }
}
