//! Degree-2 polynomial basis expansion — Equation (1) of the paper.
//!
//! The regression function is `f(w, x) = wᵀ Φ(x)` with
//!
//! ```text
//! Φ(x) = (1, x₁, …, x_n, x₁x₁, x₁x₂, …, x_k x_l, …, x_n x_n)ᵀ,  k ≤ l
//! ```
//!
//! so `w ∈ R^(1 + 2n + C(n,2))`: one bias term, `n` linear terms, `n`
//! squares and `C(n,2)` cross products. The quadratic terms let the linear
//! learner capture dependencies *between* features (§4.2), e.g. "requested
//! time × resource request".

/// Dimension of the expanded representation for `n` input features.
pub const fn expanded_dim(n: usize) -> usize {
    1 + 2 * n + n * (n - 1) / 2
}

/// Degree-2 polynomial feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolynomialBasis {
    n: usize,
}

impl PolynomialBasis {
    /// A basis over `n` raw features.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "basis needs at least one feature");
        Self { n }
    }

    /// Number of raw input features.
    pub fn input_dim(&self) -> usize {
        self.n
    }

    /// Dimension of `Φ(x)`.
    pub fn output_dim(&self) -> usize {
        expanded_dim(self.n)
    }

    /// Writes `Φ(x)` into `out`.
    ///
    /// Layout: `[1 | x₁…x_n | x₁x₁, x₁x₂, …, x₁x_n, x₂x₂, …, x_n x_n]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()` or `out.len() != output_dim()`.
    pub fn expand_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input dimension mismatch");
        assert_eq!(out.len(), self.output_dim(), "output dimension mismatch");
        out[0] = 1.0;
        out[1..=self.n].copy_from_slice(x);
        let mut idx = self.n + 1;
        for k in 0..self.n {
            for l in k..self.n {
                out[idx] = x[k] * x[l];
                idx += 1;
            }
        }
        debug_assert_eq!(idx, out.len());
    }

    /// Allocating convenience form of [`PolynomialBasis::expand_into`].
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_dim()];
        self.expand_into(x, &mut out);
        out
    }

    /// Name of the expanded component at `index`, given raw-feature
    /// `names`; used for model inspection dumps.
    pub fn component_name(&self, index: usize, names: &[&str]) -> String {
        assert_eq!(names.len(), self.n);
        if index == 0 {
            return "bias".to_string();
        }
        if index <= self.n {
            return names[index - 1].to_string();
        }
        let mut idx = self.n + 1;
        for k in 0..self.n {
            for l in k..self.n {
                if idx == index {
                    return format!("{}*{}", names[k], names[l]);
                }
                idx += 1;
            }
        }
        panic!("component index {index} out of range");
    }
}

/// A linear (degree-1) basis used by the basis-ablation bench: `Φ(x) =
/// (1, x₁, …, x_n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearBasis {
    n: usize,
}

impl LinearBasis {
    /// A linear basis over `n` raw features.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "basis needs at least one feature");
        Self { n }
    }

    /// Number of raw input features.
    pub fn input_dim(&self) -> usize {
        self.n
    }

    /// Dimension of the expansion (`n + 1`).
    pub fn output_dim(&self) -> usize {
        self.n + 1
    }

    /// Writes `(1, x)` into `out`.
    pub fn expand_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input dimension mismatch");
        assert_eq!(out.len(), self.n + 1, "output dimension mismatch");
        out[0] = 1.0;
        out[1..].copy_from_slice(x);
    }
}

/// Either basis, behind one type so the model can be configured at run
/// time without generics leaking into every signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Degree-2 polynomial (the paper's choice).
    Polynomial(PolynomialBasis),
    /// Degree-1 (ablation).
    Linear(LinearBasis),
}

impl Basis {
    /// The paper's degree-2 basis over `n` features.
    pub fn polynomial(n: usize) -> Self {
        Basis::Polynomial(PolynomialBasis::new(n))
    }

    /// The ablation degree-1 basis over `n` features.
    pub fn linear(n: usize) -> Self {
        Basis::Linear(LinearBasis::new(n))
    }

    /// Raw input dimension.
    pub fn input_dim(&self) -> usize {
        match self {
            Basis::Polynomial(b) => b.input_dim(),
            Basis::Linear(b) => b.input_dim(),
        }
    }

    /// Expanded dimension.
    pub fn output_dim(&self) -> usize {
        match self {
            Basis::Polynomial(b) => b.output_dim(),
            Basis::Linear(b) => b.output_dim(),
        }
    }

    /// Writes the expansion of `x` into `out`.
    pub fn expand_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            Basis::Polynomial(b) => b.expand_into(x, out),
            Basis::Linear(b) => b.expand_into(x, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_the_paper() {
        // w ∈ R^(1+2n+C(n,2)) — §4.2, Equation (1).
        assert_eq!(expanded_dim(1), 3); // 1, x, x²
        assert_eq!(expanded_dim(2), 6); // 1, x1, x2, x1², x1x2, x2²
        assert_eq!(expanded_dim(20), 1 + 40 + 190);
        let b = PolynomialBasis::new(20);
        assert_eq!(b.output_dim(), 231);
    }

    #[test]
    fn expansion_layout() {
        let b = PolynomialBasis::new(2);
        let phi = b.expand(&[3.0, 5.0]);
        assert_eq!(phi, vec![1.0, 3.0, 5.0, 9.0, 15.0, 25.0]);
    }

    #[test]
    fn three_feature_expansion() {
        let b = PolynomialBasis::new(3);
        let phi = b.expand(&[1.0, 2.0, 3.0]);
        assert_eq!(
            phi,
            vec![1.0, 1.0, 2.0, 3.0, /* squares+crosses */ 1.0, 2.0, 3.0, 4.0, 6.0, 9.0]
        );
    }

    #[test]
    fn component_names() {
        let b = PolynomialBasis::new(2);
        let names = ["a", "b"];
        assert_eq!(b.component_name(0, &names), "bias");
        assert_eq!(b.component_name(1, &names), "a");
        assert_eq!(b.component_name(2, &names), "b");
        assert_eq!(b.component_name(3, &names), "a*a");
        assert_eq!(b.component_name(4, &names), "a*b");
        assert_eq!(b.component_name(5, &names), "b*b");
    }

    #[test]
    fn linear_basis() {
        let b = LinearBasis::new(3);
        let mut out = vec![0.0; 4];
        b.expand_into(&[7.0, 8.0, 9.0], &mut out);
        assert_eq!(out, vec![1.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn unified_basis_dispatch() {
        let p = Basis::polynomial(4);
        let l = Basis::linear(4);
        assert_eq!(p.output_dim(), expanded_dim(4));
        assert_eq!(l.output_dim(), 5);
        let mut out = vec![0.0; 5];
        l.expand_into(&[1.0, 2.0, 3.0, 4.0], &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dim_panics() {
        PolynomialBasis::new(3).expand(&[1.0]);
    }
}
