//! # predictsim-core
//!
//! The primary contribution of Gaussier, Glesser, Reis & Trystram,
//! *"Improving Backfilling by using Machine Learning to predict Running
//! Times"* (SC '15): **on-line machine-learned running-time prediction
//! engineered for backfilling**, plus the correction mechanisms that make
//! the predictions safe to schedule with.
//!
//! ## The method (§4 of the paper)
//!
//! 1. Each job is represented by the minimal-information feature vector of
//!    Table 2 ([`features`]): the user's requested time and resource
//!    count, per-user running-time history, the user's currently-running
//!    jobs, and periodic encodings of the submission instant.
//! 2. Features pass through a degree-2 polynomial basis ([`basis`]) — the
//!    regression function of Equation (1), `f(w,x) = wᵀΦ(x)`.
//! 3. The weights minimize a cumulative **asymmetric, per-job-weighted
//!    loss** ([`loss`], [`weighting`]) with ℓ2 regularization
//!    (Equation 2): under- and over-prediction get different basis losses
//!    (linear or squared), and jobs get weights γ_j reflecting how much
//!    their misprediction hurts backfilling (Table 3).
//! 4. Learning is on-line via the Normalized Adaptive Gradient algorithm
//!    ([`optimizer`], reference \[19\]), robust to the wild feature scales
//!    of HPC logs.
//! 5. At scheduling time, under-predicted jobs are repaired by a simple
//!    [`correction`] policy (§5.2) rather than by re-querying the model.
//!
//! The winning *heuristic triple* of §6.3.3 is
//! [`predictor::MlPredictor::e_loss`] (E-Loss: squared over-prediction
//! branch, linear under-prediction branch, large-area weight `log(q·p)`)
//! combined with [`correction::IncrementalCorrection`] and EASY-SJBF
//! (in `predictsim-sim`).
//!
//! ## Quick example
//!
//! ```
//! use predictsim_core::correction::IncrementalCorrection;
//! use predictsim_core::predictor::MlPredictor;
//! use predictsim_sim::engine::{simulate, SimConfig};
//! use predictsim_sim::job::{Job, JobId};
//! use predictsim_sim::scheduler::EasyScheduler;
//! use predictsim_sim::time::Time;
//!
//! // A user whose jobs always run ~900s but request 10h.
//! let jobs: Vec<Job> = (0..200)
//!     .map(|i| Job {
//!         id: JobId(i),
//!         submit: Time(i as i64 * 600),
//!         run: 880 + (i as i64 % 5) * 10,
//!         requested: 36_000,
//!         procs: 4,
//!         user: 0,
//!         user_ix: 0,
//!         swf_id: i as u64,
//!     })
//!     .collect();
//!
//! let mut predictor = MlPredictor::e_loss();
//! let correction = IncrementalCorrection::new();
//! let result = simulate(
//!     &jobs,
//!     SimConfig::single(16),
//!     &mut EasyScheduler::sjbf(),
//!     &mut predictor,
//!     Some(&correction),
//! )
//! .unwrap();
//! assert_eq!(result.outcomes.len(), 200);
//! // The model has learned on-line from every completion.
//! assert_eq!(predictor.examples(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod correction;
pub mod eloss;
pub mod features;
pub mod loss;
pub mod model;
pub mod optimizer;
pub mod predictor;
pub mod weighting;

pub use basis::{Basis, LinearBasis, PolynomialBasis};
pub use correction::{IncrementalCorrection, RecursiveDoublingCorrection, RequestedTimeCorrection};
pub use eloss::{eloss, mae_of_outcomes, mean_eloss, mean_eloss_of_outcomes};
pub use features::{FeatureExtractor, FEATURE_NAMES, N_FEATURES};
pub use loss::{loss_shapes, AsymmetricLoss, BasisLoss};
pub use model::{LearnRecord, OnlineRegression};
pub use optimizer::{AdaGradOptimizer, NagOptimizer, OnlineOptimizer, SgdOptimizer};
pub use predictor::{ml_grid, Ave2Predictor, BasisKind, MlConfig, MlPredictor, OptimizerKind};
pub use predictsim_sim::hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use weighting::WeightingScheme;
