//! Per-job loss weights γ_j — Table 3 of the paper.
//!
//! Backfilling cares unevenly about jobs: small-area jobs are the easy
//! backfill candidates (under-predicting them delays a reservation), while
//! a mispredicted large job freezes the whole machine. Table 3 therefore
//! explores five weighting factors built from the job's running time `p`
//! and resource request `q`:
//!
//! | γ_j                 | favors good predictions for…          |
//! |---------------------|----------------------------------------|
//! | `1`                 | every job equally                      |
//! | `5 + log(q/p)`      | short jobs with large requests         |
//! | `5 + log(p/q)`      | long jobs with small requests          |
//! | `11 + log(1/(q·p))` | small-area jobs                        |
//! | `log(q·p)`          | large-area jobs (the E-Loss choice)    |
//!
//! The constants "are chosen to ensure positivity of the weights with
//! typical running times and resource requests in the HPC domain"
//! (Table 3 caption). That positivity claim pins down the logarithm base:
//! with natural logs, `11 + ln(1/(q·p))` is already negative for a
//! one-hour 128-proc job, while with **base-10 logs** all four
//! non-constant weights stay positive across the whole typical HPC
//! envelope (seconds–days × 1–10k processors). We therefore use log₁₀
//! (documented as a fidelity note in DESIGN.md §2). Degenerate synthetic
//! jobs can still stray outside the envelope, so every weight is clamped
//! to [`MIN_GAMMA`].

/// Lower clamp keeping weights positive on degenerate jobs (e.g. 1-second
/// 1-proc crashers, where `log(q·p) = 0`).
pub const MIN_GAMMA: f64 = 0.01;

/// The five weighting schemes of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightingScheme {
    /// γ = 1: constant weight.
    Constant,
    /// γ = 5 + log(q/p): short jobs with large resource request should be
    /// well-predicted.
    ShortWide,
    /// γ = 5 + log(p/q): long jobs with small resource request should be
    /// well-predicted.
    LongNarrow,
    /// γ = 11 + log(1/(q·p)): jobs of small area should be well-predicted.
    SmallArea,
    /// γ = log(q·p): jobs of large area should be well-predicted — the
    /// weight of the winning E-Loss triple (Eq. 3, reading the printed
    /// `log(r_j·p_j)` as the Table 3 large-area weight `log(q_j·p_j)`;
    /// see DESIGN.md §2).
    LargeArea,
}

impl WeightingScheme {
    /// All five schemes, in Table 3 order.
    pub const ALL: [WeightingScheme; 5] = [
        WeightingScheme::Constant,
        WeightingScheme::ShortWide,
        WeightingScheme::LongNarrow,
        WeightingScheme::SmallArea,
        WeightingScheme::LargeArea,
    ];

    /// The weight γ_j for a job with actual running time `p` (seconds) and
    /// resource request `q` (processors), clamped to ≥ [`MIN_GAMMA`].
    pub fn gamma(self, p: f64, q: f64) -> f64 {
        let p = p.max(1.0);
        let q = q.max(1.0);
        let raw = match self {
            WeightingScheme::Constant => 1.0,
            WeightingScheme::ShortWide => 5.0 + (q / p).log10(),
            WeightingScheme::LongNarrow => 5.0 + (p / q).log10(),
            WeightingScheme::SmallArea => 11.0 + (1.0 / (q * p)).log10(),
            WeightingScheme::LargeArea => (q * p).log10(),
        };
        raw.max(MIN_GAMMA)
    }

    /// Short code used in heuristic-triple names.
    pub fn code(self) -> &'static str {
        match self {
            WeightingScheme::Constant => "g=1",
            WeightingScheme::ShortWide => "g=q/p",
            WeightingScheme::LongNarrow => "g=p/q",
            WeightingScheme::SmallArea => "g=small",
            WeightingScheme::LargeArea => "g=area",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(WeightingScheme::Constant.gamma(12345.0, 67.0), 1.0);
    }

    #[test]
    fn short_wide_prefers_short_wide_jobs() {
        let s = WeightingScheme::ShortWide;
        let short_wide = s.gamma(60.0, 512.0);
        let long_narrow = s.gamma(86_400.0, 1.0);
        assert!(short_wide > long_narrow);
    }

    #[test]
    fn long_narrow_prefers_long_narrow_jobs() {
        let s = WeightingScheme::LongNarrow;
        assert!(s.gamma(86_400.0, 1.0) > s.gamma(60.0, 512.0));
    }

    #[test]
    fn area_weights_are_monotone_in_area() {
        let small = WeightingScheme::SmallArea;
        assert!(small.gamma(10.0, 1.0) > small.gamma(100_000.0, 512.0));
        let large = WeightingScheme::LargeArea;
        assert!(large.gamma(100_000.0, 512.0) > large.gamma(10.0, 1.0));
    }

    #[test]
    fn weights_always_positive() {
        for scheme in WeightingScheme::ALL {
            for &(p, q) in &[
                (1.0, 1.0),
                (0.0, 0.0), // degenerate inputs are clamped
                (1e7, 1e5),
                (1.0, 100_000.0),
                (1_000_000.0, 1.0),
            ] {
                let g = scheme.gamma(p, q);
                assert!(g >= MIN_GAMMA, "{scheme:?} gamma({p},{q}) = {g}");
                assert!(g.is_finite());
            }
        }
    }

    #[test]
    fn typical_hpc_values_need_no_clamp() {
        // Table 3's claim: constants keep the weights positive for typical
        // running times / requests (minutes–days, 1–10k procs).
        for scheme in WeightingScheme::ALL {
            for &(p, q) in &[(600.0, 16.0), (3600.0, 128.0), (86_400.0, 1024.0)] {
                assert!(
                    scheme.gamma(p, q) > MIN_GAMMA,
                    "{scheme:?} clamped at ({p},{q})"
                );
            }
        }
    }

    #[test]
    fn codes_are_unique() {
        let codes: std::collections::HashSet<_> =
            WeightingScheme::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), 5);
    }
}
