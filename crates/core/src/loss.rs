//! The paper's family of asymmetric, weighted loss functions (§4.2).
//!
//! Scheduling reacts differently to under- and over-prediction: an
//! under-prediction can wreck a planned schedule (a "running" job is still
//! there when the plan said it would be gone), while an over-prediction
//! merely wastes backfilling opportunities. The paper therefore composes a
//! loss from two *basis losses* — one per error direction — and a per-job
//! weight γ_j:
//!
//! ```text
//! L(x_j, f(x_j), p_j) = γ_j · L_over (f(x_j) − p_j)   if f(x_j) ≥ p_j
//!                       γ_j · L_under(p_j − f(x_j))   if f(x_j) < p_j
//! ```
//!
//! Each basis loss is either linear (`z ↦ z`) or squared (`z ↦ z²`),
//! giving the 2×2 grid of Table 5; γ_j comes from
//! [`crate::weighting::WeightingScheme`] (Table 3).
//!
//! *Erratum note* (documented in DESIGN.md §2): the displayed equation in
//! §4.2 swaps the `L_u`/`L_o` condition labels relative to Figure 1 and
//! §6.4. We follow the self-consistent reading used everywhere else in
//! the paper: the **over**-prediction branch applies when `f ≥ p`, the
//! **under**-prediction branch when `f < p`. Under this reading the
//! E-Loss (Eq. 3: squared branch when `f ≥ p`, linear when `f < p`)
//! "discourages over-prediction" exactly as §6.4 analyses.

/// One branch of the asymmetric loss: the paper considers the linear and
/// squared basis losses (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisLoss {
    /// `L(z) = z` — tolerant of large errors.
    Linear,
    /// `L(z) = z²` — strongly penalizes large errors.
    Squared,
}

impl BasisLoss {
    /// Loss at error magnitude `z ≥ 0`. (A NaN magnitude — e.g. from a
    /// diverged ablation optimizer — propagates as NaN rather than
    /// asserting, so diagnostics can observe the divergence.)
    #[inline]
    pub fn value(self, z: f64) -> f64 {
        debug_assert!(
            z.partial_cmp(&0.0) != Some(std::cmp::Ordering::Less),
            "basis losses are defined on magnitudes"
        );
        match self {
            BasisLoss::Linear => z,
            BasisLoss::Squared => z * z,
        }
    }

    /// Derivative with respect to `z` at `z ≥ 0`.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            BasisLoss::Linear => 1.0,
            BasisLoss::Squared => 2.0 * z,
        }
    }

    /// Short code used in heuristic-triple names (`"lin"`, `"sq"`).
    pub fn code(self) -> &'static str {
        match self {
            BasisLoss::Linear => "lin",
            BasisLoss::Squared => "sq",
        }
    }
}

/// An asymmetric loss: a basis loss per error direction.
///
/// `γ` is supplied at evaluation time (it depends on the job, not the
/// loss shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsymmetricLoss {
    /// Basis applied to under-predictions (`f < p`), on `z = p − f`.
    pub under: BasisLoss,
    /// Basis applied to over-predictions (`f ≥ p`), on `z = f − p`.
    pub over: BasisLoss,
}

impl AsymmetricLoss {
    /// The symmetric squared loss — with γ ≡ 1 this is plain on-line
    /// least squares (§4.2's closing remark).
    pub const SQUARED: AsymmetricLoss = AsymmetricLoss {
        under: BasisLoss::Squared,
        over: BasisLoss::Squared,
    };

    /// The E-Loss shape (Eq. 3): squared over-prediction branch, linear
    /// under-prediction branch. Combined with the large-area weight it is
    /// the loss of the winning heuristic triple (§6.3.3).
    pub const E_LOSS: AsymmetricLoss = AsymmetricLoss {
        under: BasisLoss::Linear,
        over: BasisLoss::Squared,
    };

    /// Loss of predicting `f` when the actual running time is `p`, with
    /// weight `gamma`.
    pub fn value(&self, f: f64, p: f64, gamma: f64) -> f64 {
        let err = f - p;
        if err >= 0.0 {
            gamma * self.over.value(err)
        } else {
            gamma * self.under.value(-err)
        }
    }

    /// Derivative of [`AsymmetricLoss::value`] with respect to the
    /// prediction `f`. At `f == p` both branches meet at loss 0; we return
    /// the 0 subgradient there, which keeps gradient steps stable.
    pub fn dvalue_df(&self, f: f64, p: f64, gamma: f64) -> f64 {
        let err = f - p;
        if err > 0.0 {
            gamma * self.over.derivative(err)
        } else if err < 0.0 {
            -gamma * self.under.derivative(-err)
        } else {
            0.0
        }
    }

    /// Short code such as `"u=lin,o=sq"` for reports.
    pub fn code(&self) -> String {
        format!("u={},o={}", self.under.code(), self.over.code())
    }
}

/// The four basis-loss combinations of Table 5.
pub fn loss_shapes() -> [AsymmetricLoss; 4] {
    [
        AsymmetricLoss {
            under: BasisLoss::Linear,
            over: BasisLoss::Linear,
        },
        AsymmetricLoss {
            under: BasisLoss::Linear,
            over: BasisLoss::Squared,
        },
        AsymmetricLoss {
            under: BasisLoss::Squared,
            over: BasisLoss::Linear,
        },
        AsymmetricLoss {
            under: BasisLoss::Squared,
            over: BasisLoss::Squared,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_values_and_derivatives() {
        assert_eq!(BasisLoss::Linear.value(3.0), 3.0);
        assert_eq!(BasisLoss::Squared.value(3.0), 9.0);
        assert_eq!(BasisLoss::Linear.derivative(3.0), 1.0);
        assert_eq!(BasisLoss::Squared.derivative(3.0), 6.0);
    }

    #[test]
    fn figure1_example() {
        // Figure 1: γ=1, Lu(z)=z², Lo(z)=z. At error −1 (under-prediction)
        // the loss is 1; at error +1 (over-prediction) the loss is 1.
        let l = AsymmetricLoss {
            under: BasisLoss::Squared,
            over: BasisLoss::Linear,
        };
        assert_eq!(l.value(0.0, 1.0, 1.0), 1.0); // f−p = −1
        assert_eq!(l.value(2.0, 1.0, 1.0), 1.0); // f−p = +1
        assert_eq!(l.value(1.0, 1.0, 1.0), 0.0);
        // And at error −0.5 the squared branch gives 0.25 < linear's 0.5.
        assert_eq!(l.value(0.5, 1.0, 1.0), 0.25);
    }

    #[test]
    fn eloss_discourages_overprediction() {
        // §6.4: squared branch for over-prediction, linear for under.
        let e = AsymmetricLoss::E_LOSS;
        let over = e.value(2000.0, 1000.0, 1.0); // +1000 error
        let under = e.value(0.0, 1000.0, 1.0); // −1000 error
        assert!(over > under, "E-loss must punish over-prediction harder");
        assert_eq!(over, 1_000_000.0);
        assert_eq!(under, 1000.0);
    }

    #[test]
    fn gamma_scales_linearly() {
        let l = AsymmetricLoss::SQUARED;
        assert_eq!(l.value(3.0, 1.0, 5.0), 5.0 * 4.0);
        assert_eq!(l.dvalue_df(3.0, 1.0, 5.0), 5.0 * 4.0);
    }

    #[test]
    fn derivative_signs() {
        let l = AsymmetricLoss::E_LOSS;
        assert!(
            l.dvalue_df(10.0, 5.0, 1.0) > 0.0,
            "over-prediction pushes f down"
        );
        assert!(
            l.dvalue_df(2.0, 5.0, 1.0) < 0.0,
            "under-prediction pushes f up"
        );
        assert_eq!(l.dvalue_df(5.0, 5.0, 1.0), 0.0);
    }

    #[test]
    fn derivative_matches_numeric_gradient() {
        let h = 1e-6;
        for loss in loss_shapes() {
            for &(f, p) in &[(10.0, 3.0), (3.0, 10.0), (100.0, 99.0), (0.5, 2.5)] {
                let numeric = (loss.value(f + h, p, 2.0) - loss.value(f - h, p, 2.0)) / (2.0 * h);
                let analytic = loss.dvalue_df(f, p, 2.0);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{:?} f={f} p={p}: numeric {numeric} vs analytic {analytic}",
                    loss
                );
            }
        }
    }

    #[test]
    fn continuity_at_zero_error() {
        // All four combinations are continuous at f = p (§4.2 notes
        // continuity and convexity).
        for loss in loss_shapes() {
            let eps = 1e-9;
            let left = loss.value(5.0 - eps, 5.0, 3.0);
            let right = loss.value(5.0 + eps, 5.0, 3.0);
            assert!(left.abs() < 1e-6 && right.abs() < 1e-6, "{loss:?}");
        }
    }

    #[test]
    fn convexity_sampled() {
        // Midpoint convexity on a few sample points for every shape.
        for loss in loss_shapes() {
            let p = 50.0;
            for &(a, b) in &[(0.0, 100.0), (20.0, 80.0), (40.0, 200.0)] {
                let mid = loss.value((a + b) / 2.0, p, 1.0);
                let avg = (loss.value(a, p, 1.0) + loss.value(b, p, 1.0)) / 2.0;
                assert!(mid <= avg + 1e-9, "{loss:?} not convex on ({a},{b})");
            }
        }
    }

    #[test]
    fn codes() {
        assert_eq!(AsymmetricLoss::E_LOSS.code(), "u=lin,o=sq");
        assert_eq!(loss_shapes().len(), 4);
    }
}
