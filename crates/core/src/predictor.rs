//! Prediction techniques (§6.2 of the paper).
//!
//! The experiment campaign crosses these predictors with correction
//! mechanisms and backfilling variants:
//!
//! * **Clairvoyant** and **Requested Time** — in `predictsim_sim::predict`
//!   (no learning state);
//! * [`Ave2Predictor`] — AVE₂(k): the mean of the user's last two recorded
//!   running times (Tsafrir et al. \[24\]), "surprisingly good given its
//!   simplicity" (§3.2); the prediction half of EASY++;
//! * [`MlPredictor`] — the paper's contribution: the on-line NAG-trained
//!   ℓ2-regularized degree-2 polynomial regression over the Table 2
//!   features, with a configurable asymmetric weighted loss
//!   ([`MlConfig`]). [`MlPredictor::e_loss`] builds the winning E-Loss
//!   configuration of §6.3.3.

use predictsim_sim::predict::RuntimePredictor;
use predictsim_sim::state::SystemView;
use predictsim_sim::Job;

use crate::basis::Basis;
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::loss::{loss_shapes, AsymmetricLoss};
use crate::model::{OnlineRegression, DEFAULT_ETA, DEFAULT_L2};
use crate::optimizer::{AdaGradOptimizer, NagOptimizer, OnlineOptimizer, SgdOptimizer};
use crate::weighting::WeightingScheme;

/// AVE₂(k): predicts the average of the user's last two recorded running
/// times; falls back to the requested time while the user has no history.
#[derive(Debug, Clone, Default)]
pub struct Ave2Predictor {
    extractor: FeatureExtractor,
}

impl Ave2Predictor {
    /// A fresh AVE₂ predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RuntimePredictor for Ave2Predictor {
    fn predict(&mut self, job: &Job, _system: &SystemView<'_>) -> f64 {
        self.extractor
            .ave2(job.user_ix)
            .unwrap_or(job.requested as f64)
    }

    fn observe(&mut self, job: &Job, actual_run: i64, system: &SystemView<'_>) {
        self.extractor
            .record_completion(job, actual_run, system.now.0);
    }

    fn name(&self) -> String {
        "ave2".into()
    }
}

/// Which optimizer an [`MlPredictor`] trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerKind {
    /// Normalized Adaptive Gradient \[19\] — the paper's choice.
    #[default]
    Nag,
    /// Plain SGD (ablation).
    Sgd,
    /// AdaGrad (ablation).
    AdaGrad,
}

/// Which basis the model expands features with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BasisKind {
    /// Degree-2 polynomial (Equation 1, the paper's choice).
    #[default]
    Polynomial,
    /// Degree-1 (ablation).
    Linear,
}

/// Configuration of a learning-based predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlConfig {
    /// Loss shape (under/over basis losses).
    pub loss: AsymmetricLoss,
    /// Per-job weight scheme γ.
    pub weighting: WeightingScheme,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Basis degree.
    pub basis: BasisKind,
    /// Learning rate η.
    pub eta: f64,
    /// ℓ2 coefficient λ.
    pub l2: f64,
}

impl MlConfig {
    /// The paper's default training setup for a given loss + weighting.
    pub fn new(loss: AsymmetricLoss, weighting: WeightingScheme) -> Self {
        Self {
            loss,
            weighting,
            optimizer: OptimizerKind::Nag,
            basis: BasisKind::Polynomial,
            eta: DEFAULT_ETA,
            l2: DEFAULT_L2,
        }
    }

    /// The winning configuration of §6.3.3: E-Loss shape with the
    /// large-area weight.
    pub fn e_loss() -> Self {
        Self::new(AsymmetricLoss::E_LOSS, WeightingScheme::LargeArea)
    }

    /// Display name, e.g. `"ml(u=lin,o=sq,g=area)"`.
    pub fn name(&self) -> String {
        let mut name = format!("ml({},{})", self.loss.code(), self.weighting.code());
        if self.optimizer != OptimizerKind::Nag {
            name.push_str(match self.optimizer {
                OptimizerKind::Sgd => "+sgd",
                OptimizerKind::AdaGrad => "+adagrad",
                OptimizerKind::Nag => unreachable!(),
            });
        }
        if self.basis == BasisKind::Linear {
            name.push_str("+lin-basis");
        }
        name
    }

    fn build_model(&self) -> OnlineRegression {
        let basis = match self.basis {
            BasisKind::Polynomial => Basis::polynomial(N_FEATURES),
            BasisKind::Linear => Basis::linear(N_FEATURES),
        };
        let dim = basis.output_dim();
        let optimizer: Box<dyn OnlineOptimizer> = match self.optimizer {
            OptimizerKind::Nag => Box::new(NagOptimizer::new(dim, self.eta)),
            OptimizerKind::Sgd => Box::new(SgdOptimizer::new(self.eta)),
            OptimizerKind::AdaGrad => Box::new(AdaGradOptimizer::new(dim, self.eta)),
        };
        OnlineRegression::with_parts(basis, optimizer, self.loss, self.weighting, self.l2)
    }
}

/// The 20 loss-function configurations of Table 5 (4 shapes × 5 weights),
/// each with the paper's default NAG training.
pub fn ml_grid() -> Vec<MlConfig> {
    let mut grid = Vec::with_capacity(20);
    for loss in loss_shapes() {
        for weighting in WeightingScheme::ALL {
            grid.push(MlConfig::new(loss, weighting));
        }
    }
    grid
}

/// The paper's learning-based running-time predictor (§4.2).
///
/// At each submission it extracts the Table 2 features, records them, and
/// predicts through the polynomial model; at each completion it performs
/// one on-line learning step with the features *as they were at
/// submission* — the strict on-line train/test protocol.
pub struct MlPredictor {
    config: MlConfig,
    extractor: FeatureExtractor,
    model: OnlineRegression,
    /// Features captured at submit time, indexed by dense job id (the
    /// engine numbers jobs `0..n`, so a slab beats a hash map here),
    /// consumed at completion.
    pending: Vec<Option<[f64; N_FEATURES]>>,
    /// Number of `Some` entries in `pending` (jobs predicted but not yet
    /// observed).
    in_flight: usize,
}

impl MlPredictor {
    /// Builds a predictor from `config`.
    pub fn new(config: MlConfig) -> Self {
        Self {
            config,
            extractor: FeatureExtractor::new(),
            model: config.build_model(),
            pending: Vec::new(),
            in_flight: 0,
        }
    }

    /// The winning §6.3.3 E-Loss predictor.
    pub fn e_loss() -> Self {
        Self::new(MlConfig::e_loss())
    }

    /// The symmetric squared-loss learner ("standard squared loss
    /// regression problem, learned in an on-line manner", §4.2) — the
    /// comparison curve of Figures 4 and 5.
    pub fn squared_loss() -> Self {
        Self::new(MlConfig::new(
            AsymmetricLoss::SQUARED,
            WeightingScheme::Constant,
        ))
    }

    /// The configuration this predictor was built from.
    pub fn config(&self) -> &MlConfig {
        &self.config
    }

    /// Number of learning steps taken so far.
    pub fn examples(&self) -> u64 {
        self.model.examples()
    }

    /// Cumulative weighted loss (the Equation 2 objective so far).
    pub fn cumulative_loss(&self) -> f64 {
        self.model.cumulative_loss()
    }
}

impl RuntimePredictor for MlPredictor {
    fn predict(&mut self, job: &Job, system: &SystemView<'_>) -> f64 {
        let x = self.extractor.extract(job, system);
        self.extractor.record_submit(job);
        let raw = self.model.predict(&x);
        let index = job.id.index();
        if index >= self.pending.len() {
            self.pending.resize(index + 1, None);
        }
        if self.pending[index].replace(x).is_none() {
            self.in_flight += 1;
        }
        raw // the engine clamps into [1, p̃_j]
    }

    fn observe(&mut self, job: &Job, actual_run: i64, system: &SystemView<'_>) {
        self.extractor
            .record_completion(job, actual_run, system.now.0);
        if let Some(x) = self.pending.get_mut(job.id.index()).and_then(Option::take) {
            self.in_flight -= 1;
            self.model.learn(&x, actual_run as f64, job.procs as f64);
        }
    }

    fn name(&self) -> String {
        self.config.name()
    }

    fn wants_user_running_index(&self) -> bool {
        true // Table 2's current-state features are per-user aggregates
    }
}

impl std::fmt::Debug for MlPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlPredictor")
            .field("config", &self.config)
            .field("examples", &self.model.examples())
            .field("pending", &self.in_flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_sim::job::JobId;
    use predictsim_sim::time::Time;

    fn job(id: u32, user: u32, run: i64, requested: i64) -> Job {
        Job {
            id: JobId(id),
            submit: Time(id as i64 * 10),
            run,
            requested,
            procs: 2,
            user,
            user_ix: user,
            swf_id: id as u64,
        }
    }

    fn view(now: i64) -> SystemView<'static> {
        SystemView {
            now: Time(now),
            machine_size: 64,
            running: &[],
            user_running: None,
        }
    }

    #[test]
    fn ave2_falls_back_to_requested() {
        let mut p = Ave2Predictor::new();
        assert_eq!(p.predict(&job(0, 1, 100, 5000), &view(0)), 5000.0);
    }

    #[test]
    fn ave2_averages_last_two() {
        let mut p = Ave2Predictor::new();
        p.observe(&job(0, 1, 100, 5000), 100, &view(100));
        assert_eq!(p.predict(&job(1, 1, 0, 5000), &view(150)), 100.0);
        p.observe(&job(1, 1, 300, 5000), 300, &view(400));
        assert_eq!(p.predict(&job(2, 1, 0, 5000), &view(450)), 200.0);
        p.observe(&job(2, 1, 500, 5000), 500, &view(900));
        // Only the last two count: (500+300)/2.
        assert_eq!(p.predict(&job(3, 1, 0, 5000), &view(950)), 400.0);
        assert_eq!(p.name(), "ave2");
    }

    #[test]
    fn ave2_is_per_user() {
        let mut p = Ave2Predictor::new();
        p.observe(&job(0, 1, 100, 5000), 100, &view(100));
        assert_eq!(p.predict(&job(1, 2, 0, 7777), &view(150)), 7777.0);
    }

    #[test]
    fn grid_has_20_configs_with_unique_names() {
        let grid = ml_grid();
        assert_eq!(grid.len(), 20);
        let names: std::collections::HashSet<String> = grid.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn ml_learns_a_repetitive_user() {
        // A user whose jobs always run ~1000s while requesting 36000s.
        // After a few dozen completions the model should predict far
        // closer to 1000 than to the requested bound.
        let mut p = MlPredictor::new(MlConfig::new(
            AsymmetricLoss::SQUARED,
            WeightingScheme::Constant,
        ));
        let mut last_pred = f64::NAN;
        for i in 0..300 {
            let j = job(i, 1, 1000, 36_000);
            let raw = p.predict(&j, &view(i as i64 * 100));
            last_pred = raw.clamp(1.0, 36_000.0);
            p.observe(&j, 1000, &view(i as i64 * 100 + 50));
        }
        assert_eq!(p.examples(), 300);
        assert!(
            (last_pred - 1000.0).abs() < 500.0,
            "prediction {last_pred} did not approach the true 1000s"
        );
    }

    #[test]
    fn eloss_config_name() {
        assert_eq!(MlConfig::e_loss().name(), "ml(u=lin,o=sq,g=area)");
        let mut cfg = MlConfig::e_loss();
        cfg.optimizer = OptimizerKind::Sgd;
        assert!(cfg.name().contains("+sgd"));
        cfg.basis = BasisKind::Linear;
        assert!(cfg.name().contains("+lin-basis"));
    }

    #[test]
    fn pending_features_are_consumed() {
        let mut p = MlPredictor::e_loss();
        let j = job(0, 1, 100, 1000);
        p.predict(&j, &view(0));
        assert!(format!("{p:?}").contains("pending: 1"));
        p.observe(&j, 100, &view(200));
        assert_eq!(p.examples(), 1);
    }

    #[test]
    fn observe_without_predict_is_harmless() {
        // A predictor attached mid-simulation may see completions of jobs
        // it never predicted; it must not learn from unknown features.
        let mut p = MlPredictor::e_loss();
        p.observe(&job(5, 1, 100, 1000), 100, &view(0));
        assert_eq!(p.examples(), 0);
    }
}
