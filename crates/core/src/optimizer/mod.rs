//! On-line convex optimizers for the regression problem of Equation (2).
//!
//! The paper minimizes the cumulative weighted loss with the **Normalized
//! Adaptive Gradient** algorithm (NAG) of Ross, Mineiro & Langford
//! (*Normalized Online Learning*, UAI 2013 — reference \[19\]), "a variant
//! of the classical Stochastic Gradient Descent" chosen for its robustness
//! to adversarial feature scaling: several Table 2 features (e.g. *Break
//! Time*) are unbounded and impossible to normalize a priori (§4.2).
//!
//! [`NagOptimizer`] is the paper's choice; [`SgdOptimizer`] and
//! [`AdaGradOptimizer`] are provided for the optimizer ablation bench
//! (DESIGN.md §6.3).
//!
//! ## Contract
//!
//! One learning step is split in two because NAG must rescale the weights
//! *before* the prediction that the gradient is computed from:
//!
//! 1. [`OnlineOptimizer::prepare`] — may rescale `weights` given the
//!    incoming expanded features;
//! 2. the caller computes `f = w·φ` and the loss derivative `∂L/∂f`;
//! 3. [`OnlineOptimizer::step`] — applies the gradient update, including
//!    the ℓ2 term `λ‖w‖²` of Equation (2) (its gradient `2λw` is added to
//!    the loss gradient inside the step).

mod adagrad;
mod nag;
mod sgd;

pub use adagrad::AdaGradOptimizer;
pub use nag::NagOptimizer;
pub use sgd::SgdOptimizer;

/// An on-line first-order optimizer over a fixed-dimension weight vector.
pub trait OnlineOptimizer: Send {
    /// Pre-prediction hook; may rescale `weights` based on the incoming
    /// expanded feature vector `phi` (NAG's scale tracking). Must be
    /// called exactly once per learning step, before the prediction.
    fn prepare(&mut self, weights: &mut [f64], phi: &[f64]);

    /// Applies one gradient step. `dloss_df` is the derivative of the
    /// (already γ-weighted) loss with respect to the prediction `w·φ`;
    /// `l2` is the regularization coefficient λ of Equation (2).
    fn step(&mut self, weights: &mut [f64], phi: &[f64], dloss_df: f64, l2: f64) {
        self.step_bounded(weights, phi, dloss_df, l2, f64::INFINITY);
    }

    /// Safeguarded step: like [`OnlineOptimizer::step`] but the induced
    /// prediction change `|Δ(w·φ)|` is bounded by `max_abs_df`. When the
    /// unclipped step would overshoot, the whole weight delta is scaled
    /// down (and the gradient recorded into any adaptive accumulators is
    /// scaled accordingly, so one outlier cannot poison future step
    /// sizes).
    ///
    /// This is the moral equivalent of Vowpal Wabbit's importance-aware
    /// "safe" updates (Karampatziakis & Langford, 2011): one example may
    /// never move the prediction past its own label. Without it, a single
    /// crashed job (tiny actual runtime, §4.1's noise) hit by a squared
    /// over-prediction branch produces a gradient 10³–10⁴× the linear
    /// branch's, collapsing the model — the on-line analogue of an
    /// outlier destroying a regression.
    fn step_bounded(
        &mut self,
        weights: &mut [f64],
        phi: &[f64],
        dloss_df: f64,
        l2: f64,
        max_abs_df: f64,
    );

    /// Display name (`"nag"`, `"sgd"`, `"adagrad"`).
    fn name(&self) -> &'static str;
}

/// Per-coordinate gradient of the regularized objective at coordinate `i`:
/// `∂/∂w_i [ L(w·φ) + λ‖w‖² ] = (∂L/∂f)·φ_i + 2λ·w_i`.
#[inline]
pub(crate) fn coordinate_gradient(dloss_df: f64, phi_i: f64, l2: f64, w_i: f64) -> f64 {
    dloss_df * phi_i + 2.0 * l2 * w_i
}

/// Scale factor bounding a tentative prediction change `df` to
/// `max_abs_df` (1.0 when no clipping is needed or the change is
/// degenerate).
#[inline]
pub(crate) fn clip_ratio(df: f64, max_abs_df: f64) -> f64 {
    let mag = df.abs();
    if mag <= max_abs_df || mag == 0.0 || !mag.is_finite() {
        if mag.is_finite() {
            1.0
        } else {
            0.0
        }
    } else {
        max_abs_df / mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared smoke test: every optimizer must fit a normalized-scale
    /// regression problem (`y = 0.3·x`, targets O(1) — the scale the
    /// model layer feeds optimizers after target normalization).
    fn converges(optimizer: &mut dyn OnlineOptimizer) -> f64 {
        let mut w = vec![0.0; 2]; // bias + slope
        let mut last_err = f64::INFINITY;
        for round in 0..5000 {
            let x = 1.0 + (round % 10) as f64;
            let phi = [1.0, x];
            let y = 0.3 * x;
            optimizer.prepare(&mut w, &phi);
            let f: f64 = w[0] + w[1] * x;
            let dloss = 2.0 * (f - y); // squared loss derivative
            optimizer.step(&mut w, &phi, dloss, 0.0);
            last_err = (f - y).abs();
        }
        last_err
    }

    #[test]
    fn all_optimizers_fit_a_line() {
        let dim = 2;
        let mut nag = NagOptimizer::new(dim, 0.5);
        let mut sgd = SgdOptimizer::new(0.01);
        let mut ada = AdaGradOptimizer::new(dim, 0.5);
        let e = converges(&mut nag);
        assert!(e < 0.2, "NAG did not converge: {e}");
        let e = converges(&mut sgd);
        assert!(e < 0.2, "SGD did not converge: {e}");
        let e = converges(&mut ada);
        assert!(e < 0.2, "AdaGrad did not converge: {e}");
    }

    #[test]
    fn gradient_includes_l2_term() {
        assert_eq!(coordinate_gradient(2.0, 3.0, 0.0, 10.0), 6.0);
        assert_eq!(coordinate_gradient(2.0, 3.0, 0.5, 10.0), 6.0 + 10.0);
    }
}
