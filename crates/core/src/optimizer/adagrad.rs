//! AdaGrad: per-coordinate adaptive step sizes.
//!
//! Divides each coordinate's step by the root of its accumulated squared
//! gradients, adapting to per-feature gradient magnitude — but, unlike
//! NAG, not to *feature scale*: a feature that suddenly grows 1000× still
//! distorts the first updates after the growth. Middle rung of the
//! optimizer ablation between SGD and NAG.

use crate::optimizer::{clip_ratio, coordinate_gradient, OnlineOptimizer};

const EPS: f64 = 1e-12;

/// AdaGrad with base learning rate `eta`.
#[derive(Debug, Clone)]
pub struct AdaGradOptimizer {
    eta: f64,
    /// Per-coordinate sums of squared gradients.
    g2: Vec<f64>,
}

impl AdaGradOptimizer {
    /// AdaGrad over `dim` weights with base learning rate `eta`.
    pub fn new(dim: usize, eta: f64) -> Self {
        assert!(eta > 0.0, "learning rate must be positive");
        Self {
            eta,
            g2: vec![0.0; dim],
        }
    }
}

impl OnlineOptimizer for AdaGradOptimizer {
    fn prepare(&mut self, _weights: &mut [f64], _phi: &[f64]) {}

    fn step_bounded(
        &mut self,
        weights: &mut [f64],
        phi: &[f64],
        dloss_df: f64,
        l2: f64,
        max_abs_df: f64,
    ) {
        debug_assert_eq!(weights.len(), phi.len());
        debug_assert_eq!(weights.len(), self.g2.len());
        // Tentative deltas with the full gradient (AdaGrad counts the
        // incoming gradient in its own denominator).
        let mut df = 0.0;
        for i in 0..weights.len() {
            let g = coordinate_gradient(dloss_df, phi[i], l2, weights[i]);
            let g2 = self.g2[i] + g * g;
            if g2 > 0.0 {
                df -= self.eta * g * phi[i] / (g2.sqrt() + EPS);
            }
        }
        let r = clip_ratio(df, max_abs_df);
        // Apply the (possibly scaled) deltas; accumulate the scaled
        // gradient so a clipped outlier cannot poison future steps.
        for i in 0..weights.len() {
            let g = coordinate_gradient(dloss_df, phi[i], l2, weights[i]);
            let delta = {
                let g2 = self.g2[i] + g * g;
                if g2 > 0.0 {
                    self.eta * g / (g2.sqrt() + EPS)
                } else {
                    0.0
                }
            };
            weights[i] -= r * delta;
            let rg = r * g;
            self.g2[i] += rg * rg;
        }
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_unit_scale() {
        // With G = g², the first step is eta * sign(g).
        let mut opt = AdaGradOptimizer::new(1, 0.5);
        let mut w = vec![0.0];
        opt.step(&mut w, &[2.0], -3.0, 0.0); // g = -6
        assert!((w[0] - 0.5).abs() < 1e-9, "got {}", w[0]);
    }

    #[test]
    fn steps_shrink_with_accumulated_gradient() {
        let mut opt = AdaGradOptimizer::new(1, 0.5);
        let mut w = vec![0.0];
        opt.step(&mut w, &[1.0], -1.0, 0.0);
        let first = w[0];
        opt.step(&mut w, &[1.0], -1.0, 0.0);
        let second = w[0] - first;
        assert!(second < first, "second {second} >= first {first}");
    }

    #[test]
    fn untouched_coordinates_stay_put() {
        let mut opt = AdaGradOptimizer::new(2, 0.5);
        let mut w = vec![1.0, 1.0];
        opt.step(&mut w, &[1.0, 0.0], -1.0, 0.0);
        assert_eq!(w[1], 1.0, "zero feature with zero l2 must not move");
    }
}
