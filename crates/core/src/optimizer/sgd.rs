//! Plain stochastic gradient descent with a `1/√t` step-size schedule.
//!
//! The classical baseline NAG improves on (\[1\] in the paper's references:
//! Bottou, *Stochastic learning*). Sensitive to feature scaling — which is
//! exactly why the paper does not use it — and therefore the interesting
//! control in the optimizer ablation.

use crate::optimizer::{clip_ratio, coordinate_gradient, OnlineOptimizer};

/// SGD with step size `eta / sqrt(t)`.
#[derive(Debug, Clone)]
pub struct SgdOptimizer {
    eta: f64,
    t: u64,
}

impl SgdOptimizer {
    /// SGD with base learning rate `eta`.
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0, "learning rate must be positive");
        Self { eta, t: 0 }
    }
}

impl OnlineOptimizer for SgdOptimizer {
    fn prepare(&mut self, _weights: &mut [f64], _phi: &[f64]) {}

    fn step_bounded(
        &mut self,
        weights: &mut [f64],
        phi: &[f64],
        dloss_df: f64,
        l2: f64,
        max_abs_df: f64,
    ) {
        debug_assert_eq!(weights.len(), phi.len());
        self.t += 1;
        let rate = self.eta / (self.t as f64).sqrt();
        // SGD's prediction change is linear in the step, so the clip is a
        // single proportional rescale.
        let mut df = 0.0;
        for (w, &x) in weights.iter().zip(phi) {
            let g = coordinate_gradient(dloss_df, x, l2, *w);
            df -= rate * g * x;
        }
        let r = clip_ratio(df, max_abs_df);
        for (w, &x) in weights.iter_mut().zip(phi) {
            let g = coordinate_gradient(dloss_df, x, l2, *w);
            *w -= r * rate * g;
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let mut opt = SgdOptimizer::new(0.1);
        let mut w = vec![0.0, 0.0];
        // f too low (dloss negative) -> weights must increase where phi>0.
        opt.step(&mut w, &[1.0, 2.0], -1.0, 0.0);
        assert!(w[0] > 0.0 && w[1] > 0.0);
        assert!(w[1] > w[0], "larger feature gets the larger step");
    }

    #[test]
    fn step_size_decays() {
        let mut opt = SgdOptimizer::new(0.1);
        let mut w1 = vec![0.0];
        opt.step(&mut w1, &[1.0], -1.0, 0.0);
        let first = w1[0];
        let mut w2 = vec![0.0];
        opt.step(&mut w2, &[1.0], -1.0, 0.0);
        assert!(
            w2[0] < first,
            "second step must be smaller: {} vs {first}",
            w2[0]
        );
    }

    #[test]
    fn l2_pulls_weights_toward_zero() {
        let mut opt = SgdOptimizer::new(0.1);
        let mut w = vec![10.0];
        opt.step(&mut w, &[0.0], 0.0, 1.0); // pure regularization gradient
        assert!(w[0] < 10.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_rate() {
        SgdOptimizer::new(0.0);
    }
}
