//! The Normalized Adaptive Gradient algorithm (NAG) — reference \[19\] of
//! the paper (Ross, Mineiro & Langford, *Normalized Online Learning*,
//! UAI 2013).
//!
//! NAG maintains a per-coordinate scale estimate `s_i = max_t |φ_{t,i}|`.
//! When a coordinate's scale grows, the corresponding weight is shrunk by
//! the squared scale ratio so that past learning is reinterpreted at the
//! new scale instead of producing a huge spurious prediction. Updates are
//! normalized per coordinate by `s_i` and globally by `√(t/N)` where `N`
//! accumulates `Σ_i (φ_{t,i}/s_i)²`, and adapted per coordinate by the
//! AdaGrad factor `√G_i` (accumulated squared gradients):
//!
//! ```text
//! for i with |φ_i| > s_i:   w_i ← w_i · s_i²/φ_i²;   s_i ← |φ_i|
//! N ← N + Σ_i (φ_i/s_i)²
//! g_i = (∂L/∂f)·φ_i + 2λw_i
//! G_i ← G_i + g_i²
//! w_i ← w_i − η √(t/N) · g_i / (s_i √G_i)
//! ```
//!
//! The resulting learner is invariant (up to floating point) to any fixed
//! per-feature rescaling of the inputs — the property §4.2 demands because
//! features like *Break Time* are unbounded ("robustness to feature
//! scaling is a requirement of our problem"). The invariance is verified
//! by a property test in this crate's test suite.

use crate::optimizer::{clip_ratio, coordinate_gradient, OnlineOptimizer};

/// NAG optimizer state.
#[derive(Debug, Clone)]
pub struct NagOptimizer {
    eta: f64,
    /// Per-coordinate scales `s_i` (max absolute feature value seen).
    scale: Vec<f64>,
    /// Per-coordinate accumulated squared gradients `G_i`.
    g2: Vec<f64>,
    /// Global normalizer `N`.
    n_acc: f64,
    /// Example counter `t`.
    t: u64,
}

impl NagOptimizer {
    /// NAG over `dim` weights with learning rate `eta`.
    pub fn new(dim: usize, eta: f64) -> Self {
        assert!(eta > 0.0, "learning rate must be positive");
        Self {
            eta,
            scale: vec![0.0; dim],
            g2: vec![0.0; dim],
            n_acc: 0.0,
            t: 0,
        }
    }

    /// The per-coordinate scales learned so far (for inspection).
    pub fn scales(&self) -> &[f64] {
        &self.scale
    }
}

impl OnlineOptimizer for NagOptimizer {
    fn prepare(&mut self, weights: &mut [f64], phi: &[f64]) {
        debug_assert_eq!(weights.len(), phi.len());
        debug_assert_eq!(weights.len(), self.scale.len());
        for i in 0..phi.len() {
            let a = phi[i].abs();
            if a > self.scale[i] {
                if self.scale[i] > 0.0 {
                    let ratio = self.scale[i] / a;
                    weights[i] *= ratio * ratio;
                }
                self.scale[i] = a;
            }
        }
    }

    fn step_bounded(
        &mut self,
        weights: &mut [f64],
        phi: &[f64],
        dloss_df: f64,
        l2: f64,
        max_abs_df: f64,
    ) {
        debug_assert_eq!(weights.len(), phi.len());
        self.t += 1;
        // Global normalizer: squared feature magnitudes in scale units.
        let mut contrib = 0.0;
        for (&p, &s) in phi.iter().zip(&self.scale) {
            if s > 0.0 {
                let r = p / s;
                contrib += r * r;
            }
        }
        self.n_acc += contrib;
        if self.n_acc <= 0.0 {
            return; // all-zero example: nothing to learn from
        }
        let global = self.eta * (self.t as f64 / self.n_acc).sqrt();
        // Tentative per-coordinate deltas (the incoming gradient counts
        // in its own AdaGrad denominator) and the prediction change they
        // would cause.
        let mut df = 0.0;
        for i in 0..weights.len() {
            if self.scale[i] == 0.0 {
                continue;
            }
            let g = coordinate_gradient(dloss_df, phi[i], l2, weights[i]);
            let g2 = self.g2[i] + g * g;
            if g2 > 0.0 {
                df -= global * g * phi[i] / (self.scale[i] * g2.sqrt());
            }
        }
        let r = clip_ratio(df, max_abs_df);
        for i in 0..weights.len() {
            if self.scale[i] == 0.0 {
                continue;
            }
            let g = coordinate_gradient(dloss_df, phi[i], l2, weights[i]);
            let g2 = self.g2[i] + g * g;
            if g2 > 0.0 {
                weights[i] -= r * global * g / (self.scale[i] * g2.sqrt());
            }
            let rg = r * g;
            self.g2[i] += rg * rg;
        }
    }

    fn name(&self) -> &'static str {
        "nag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_rescales_weights_on_scale_growth() {
        let mut opt = NagOptimizer::new(1, 0.5);
        let mut w = vec![4.0];
        opt.prepare(&mut w, &[1.0]); // establish scale 1
        assert_eq!(w[0], 4.0);
        opt.prepare(&mut w, &[10.0]); // scale grows 10x
                                      // w shrinks by (1/10)² so w·φ stays comparable: 4*100 -> 0.04*... .
        assert!((w[0] - 0.04).abs() < 1e-12, "got {}", w[0]);
        assert_eq!(opt.scales(), &[10.0]);
    }

    #[test]
    fn prediction_preserved_under_rescale() {
        // The rescaling keeps w·φ_new == (w_old·φ_old) · (φ_new/φ_old)⁻¹…
        // precisely: w_new·φ_new = w_old·s²/φ_new² · φ_new = w_old·s²/φ_new.
        // The invariance that matters is end-to-end and is property-tested
        // in tests/nag_invariance.rs; here we sanity check the formula.
        let mut opt = NagOptimizer::new(1, 0.5);
        let mut w = vec![2.0];
        opt.prepare(&mut w, &[3.0]);
        let before = w[0] * 3.0;
        opt.prepare(&mut w, &[6.0]);
        let after = w[0] * 6.0;
        assert!((after - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_features_are_inert() {
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        opt.prepare(&mut w, &[1.0, 0.0]);
        opt.step(&mut w, &[1.0, 0.0], -1.0, 0.0);
        assert_eq!(w[1], 0.0, "never-seen feature must keep zero weight");
        assert!(w[0] > 0.0);
    }

    #[test]
    fn all_zero_example_is_skipped() {
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        opt.prepare(&mut w, &[0.0, 0.0]);
        opt.step(&mut w, &[0.0, 0.0], -1.0, 0.0);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn fits_wildly_scaled_features() {
        // The NAG selling point (§4.2): features on absurd scales — here
        // x ∈ [10⁴, 10⁵] — need no manual normalization. Targets are O(1),
        // the regime the model layer guarantees via target normalization.
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        let mut last = f64::NAN;
        for round in 0..5000 {
            let x = 10_000.0 * (1.0 + (round % 10) as f64);
            let phi = [1.0, x];
            let y = x / 100_000.0; // in [0.1, 1.0]
            opt.prepare(&mut w, &phi);
            let f = w[0] + w[1] * x;
            opt.step(&mut w, &phi, 2.0 * (f - y), 0.0);
            last = (f - y).abs();
        }
        assert!(last < 0.05, "error {last} too high");
    }
}
