//! The Normalized Adaptive Gradient algorithm (NAG) — reference \[19\] of
//! the paper (Ross, Mineiro & Langford, *Normalized Online Learning*,
//! UAI 2013).
//!
//! NAG maintains a per-coordinate scale estimate `s_i = max_t |φ_{t,i}|`.
//! When a coordinate's scale grows, the corresponding weight is shrunk by
//! the squared scale ratio so that past learning is reinterpreted at the
//! new scale instead of producing a huge spurious prediction. Updates are
//! normalized per coordinate by `s_i` and globally by `√(t/N)` where `N`
//! accumulates `Σ_i (φ_{t,i}/s_i)²`, and adapted per coordinate by the
//! AdaGrad factor `√G_i` (accumulated squared gradients):
//!
//! ```text
//! for i with |φ_i| > s_i:   w_i ← w_i · s_i²/φ_i²;   s_i ← |φ_i|
//! N ← N + Σ_i (φ_i/s_i)²
//! g_i = (∂L/∂f)·φ_i + 2λw_i
//! G_i ← G_i + g_i²
//! w_i ← w_i − η √(t/N) · g_i / (s_i √G_i)
//! ```
//!
//! The resulting learner is invariant (up to floating point) to any fixed
//! per-feature rescaling of the inputs — the property §4.2 demands because
//! features like *Break Time* are unbounded ("robustness to feature
//! scaling is a requirement of our problem"). The invariance is verified
//! by a property test in this crate's test suite.

use crate::optimizer::{clip_ratio, coordinate_gradient, OnlineOptimizer};

/// NAG optimizer state.
#[derive(Debug, Clone)]
pub struct NagOptimizer {
    eta: f64,
    /// Per-coordinate scales `s_i` (max absolute feature value seen).
    scale: Vec<f64>,
    /// Per-coordinate accumulated squared gradients `G_i`.
    g2: Vec<f64>,
    /// Global normalizer `N`.
    n_acc: f64,
    /// Example counter `t`.
    t: u64,
    /// Per-step scratch: the coordinate gradients `g_i`, computed once
    /// and shared by the probe and apply passes of
    /// [`NagOptimizer::step_bounded`].
    grad: Vec<f64>,
    /// Per-step scratch: `s_i·√(G_i + g_i²)`, likewise computed once.
    denom: Vec<f64>,
    /// Per-step scratch for branch-free reductions (each entry is the
    /// addend the reduction would have accumulated, or exactly 0.0 for
    /// coordinates the branchy formulation skips).
    terms: Vec<f64>,
    /// Per-step scratch: whether each coordinate takes part in the step
    /// (`s_i ≠ 0` and accumulated gradient positive).
    active: Vec<bool>,
}

impl NagOptimizer {
    /// NAG over `dim` weights with learning rate `eta`.
    pub fn new(dim: usize, eta: f64) -> Self {
        assert!(eta > 0.0, "learning rate must be positive");
        Self {
            eta,
            scale: vec![0.0; dim],
            g2: vec![0.0; dim],
            n_acc: 0.0,
            t: 0,
            grad: vec![0.0; dim],
            denom: vec![0.0; dim],
            terms: vec![0.0; dim],
            active: vec![false; dim],
        }
    }

    /// The per-coordinate scales learned so far (for inspection).
    pub fn scales(&self) -> &[f64] {
        &self.scale
    }
}

impl OnlineOptimizer for NagOptimizer {
    fn prepare(&mut self, weights: &mut [f64], phi: &[f64]) {
        debug_assert_eq!(weights.len(), phi.len());
        debug_assert_eq!(weights.len(), self.scale.len());
        // Fast path: after warm-up, almost no example grows any
        // coordinate's scale — a branch-free any-check (vectorizable)
        // skips the per-coordinate branching entirely. When nothing
        // grows, the branchy loop below would not write anything, so
        // returning early is exact.
        let mut grows = false;
        for (&p, &s) in phi.iter().zip(&self.scale) {
            grows |= p.abs() > s;
        }
        if !grows {
            return;
        }
        for i in 0..phi.len() {
            let a = phi[i].abs();
            if a > self.scale[i] {
                if self.scale[i] > 0.0 {
                    let ratio = self.scale[i] / a;
                    weights[i] *= ratio * ratio;
                }
                self.scale[i] = a;
            }
        }
    }

    fn step_bounded(
        &mut self,
        weights: &mut [f64],
        phi: &[f64],
        dloss_df: f64,
        l2: f64,
        max_abs_df: f64,
    ) {
        debug_assert_eq!(weights.len(), phi.len());
        self.t += 1;
        let dim = weights.len();
        self.grad.resize(dim, 0.0);
        self.denom.resize(dim, 0.0);
        self.terms.resize(dim, 0.0);
        self.active.resize(dim, false);

        // The step is organized as simple unconditional elementwise
        // passes whose results are masked by exact selects afterwards,
        // instead of one branchy loop — divisions and square roots are
        // IEEE-exact per element, so the *selected* values are
        // bit-identical to the branchy formulation while the passes stay
        // auto-vectorizable (a skipped coordinate may compute an inf/NaN
        // intermediate, but it is never selected). Reductions still run
        // in coordinate order; skipped coordinates feed them an exact
        // `0.0`, and `x ± 0.0 == x` for every value they can hold.

        let phi = &phi[..dim];
        let scale = &self.scale[..dim];
        let grad = &mut self.grad[..dim];
        let denom = &mut self.denom[..dim];
        let terms = &mut self.terms[..dim];
        let active = &mut self.active[..dim];
        let g2_acc = &mut self.g2[..dim];

        // Global normalizer: squared feature magnitudes in scale units.
        for i in 0..dim {
            let r = phi[i] / scale[i];
            terms[i] = if scale[i] > 0.0 { r * r } else { 0.0 };
        }
        let mut contrib = 0.0;
        for &t in terms.iter() {
            contrib += t;
        }
        self.n_acc += contrib;
        if self.n_acc <= 0.0 {
            return; // all-zero example: nothing to learn from
        }
        let global = self.eta * (self.t as f64 / self.n_acc).sqrt();

        // Probe pass: per-coordinate gradients, AdaGrad denominators and
        // the tentative prediction change, each computed once and kept in
        // scratch for the apply pass (which previously recomputed
        // gradient, square and square root — the cached values are the
        // same bits, just not paid for twice).
        for i in 0..dim {
            let g = coordinate_gradient(dloss_df, phi[i], l2, weights[i]);
            let g2 = g2_acc[i] + g * g;
            grad[i] = g;
            denom[i] = scale[i] * g2.sqrt();
            active[i] = scale[i] != 0.0 && g2 > 0.0;
        }
        for i in 0..dim {
            let term = global * grad[i] * phi[i] / denom[i];
            terms[i] = if active[i] { term } else { 0.0 };
        }
        let mut df = 0.0;
        for &t in terms.iter() {
            df -= t;
        }
        let r = clip_ratio(df, max_abs_df);

        // Apply pass, reusing the probe pass's gradients and denominators
        // (`r·global` is coordinate-invariant and hoisted — the original
        // expression associates as `(r·global)·g`, so the hoist is
        // exact). Skipped coordinates subtract an exact 0.0 from their
        // weight and add an exact 0.0 to their gradient accumulator.
        let r_global = r * global;
        for i in 0..dim {
            let delta = r_global * grad[i] / denom[i];
            weights[i] -= if active[i] { delta } else { 0.0 };
            let rg = r * grad[i];
            let rg2 = rg * rg;
            g2_acc[i] += if scale[i] != 0.0 { rg2 } else { 0.0 };
        }
    }

    fn name(&self) -> &'static str {
        "nag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_rescales_weights_on_scale_growth() {
        let mut opt = NagOptimizer::new(1, 0.5);
        let mut w = vec![4.0];
        opt.prepare(&mut w, &[1.0]); // establish scale 1
        assert_eq!(w[0], 4.0);
        opt.prepare(&mut w, &[10.0]); // scale grows 10x
                                      // w shrinks by (1/10)² so w·φ stays comparable: 4*100 -> 0.04*... .
        assert!((w[0] - 0.04).abs() < 1e-12, "got {}", w[0]);
        assert_eq!(opt.scales(), &[10.0]);
    }

    #[test]
    fn prediction_preserved_under_rescale() {
        // The rescaling keeps w·φ_new == (w_old·φ_old) · (φ_new/φ_old)⁻¹…
        // precisely: w_new·φ_new = w_old·s²/φ_new² · φ_new = w_old·s²/φ_new.
        // The invariance that matters is end-to-end and is property-tested
        // in tests/nag_invariance.rs; here we sanity check the formula.
        let mut opt = NagOptimizer::new(1, 0.5);
        let mut w = vec![2.0];
        opt.prepare(&mut w, &[3.0]);
        let before = w[0] * 3.0;
        opt.prepare(&mut w, &[6.0]);
        let after = w[0] * 6.0;
        assert!((after - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_features_are_inert() {
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        opt.prepare(&mut w, &[1.0, 0.0]);
        opt.step(&mut w, &[1.0, 0.0], -1.0, 0.0);
        assert_eq!(w[1], 0.0, "never-seen feature must keep zero weight");
        assert!(w[0] > 0.0);
    }

    #[test]
    fn all_zero_example_is_skipped() {
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        opt.prepare(&mut w, &[0.0, 0.0]);
        opt.step(&mut w, &[0.0, 0.0], -1.0, 0.0);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn fits_wildly_scaled_features() {
        // The NAG selling point (§4.2): features on absurd scales — here
        // x ∈ [10⁴, 10⁵] — need no manual normalization. Targets are O(1),
        // the regime the model layer guarantees via target normalization.
        let mut opt = NagOptimizer::new(2, 0.5);
        let mut w = vec![0.0, 0.0];
        let mut last = f64::NAN;
        for round in 0..5000 {
            let x = 10_000.0 * (1.0 + (round % 10) as f64);
            let phi = [1.0, x];
            let y = x / 100_000.0; // in [0.1, 1.0]
            opt.prepare(&mut w, &phi);
            let f = w[0] + w[1] * x;
            opt.step(&mut w, &phi, 2.0 * (f - y), 0.0);
            last = (f - y).abs();
        }
        assert!(last < 0.05, "error {last} too high");
    }
}
