//! The E-Loss ("EASY-Loss") — Equation (3) — as a *metric*.
//!
//! §6.4 evaluates prediction techniques not only by their Mean Absolute
//! Error but by their mean E-Loss (Table 8), showing that AVE₂ — despite a
//! better MAE — scores orders of magnitude worse on the loss that actually
//! matters for backfilling. This module computes that metric over
//! simulation outcomes.
//!
//! The per-job value is
//!
//! ```text
//! E(f, p, q) = log(q·p) · (f − p)²   if f ≥ p   (over-prediction)
//!              log(q·p) · (p − f)    if f < p   (under-prediction)
//! ```
//!
//! (reading Eq. 3's printed `log(r_j·p_j)` as the Table 3 large-area
//! weight `log(q_j·p_j)` — see DESIGN.md §2 — and with the weight clamped
//! positive exactly as during training).

use predictsim_sim::outcome::JobOutcome;

use crate::loss::AsymmetricLoss;
use crate::weighting::WeightingScheme;

/// E-Loss of predicting `f` for a job with actual running time `p` and
/// resource request `q`.
pub fn eloss(f: f64, p: f64, q: f64) -> f64 {
    let gamma = WeightingScheme::LargeArea.gamma(p, q);
    AsymmetricLoss::E_LOSS.value(f, p, gamma)
}

/// Mean E-Loss of a set of `(prediction, actual, procs)` triples.
pub fn mean_eloss(triples: &[(f64, f64, f64)]) -> f64 {
    if triples.is_empty() {
        return 0.0;
    }
    triples.iter().map(|&(f, p, q)| eloss(f, p, q)).sum::<f64>() / triples.len() as f64
}

/// Mean E-Loss of the *initial* predictions recorded in simulation
/// outcomes — the Table 8 aggregation.
pub fn mean_eloss_of_outcomes(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(|o| eloss(o.initial_prediction as f64, o.run as f64, o.procs as f64))
        .sum::<f64>()
        / outcomes.len() as f64
}

/// Mean absolute error of the initial predictions in outcomes — Table 8's
/// other column.
pub fn mae_of_outcomes(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(|o| (o.initial_prediction as f64 - o.run as f64).abs())
        .sum::<f64>()
        / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_sim::job::JobId;
    use predictsim_sim::time::Time;

    #[test]
    fn eloss_branches() {
        let p: f64 = 1000.0;
        let q: f64 = 64.0;
        let gamma = (p * q).log10();
        // Over-prediction by 100: squared branch.
        assert!((eloss(1100.0, p, q) - gamma * 10_000.0).abs() < 1e-9);
        // Under-prediction by 100: linear branch.
        assert!((eloss(900.0, p, q) - gamma * 100.0).abs() < 1e-9);
        // Exact prediction: zero.
        assert_eq!(eloss(p, p, q), 0.0);
    }

    #[test]
    fn requested_time_scores_terribly() {
        // The user over-estimates 10x: MAE is awful, E-Loss is worse
        // (squared branch on a large error).
        let p = 3600.0;
        let e_req = eloss(36_000.0, p, 16.0);
        let e_under = eloss(600.0, p, 16.0);
        assert!(e_req / e_under > 1000.0, "ratio {}", e_req / e_under);
    }

    #[test]
    fn mean_over_triples() {
        let triples = [(100.0, 100.0, 1.0), (200.0, 100.0, 1.0)];
        let expected = (0.0 + eloss(200.0, 100.0, 1.0)) / 2.0;
        assert!((mean_eloss(&triples) - expected).abs() < 1e-12);
        assert_eq!(mean_eloss(&[]), 0.0);
    }

    fn outcome(pred: i64, run: i64, procs: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(0),
            swf_id: 0,
            user: 0,
            procs,
            submit: Time(0),
            start: Time(0),
            end: Time(run),
            run,
            requested: run * 10,
            initial_prediction: pred,
            corrections: 0,
            killed: false,
            partition: 0,
        }
    }

    #[test]
    fn outcome_aggregations() {
        let outcomes = vec![outcome(100, 100, 4), outcome(250, 200, 4)];
        assert_eq!(mae_of_outcomes(&outcomes), 25.0);
        let expected = (eloss(100.0, 100.0, 4.0) + eloss(250.0, 200.0, 4.0)) / 2.0;
        assert!((mean_eloss_of_outcomes(&outcomes) - expected).abs() < 1e-12);
        assert_eq!(mae_of_outcomes(&[]), 0.0);
        assert_eq!(mean_eloss_of_outcomes(&[]), 0.0);
    }
}
