//! Correction mechanisms for under-predicted running times (§5.2).
//!
//! When a job outlives its prediction the scheduler needs a replacement
//! estimate. The paper deliberately uses "simple rules instead of
//! computing again a prediction by the learning scheme, which gave a
//! wrong value", and evaluates three policies:
//!
//! * **Requested Time** — fall back to `p̃_j`
//!   ([`predictsim_sim::predict::RequestedTimeCorrection`], re-exported
//!   here for completeness);
//! * **Incremental** ([`IncrementalCorrection`]) — Tsafrir et al.'s \[24\]
//!   technique: bump the estimate by a fixed amount from a predefined
//!   list, growing with each successive failure (1 min, 5 min, 15 min,
//!   30 min, 1 h, 2 h, 5 h, 10 h, 20 h, 50 h, 100 h). Part of both
//!   EASY++ and the winning heuristic triple (§6.3.3);
//! * **Recursive Doubling** ([`RecursiveDoublingCorrection`]) — set the
//!   estimate to twice the elapsed running time.
//!
//! All corrected values are clamped by the engine into
//! `(elapsed, p̃_j]` — §5.2: estimates "remain bounded by the requested
//! running times".

pub use predictsim_sim::predict::RequestedTimeCorrection;

use predictsim_sim::predict::CorrectionPolicy;
use predictsim_sim::time::{HOUR, MINUTE};
use predictsim_sim::Job;

/// The fixed increment sequence of \[24\] (§5.2), in seconds.
pub const TSAFRIR_INCREMENTS: [i64; 11] = [
    MINUTE,
    5 * MINUTE,
    15 * MINUTE,
    30 * MINUTE,
    HOUR,
    2 * HOUR,
    5 * HOUR,
    10 * HOUR,
    20 * HOUR,
    50 * HOUR,
    100 * HOUR,
];

/// Incremental correction: add the next increment from a fixed list to
/// the expired estimate; the list index grows with each correction of the
/// same job, and saturates at the last entry.
#[derive(Debug, Clone)]
pub struct IncrementalCorrection {
    increments: Vec<i64>,
}

impl Default for IncrementalCorrection {
    fn default() -> Self {
        Self {
            increments: TSAFRIR_INCREMENTS.to_vec(),
        }
    }
}

impl IncrementalCorrection {
    /// The paper's increment list.
    pub fn new() -> Self {
        Self::default()
    }

    /// A custom increment list (must be non-empty); used by ablations.
    pub fn with_increments(increments: Vec<i64>) -> Self {
        assert!(!increments.is_empty(), "increment list cannot be empty");
        assert!(
            increments.iter().all(|&i| i > 0),
            "increments must be positive"
        );
        Self { increments }
    }
}

impl CorrectionPolicy for IncrementalCorrection {
    fn correct(
        &self,
        _job: &Job,
        elapsed: i64,
        expired_prediction: i64,
        corrections_so_far: u32,
    ) -> f64 {
        let idx = (corrections_so_far as usize).min(self.increments.len() - 1);
        // The expired prediction can sit below the elapsed time when the
        // expiry fired late in event order; grow from whichever is larger.
        (expired_prediction.max(elapsed) + self.increments[idx]) as f64
    }

    fn name(&self) -> String {
        "incremental".into()
    }
}

/// Recursive doubling: the new estimate is twice the elapsed running time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecursiveDoublingCorrection;

impl RecursiveDoublingCorrection {
    /// A new recursive-doubling policy.
    pub fn new() -> Self {
        Self
    }
}

impl CorrectionPolicy for RecursiveDoublingCorrection {
    fn correct(
        &self,
        _job: &Job,
        elapsed: i64,
        _expired_prediction: i64,
        _corrections_so_far: u32,
    ) -> f64 {
        (2 * elapsed.max(1)) as f64
    }

    fn name(&self) -> String {
        "recursive-doubling".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_sim::job::JobId;
    use predictsim_sim::time::Time;

    fn job() -> Job {
        Job {
            id: JobId(0),
            submit: Time(0),
            run: 10_000,
            requested: 500_000,
            procs: 1,
            user: 1,
            user_ix: 1,
            swf_id: 0,
        }
    }

    #[test]
    fn incremental_walks_the_list() {
        let c = IncrementalCorrection::new();
        let j = job();
        // First failure at prediction 100: +1 minute.
        assert_eq!(c.correct(&j, 100, 100, 0), 160.0);
        // Second failure: +5 minutes on the new expired estimate.
        assert_eq!(c.correct(&j, 160, 160, 1), 460.0);
        // Far down the list it saturates at +100h.
        assert_eq!(c.correct(&j, 1000, 1000, 99), (1000 + 100 * HOUR) as f64);
    }

    #[test]
    fn incremental_grows_from_elapsed_when_larger() {
        let c = IncrementalCorrection::new();
        assert_eq!(c.correct(&job(), 500, 100, 0), 560.0);
    }

    #[test]
    fn incremental_sequence_matches_paper() {
        // "(1min, 5min, 15min, 30min, 1h, 2h, 5h, 10h, 20h, 50h, 100h)"
        assert_eq!(
            TSAFRIR_INCREMENTS,
            [60, 300, 900, 1800, 3600, 7200, 18000, 36000, 72000, 180000, 360000]
        );
    }

    #[test]
    fn custom_increments() {
        let c = IncrementalCorrection::with_increments(vec![10, 100]);
        let j = job();
        assert_eq!(c.correct(&j, 5, 5, 0), 15.0);
        assert_eq!(c.correct(&j, 15, 15, 1), 115.0);
        assert_eq!(c.correct(&j, 115, 115, 7), 215.0); // saturates
    }

    #[test]
    #[should_panic(expected = "increment list cannot be empty")]
    fn empty_increments_rejected() {
        IncrementalCorrection::with_increments(vec![]);
    }

    #[test]
    fn recursive_doubling_doubles_elapsed() {
        let c = RecursiveDoublingCorrection::new();
        let j = job();
        assert_eq!(c.correct(&j, 100, 50, 0), 200.0);
        assert_eq!(c.correct(&j, 0, 50, 0), 2.0); // degenerate elapsed
    }

    #[test]
    fn names() {
        assert_eq!(IncrementalCorrection::new().name(), "incremental");
        assert_eq!(
            RecursiveDoublingCorrection::new().name(),
            "recursive-doubling"
        );
    }
}
