//! Feature extraction — Table 2 of the paper.
//!
//! A job is represented by a vector `x_j ∈ R^n` built from three sources:
//! the job's own description (`p̃_j`, `q_j`), the submitting user's
//! history (last run times, averages, break time), the current state of
//! the system (the user's running jobs), and the environment (periodic
//! time-of-day / day-of-week encodings).
//!
//! The extractor is *stateful and strictly on-line*: history features are
//! computed from completions observed so far, and the state features from
//! the running set at the job's release date — no information from the
//! future ever enters a feature vector.

use predictsim_sim::state::SystemView;
use predictsim_sim::time::{DAY, WEEK};
use predictsim_sim::Job;

/// Number of features in the Table 2 representation.
pub const N_FEATURES: usize = 20;

/// Human-readable names of the features, index-aligned with
/// [`FeatureExtractor::extract`]'s output. Useful for model inspection.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "requested_time",      // p̃_j
    "last_run_1",          // p_(j-1) of same user
    "last_run_2",          // p_(j-2)
    "last_run_3",          // p_(j-3)
    "ave2_run",            // AVE_2 of last two recorded runs
    "ave3_run",            // AVE_3 of last three recorded runs
    "ave_all_run",         // AVE_all over the user's history
    "requested_procs",     // q_j
    "ave_hist_procs",      // AVE_hist of past resource requests
    "procs_over_ave_hist", // q_j normalized by AVE_hist
    "ave_running_procs",   // AVE_curr over currently running jobs
    "jobs_running",        // count of the user's running jobs
    "longest_running",     // longest elapsed among them
    "sum_running",         // sum of elapsed times among them
    "occupied_resources",  // procs currently held by the user
    "break_time",          // time since the user's last completion
    "cos_day",             // cos(2π (r_j mod t_day)/t_day)
    "sin_day",             // sin of the same phase
    "cos_week",            // cos(2π (r_j mod t_week)/t_week)
    "sin_week",            // sin of the same phase
];

/// Per-user running history, updated on submissions and completions.
#[derive(Debug, Clone, Default)]
struct UserHistory {
    /// Most recent completed run times, newest first (up to 3 kept).
    last_runs: Vec<f64>,
    /// Sum and count over all completed jobs.
    sum_runs: f64,
    completed: u64,
    /// Sum and count of resource requests over all *submitted* jobs.
    sum_procs: f64,
    submitted: u64,
    /// Completion instant of the user's most recent finished job.
    last_completion: Option<i64>,
}

impl UserHistory {
    /// Whether any activity (submit or completion) has been recorded.
    /// A fresh slab slot is indistinguishable from an absent one: every
    /// feature read from an untouched history is the documented
    /// "no history" default.
    fn touched(&self) -> bool {
        self.submitted > 0 || self.completed > 0
    }

    fn record_submit(&mut self, procs: u32) {
        self.sum_procs += procs as f64;
        self.submitted += 1;
    }

    fn record_completion(&mut self, run: i64, now: i64) {
        self.last_runs.insert(0, run as f64);
        self.last_runs.truncate(3);
        self.sum_runs += run as f64;
        self.completed += 1;
        self.last_completion = Some(now);
    }

    fn last_run(&self, back: usize) -> f64 {
        self.last_runs.get(back).copied().unwrap_or(0.0)
    }

    fn ave_last(&self, k: usize) -> f64 {
        if self.last_runs.is_empty() {
            return 0.0;
        }
        let take = self.last_runs.len().min(k);
        self.last_runs[..take].iter().sum::<f64>() / take as f64
    }

    fn ave_all(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sum_runs / self.completed as f64
        }
    }

    fn ave_procs(&self) -> Option<f64> {
        (self.submitted > 0).then(|| self.sum_procs / self.submitted as f64)
    }
}

/// Stateful Table 2 feature extractor.
///
/// Protocol (enforced by the predictor wrapper in
/// [`crate::predictor::MlPredictor`]):
///
/// 1. at submission: [`FeatureExtractor::extract`], *then*
///    [`FeatureExtractor::record_submit`];
/// 2. at completion: [`FeatureExtractor::record_completion`].
///
/// Histories live in a flat slab indexed by the *interned* dense user
/// index (`Job::user_ix`, assigned at load time) — the extractor never
/// hashes a user id on the per-event path. An untouched slab slot
/// carries the same default feature values as an absent map entry did,
/// so the slab is behavior-identical to the former `FxHashMap`.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    /// `users[user_ix]` = that user's history, grown lazily.
    users: Vec<UserHistory>,
    /// Number of slots with recorded activity (maintained counter).
    active: usize,
}

impl FeatureExtractor {
    /// A fresh extractor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_mut(&mut self, user_ix: u32) -> &mut UserHistory {
        let ix = user_ix as usize;
        if ix >= self.users.len() {
            self.users.resize_with(ix + 1, UserHistory::default);
        }
        let hist = &mut self.users[ix];
        if !hist.touched() {
            self.active += 1;
        }
        hist
    }

    /// Builds the Table 2 feature vector for `job` at its release date.
    pub fn extract(&self, job: &Job, system: &SystemView<'_>) -> [f64; N_FEATURES] {
        let hist = self.users.get(job.user_ix as usize);
        let now = system.now.0;

        // Historical run-time features.
        let (l1, l2, l3, ave2, ave3, ave_all) = match hist {
            Some(h) => (
                h.last_run(0),
                h.last_run(1),
                h.last_run(2),
                h.ave_last(2),
                h.ave_last(3),
                h.ave_all(),
            ),
            None => (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
        };

        // Resource-request features. With no history, the user's average
        // request is taken to be this job's request (ratio 1), avoiding a
        // spurious zero.
        let q = job.procs as f64;
        let ave_hist_q = hist.and_then(|h| h.ave_procs()).unwrap_or(q);
        let q_ratio = if ave_hist_q > 0.0 {
            q / ave_hist_q
        } else {
            1.0
        };

        // Current-state features over the user's running jobs. The
        // engine's per-user index serves the same `(procs, start)` set as
        // a scan of the full running vector, and every aggregate below is
        // order-free (integer-valued f64 sums and a max are exact), so
        // the two paths produce identical features — the index just skips
        // the O(running) scan per submission.
        let mut n_running = 0.0;
        let mut sum_q_running = 0.0;
        let mut longest = 0.0;
        let mut sum_elapsed = 0.0;
        let mut occupied = 0.0;
        let mut tally = |procs: u32, start: predictsim_sim::Time| {
            n_running += 1.0;
            sum_q_running += procs as f64;
            let elapsed = system.now.since(start) as f64;
            longest = f64::max(longest, elapsed);
            sum_elapsed += elapsed;
            occupied += procs as f64;
        };
        match system.user_running {
            Some(index) => {
                for &(procs, start) in index.of_user(job.user_ix) {
                    tally(procs, start);
                }
            }
            None => {
                for r in system.running_of_user(job.user_ix) {
                    tally(r.procs, r.start);
                }
            }
        }
        let ave_curr_q = if n_running > 0.0 {
            sum_q_running / n_running
        } else {
            0.0
        };

        // Break time: elapsed since the user's last job completion.
        let break_time = hist
            .and_then(|h| h.last_completion)
            .map(|t| (now - t).max(0) as f64)
            .unwrap_or(0.0);

        // Periodic encodings of the release date.
        let day_phase = 2.0 * std::f64::consts::PI * (now.rem_euclid(DAY) as f64) / DAY as f64;
        let week_phase = 2.0 * std::f64::consts::PI * (now.rem_euclid(WEEK) as f64) / WEEK as f64;

        [
            job.requested as f64,
            l1,
            l2,
            l3,
            ave2,
            ave3,
            ave_all,
            q,
            ave_hist_q,
            q_ratio,
            ave_curr_q,
            n_running,
            longest,
            sum_elapsed,
            occupied,
            break_time,
            day_phase.cos(),
            day_phase.sin(),
            week_phase.cos(),
            week_phase.sin(),
        ]
    }

    /// Records that `job` was submitted (updates the resource-request
    /// history). Call after [`FeatureExtractor::extract`].
    pub fn record_submit(&mut self, job: &Job) {
        self.slot_mut(job.user_ix).record_submit(job.procs);
    }

    /// Records a completion of `job` with granted running time
    /// `actual_run` at instant `now`.
    pub fn record_completion(&mut self, job: &Job, actual_run: i64, now: i64) {
        self.slot_mut(job.user_ix)
            .record_completion(actual_run, now);
    }

    /// The user's AVE2 (mean of the last ≤2 completed run times), or
    /// `None` with no history — used directly by the AVE2 baseline
    /// predictor of Tsafrir et al. \[24\]. Keyed by the interned
    /// `user_ix`, like every other per-user lookup.
    pub fn ave2(&self, user_ix: u32) -> Option<f64> {
        let h = self.users.get(user_ix as usize)?;
        (h.completed > 0).then(|| h.ave_last(2))
    }

    /// Number of users with any recorded activity (maintained counter,
    /// O(1)).
    pub fn user_count(&self) -> usize {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictsim_sim::job::JobId;
    use predictsim_sim::state::RunningJob;
    use predictsim_sim::time::Time;

    fn job(user: u32, procs: u32, requested: i64, submit: i64) -> Job {
        Job {
            id: JobId(0),
            submit: Time(submit),
            run: 100,
            requested,
            procs,
            user,
            user_ix: user,
            swf_id: 0,
        }
    }

    fn view(now: i64, running: &[RunningJob]) -> SystemView<'_> {
        SystemView {
            now: Time(now),
            machine_size: 64,
            running,
            user_running: None,
        }
    }

    fn running(user: u32, procs: u32, start: i64) -> RunningJob {
        RunningJob {
            id: JobId(9),
            procs,
            start: Time(start),
            predicted_end: Time(start + 1000),
            deadline: Time(start + 2000),
            user,
            corrections: 0,
            partition: 0,
        }
    }

    #[test]
    fn fresh_user_has_zero_history_features() {
        let fx = FeatureExtractor::new();
        let f = fx.extract(&job(1, 4, 3600, 0), &view(0, &[]));
        assert_eq!(f[0], 3600.0); // requested time
        assert_eq!(f[1], 0.0); // no last runs
        assert_eq!(f[4], 0.0); // AVE2
        assert_eq!(f[6], 0.0); // AVEall
        assert_eq!(f[7], 4.0); // q
        assert_eq!(f[8], 4.0); // AVEhist defaults to q
        assert_eq!(f[9], 1.0); // ratio defaults to 1
        assert_eq!(f[15], 0.0); // no break time
    }

    #[test]
    fn completion_history_feeds_run_features() {
        let mut fx = FeatureExtractor::new();
        let j = job(1, 4, 3600, 0);
        fx.record_completion(&j, 100, 1000);
        fx.record_completion(&j, 200, 2000);
        fx.record_completion(&j, 400, 3000);
        fx.record_completion(&j, 800, 4000);
        let f = fx.extract(&j, &view(5000, &[]));
        assert_eq!(f[1], 800.0); // most recent
        assert_eq!(f[2], 400.0);
        assert_eq!(f[3], 200.0);
        assert_eq!(f[4], 600.0); // AVE2 = (800+400)/2
        assert!((f[5] - 1400.0 / 3.0).abs() < 1e-9); // AVE3
        assert_eq!(f[6], 375.0); // AVEall = 1500/4
        assert_eq!(f[15], 1000.0); // break time = 5000-4000
    }

    #[test]
    fn partial_history_averages_over_what_exists() {
        let mut fx = FeatureExtractor::new();
        let j = job(1, 4, 3600, 0);
        fx.record_completion(&j, 500, 100);
        let f = fx.extract(&j, &view(200, &[]));
        assert_eq!(f[4], 500.0); // AVE2 over a single sample
        assert_eq!(f[5], 500.0); // AVE3 likewise
        assert_eq!(fx.ave2(1), Some(500.0));
        assert_eq!(fx.ave2(42), None);
    }

    #[test]
    fn submit_history_feeds_resource_features() {
        let mut fx = FeatureExtractor::new();
        fx.record_submit(&job(1, 2, 100, 0));
        fx.record_submit(&job(1, 6, 100, 0));
        let f = fx.extract(&job(1, 8, 100, 0), &view(0, &[]));
        assert_eq!(f[8], 4.0); // (2+6)/2
        assert_eq!(f[9], 2.0); // 8/4
    }

    #[test]
    fn running_state_features() {
        let fx = FeatureExtractor::new();
        let running = [running(1, 4, 100), running(1, 2, 400), running(9, 8, 0)];
        let f = fx.extract(&job(1, 1, 100, 500), &view(500, &running));
        assert_eq!(f[10], 3.0); // AVEcurr q = (4+2)/2
        assert_eq!(f[11], 2.0); // two running jobs of user 1
        assert_eq!(f[12], 400.0); // longest elapsed: 500-100
        assert_eq!(f[13], 500.0); // sum elapsed: 400 + 100
        assert_eq!(f[14], 6.0); // occupied procs
    }

    #[test]
    fn periodic_features_wrap() {
        let fx = FeatureExtractor::new();
        let f0 = fx.extract(&job(1, 1, 100, 0), &view(0, &[]));
        let f1 = fx.extract(&job(1, 1, 100, DAY), &view(DAY, &[]));
        assert!(
            (f0[16] - f1[16]).abs() < 1e-9,
            "cos_day must be day-periodic"
        );
        assert!((f0[17] - f1[17]).abs() < 1e-9);
        // Midday is the opposite phase of midnight.
        let fm = fx.extract(&job(1, 1, 100, DAY / 2), &view(DAY / 2, &[]));
        assert!(
            (fm[16] + 1.0).abs() < 1e-9,
            "cos at half day ≈ -1, got {}",
            fm[16]
        );
    }

    #[test]
    fn users_are_isolated() {
        let mut fx = FeatureExtractor::new();
        fx.record_completion(&job(1, 1, 100, 0), 999, 100);
        let f = fx.extract(&job(2, 1, 100, 0), &view(200, &[]));
        assert_eq!(f[1], 0.0, "user 2 must not see user 1's history");
        assert_eq!(fx.user_count(), 1);
    }

    #[test]
    fn feature_names_align() {
        assert_eq!(FEATURE_NAMES.len(), N_FEATURES);
        assert_eq!(FEATURE_NAMES[0], "requested_time");
        assert_eq!(FEATURE_NAMES[19], "sin_week");
    }
}
